//! Memory-locality primitives for the migration hot path: software
//! prefetch and hugepage advice, behind safe, no-op-capable wrappers.
//!
//! At a million machines the assignment's working set (`machine_of`,
//! the `jobs_on` spines and buffers, the `u128` loads, the load-index
//! arena) exceeds 100 MB, so a single `move_job` touches ~8–10
//! DRAM-cold cache lines and the TLB walks that map them (see
//! `docs/PERFORMANCE.md`). Two hardware levers attack that wall without
//! changing a single observable byte of any result:
//!
//! * **Software prefetch** ([`prefetch_read`]) — issue the load of a
//!   line we *know* we will touch a few operations from now, so the
//!   DRAM latency overlaps useful work instead of serializing behind
//!   it. A prefetch is a pure hint: it cannot fault, cannot trap, and
//!   cannot change architectural state, so the wrappers are safe.
//! * **Hugepage advice** ([`advise_hugepages`]) — ask Linux to back a
//!   large buffer with transparent 2 MiB pages (`madvise(MADV_HUGEPAGE)`),
//!   cutting TLB entries for a 100 MB buffer from ~25 000 base pages to
//!   ~50 huge ones. Advice only changes the *physical backing* of the
//!   mapping, never its contents, so it is safe to issue on a live
//!   shared buffer.
//!
//! # Portability
//!
//! Every entry point has a portable no-op fallback that is **always
//! compiled** (the [`fallback`] module), and is what the public
//! functions dispatch to on platforms without the fast path:
//!
//! | platform | prefetch | hugepages |
//! |---|---|---|
//! | `x86_64` | `prefetcht0` | Linux: `madvise` syscall |
//! | `aarch64` | `prfm pldl1keep` | Linux: `madvise` syscall |
//! | anything else | no-op | [`Advise::Unsupported`] |
//!
//! A unit test exercises the fallback on every platform, so a non-Linux
//! build cannot silently lose the graceful degradation path.
//!
//! This is the one module in `lb-model` allowed to contain `unsafe`
//! (the crate is otherwise `#![deny(unsafe_code)]`): the prefetch
//! intrinsics and the raw `madvise` syscall are unsafe *functions* with
//! safe *semantics* for the arguments this module passes, as argued at
//! each call site.

#![allow(unsafe_code)]

/// Size (and required alignment) of a transparent huge page on the
/// platforms we advise: 2 MiB. Used to shrink a buffer to its largest
/// aligned subrange before calling `madvise`, so the advice is valid
/// regardless of the kernel's base page size (4 KiB, 16 KiB or 64 KiB —
/// all divide 2 MiB).
pub const HUGE_PAGE_BYTES: usize = 2 << 20;

/// Outcome of a [`advise_hugepages`] request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advise {
    /// The kernel accepted `madvise(MADV_HUGEPAGE)` for the aligned
    /// subrange; `bytes` is its length (a multiple of
    /// [`HUGE_PAGE_BYTES`]).
    Applied {
        /// Length of the advised subrange in bytes.
        bytes: usize,
    },
    /// The buffer contains no 2 MiB-aligned subrange, so there was
    /// nothing to advise (typical for buffers under ~4 MiB).
    TooSmall,
    /// The kernel rejected the advice with this errno (e.g. `EINVAL`
    /// when transparent hugepages are compiled out or set to `never`).
    Rejected(i32),
    /// This platform has no hugepage-advice path; the call compiled to
    /// the no-op fallback.
    Unsupported,
}

impl Advise {
    /// Bytes actually advised (0 unless [`Advise::Applied`]).
    pub fn bytes(&self) -> usize {
        match self {
            Advise::Applied { bytes } => *bytes,
            _ => 0,
        }
    }
}

/// Aggregated outcome of advising several buffers (see
/// [`crate::Assignment::advise_hugepages`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdviseReport {
    /// Buffers for which the kernel accepted the advice.
    pub applied: usize,
    /// Total bytes advised across those buffers.
    pub bytes: usize,
    /// Buffers skipped because no aligned subrange exists.
    pub too_small: usize,
    /// Buffers for which the kernel rejected the advice.
    pub rejected: usize,
    /// Whether the platform supports hugepage advice at all.
    pub supported: bool,
}

impl AdviseReport {
    /// Folds one buffer's outcome into the report.
    pub fn record(&mut self, a: Advise) {
        match a {
            Advise::Applied { bytes } => {
                self.applied += 1;
                self.bytes += bytes;
                self.supported = true;
            }
            Advise::TooSmall => {
                self.too_small += 1;
                self.supported = true;
            }
            Advise::Rejected(_) => {
                self.rejected += 1;
                self.supported = true;
            }
            Advise::Unsupported => {}
        }
    }
}

impl std::fmt::Display for AdviseReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.supported {
            return write!(f, "hugepages unsupported on this platform");
        }
        write!(
            f,
            "hugepages: {} buffer(s) advised ({} MiB), {} too small, {} rejected",
            self.applied,
            self.bytes / (1 << 20),
            self.too_small,
            self.rejected
        )
    }
}

/// Hints the CPU to pull the cache line holding `data` into L1, for a
/// read expected a few operations from now. Never faults, never blocks,
/// never changes results — a pure scheduling hint (a no-op on platforms
/// without a prefetch instruction).
#[inline(always)]
pub fn prefetch_read<T: ?Sized>(data: &T) {
    prefetch_ptr(data as *const T as *const u8);
}

/// Like [`prefetch_read`], but with *write intent*: the line is
/// requested in exclusive state, so a store a few operations later
/// skips the read-for-ownership upgrade a plain read prefetch would
/// leave behind. Same purity guarantees as [`prefetch_read`].
#[inline(always)]
pub fn prefetch_write<T: ?Sized>(data: &T) {
    prefetch_ptr_write(data as *const T as *const u8);
}

/// Prefetches `slice[i]`'s cache line if `i` is in bounds (out-of-range
/// indices are silently ignored — callers prefetch *speculatively*,
/// e.g. "the next planned pair", and the last iteration has no next).
#[inline(always)]
pub fn prefetch_index<T>(slice: &[T], i: usize) {
    if let Some(x) = slice.get(i) {
        prefetch_read(x);
    }
}

/// [`prefetch_write`] for `slice[i]`, silently ignoring out-of-range
/// indices (same speculative-caller contract as [`prefetch_index`]).
#[inline(always)]
pub fn prefetch_index_write<T>(slice: &[T], i: usize) {
    if let Some(x) = slice.get(i) {
        prefetch_write(x);
    }
}

/// Prefetches the first cache line of a slice's backing buffer (no-op
/// for empty slices). Pairs with prefetching the slice *header*: a
/// `jobs_on[m]` read costs one line for the `Vec` header and one for
/// the buffer it points at.
#[inline(always)]
pub fn prefetch_slice_data<T>(slice: &[T]) {
    if let Some(x) = slice.first() {
        prefetch_read(x);
    }
}

/// [`prefetch_slice_data`] with write intent, for buffers about to be
/// edited in place (e.g. a `jobs_on[m]` list that a batched migration
/// wave will `push`/`swap_remove` on).
#[inline(always)]
pub fn prefetch_slice_data_write<T>(slice: &[T]) {
    if let Some(x) = slice.first() {
        prefetch_write(x);
    }
}

#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn prefetch_ptr(p: *const u8) {
    // SAFETY: PREFETCHT0 is architecturally defined to never fault and
    // never modify architectural state, for *any* address (valid or
    // not); it is a pure hint to the cache hierarchy.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    }
}

#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn prefetch_ptr_write(p: *const u8) {
    // SAFETY: the ET0 hint emits PREFETCHW, which shares PREFETCHT0's
    // contract: never faults, never modifies architectural state (CPUs
    // without PREFETCHW support execute it as a NOP).
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_ET0 }>(p as *const i8);
    }
}

#[cfg(target_arch = "aarch64")]
#[inline(always)]
fn prefetch_ptr(p: *const u8) {
    // SAFETY: PRFM PLDL1KEEP is a hint instruction: it cannot generate
    // a synchronous abort for any address and has no architectural
    // side effects.
    unsafe {
        core::arch::asm!("prfm pldl1keep, [{0}]", in(reg) p, options(nostack, preserves_flags));
    }
}

#[cfg(target_arch = "aarch64")]
#[inline(always)]
fn prefetch_ptr_write(p: *const u8) {
    // SAFETY: PRFM PSTL1KEEP (prefetch for store) has the same
    // hint-only contract as PLDL1KEEP.
    unsafe {
        core::arch::asm!("prfm pstl1keep, [{0}]", in(reg) p, options(nostack, preserves_flags));
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
#[inline(always)]
fn prefetch_ptr(p: *const u8) {
    fallback::prefetch_ptr(p);
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
#[inline(always)]
fn prefetch_ptr_write(p: *const u8) {
    fallback::prefetch_ptr(p);
}

/// Requests transparent-hugepage backing for the largest 2 MiB-aligned
/// subrange of `data`'s buffer.
///
/// Purely a physical-layout request: the kernel may promote the range
/// to 2 MiB pages (cutting TLB misses on large working sets) but the
/// buffer's contents, addresses, and every computed result are
/// unchanged. Degrades gracefully everywhere: [`Advise::TooSmall`] for
/// small buffers, [`Advise::Rejected`] when the kernel refuses (THP
/// disabled), [`Advise::Unsupported`] off Linux/x86_64/aarch64.
pub fn advise_hugepages<T>(data: &[T]) -> Advise {
    let addr = data.as_ptr() as usize;
    let len = std::mem::size_of_val(data);
    advise_hugepages_range(addr, len)
}

/// Core of [`advise_hugepages`], on a raw `(addr, len)` byte range.
fn advise_hugepages_range(addr: usize, len: usize) -> Advise {
    let Some((start, bytes)) = aligned_subrange(addr, len) else {
        return if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            Advise::TooSmall
        } else {
            Advise::Unsupported
        };
    };
    madvise_hugepage(start, bytes)
}

/// The largest [`HUGE_PAGE_BYTES`]-aligned subrange of `[addr, addr+len)`,
/// as `(start, bytes)`; `None` when no full huge page fits.
fn aligned_subrange(addr: usize, len: usize) -> Option<(usize, usize)> {
    let end = addr.checked_add(len)?;
    let start = addr.checked_add(HUGE_PAGE_BYTES - 1)? & !(HUGE_PAGE_BYTES - 1);
    let end = end & !(HUGE_PAGE_BYTES - 1);
    (start < end).then(|| (start, end - start))
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
fn madvise_hugepage(start: usize, bytes: usize) -> Advise {
    /// `MADV_HUGEPAGE` from `<linux/mman.h>` (identical on every arch).
    const MADV_HUGEPAGE: usize = 14;
    /// `MADV_COLLAPSE` (Linux ≥ 6.1): synchronously collapse the range
    /// into huge pages *now*, instead of waiting for khugepaged to get
    /// around to it — without this, a short benchmark can finish before
    /// the background collapse ever happens.
    const MADV_COLLAPSE: usize = 25;
    // SAFETY: `start`/`bytes` lie inside a live allocation borrowed by
    // the caller and are 2 MiB-aligned (so also base-page-aligned).
    // Neither advice alters mapping contents or validity — MADV_HUGEPAGE
    // marks the range as a candidate for transparent huge pages and
    // MADV_COLLAPSE migrates the same bytes onto huge pages in place —
    // so no Rust aliasing or validity invariant is affected.
    let ret = unsafe { sys_madvise(start, bytes, MADV_HUGEPAGE) };
    if ret == 0 {
        // Best-effort immediate collapse; failure (older kernel,
        // fragmented memory) is fine — the range stays eligible for
        // background collapse either way.
        let _ = unsafe { sys_madvise(start, bytes, MADV_COLLAPSE) };
        Advise::Applied { bytes }
    } else {
        Advise::Rejected(-ret as i32)
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn madvise_hugepage(start: usize, bytes: usize) -> Advise {
    fallback::madvise_hugepage(start, bytes)
}

/// Raw `madvise(2)`, invoked directly so the workspace needs no libc
/// binding (the offline build has none). Returns 0 or `-errno`, per the
/// Linux syscall ABI.
///
/// # Safety
///
/// The caller must pass a page-aligned range within a live mapping and
/// an advice value that does not alter mapping contents (this module
/// only ever passes `MADV_HUGEPAGE` and `MADV_COLLAPSE`).
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn sys_madvise(addr: usize, len: usize, advice: usize) -> isize {
    const SYS_MADVISE: usize = 28;
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") SYS_MADVISE as isize => ret,
        in("rdi") addr,
        in("rsi") len,
        in("rdx") advice,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack, preserves_flags)
    );
    ret
}

/// Raw `madvise(2)` for aarch64 Linux; see the x86_64 variant for the
/// contract.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn sys_madvise(addr: usize, len: usize, advice: usize) -> isize {
    const SYS_MADVISE: usize = 233;
    let ret: isize;
    core::arch::asm!(
        "svc 0",
        in("x8") SYS_MADVISE,
        inlateout("x0") addr => ret,
        in("x1") len,
        in("x2") advice,
        options(nostack, preserves_flags)
    );
    ret
}

/// The portable no-op implementations. Always compiled (not `cfg`-gated
/// away), so every platform — including the ones with a fast path, where
/// these are dead code outside tests — type-checks and tests the
/// graceful-degradation behavior a non-Linux build would run.
#[allow(dead_code)]
pub(crate) mod fallback {
    use super::Advise;

    /// No-op prefetch: the hint is dropped.
    #[inline(always)]
    pub fn prefetch_ptr(_p: *const u8) {}

    /// No-op hugepage advice: reports [`Advise::Unsupported`].
    pub fn madvise_hugepage(_start: usize, _bytes: usize) -> Advise {
        Advise::Unsupported
    }
}

/// The kernel's base page size, read from `/proc/self/auxv`
/// (`AT_PAGESZ`). `None` off Linux or when the auxv is unreadable —
/// callers report "unknown" rather than guessing.
pub fn page_size() -> Option<usize> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    const AT_PAGESZ: usize = 6;
    let raw = std::fs::read("/proc/self/auxv").ok()?;
    let word = std::mem::size_of::<usize>();
    let mut chunks = raw.chunks_exact(2 * word);
    chunks.find_map(|pair| {
        let key = usize::from_ne_bytes(pair[..word].try_into().ok()?);
        (key == AT_PAGESZ).then(|| usize::from_ne_bytes(pair[word..].try_into().unwrap()))
    })
}

/// The transparent-hugepage mode string from
/// `/sys/kernel/mm/transparent_hugepage/enabled` (e.g.
/// `always [madvise] never`), or `None` when unreadable (non-Linux, or
/// THP compiled out). `madvise(MADV_HUGEPAGE)` only helps when the
/// bracketed mode is `always` or `madvise`.
pub fn thp_mode() -> Option<String> {
    std::fs::read_to_string("/sys/kernel/mm/transparent_hugepage/enabled")
        .ok()
        .map(|s| s.trim().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_pure_hint() {
        // Values and control flow are unaffected; this exercises the
        // real instruction on x86_64/aarch64 and the no-op elsewhere.
        let v: Vec<u64> = (0..1024).collect();
        prefetch_read(&v[0]);
        prefetch_index(&v, 512);
        prefetch_index(&v, usize::MAX); // out of range: ignored
        prefetch_slice_data(&v);
        prefetch_slice_data::<u64>(&[]);
        assert_eq!(v[512], 512);
    }

    #[test]
    fn aligned_subrange_math() {
        let h = HUGE_PAGE_BYTES;
        // A whole aligned huge page maps to itself.
        assert_eq!(aligned_subrange(2 * h, h), Some((2 * h, h)));
        // A misaligned start rounds up, the end rounds down.
        assert_eq!(aligned_subrange(h + 7, 3 * h), Some((2 * h, 2 * h)));
        // Buffers smaller than one aligned page have nothing to advise.
        assert_eq!(aligned_subrange(h + 7, h), None);
        assert_eq!(aligned_subrange(0, 0), None);
        // Overflowing ranges are rejected, not wrapped.
        assert_eq!(aligned_subrange(usize::MAX - 8, 64), None);
    }

    #[test]
    fn advise_degrades_gracefully() {
        // Tiny buffer: never Applied, never panics, on any platform.
        let small = vec![0u8; 64];
        assert!(matches!(
            advise_hugepages(&small),
            Advise::TooSmall | Advise::Unsupported
        ));
        // Large buffer: Applied on a Linux kernel with THP, Rejected
        // when THP is off, Unsupported elsewhere — all are acceptable;
        // what must hold is that the contents are untouched.
        let big = vec![0xa5u8; 8 << 20];
        let outcome = advise_hugepages(&big);
        assert!(big.iter().all(|&b| b == 0xa5), "advice must not mutate");
        if let Advise::Applied { bytes } = outcome {
            assert!(bytes >= HUGE_PAGE_BYTES);
            assert_eq!(bytes % HUGE_PAGE_BYTES, 0);
        }
    }

    #[test]
    fn fallback_compiles_and_runs_on_every_platform() {
        // The no-op path a non-Linux build would take: callable and
        // inert everywhere, so portability cannot rot unnoticed.
        fallback::prefetch_ptr(std::ptr::null());
        assert_eq!(
            fallback::madvise_hugepage(0, HUGE_PAGE_BYTES),
            Advise::Unsupported
        );
        let mut report = AdviseReport::default();
        report.record(Advise::Unsupported);
        assert!(!report.supported);
        assert_eq!(report.to_string(), "hugepages unsupported on this platform");
    }

    #[test]
    fn advise_report_aggregates() {
        let mut r = AdviseReport::default();
        r.record(Advise::Applied {
            bytes: 2 * HUGE_PAGE_BYTES,
        });
        r.record(Advise::TooSmall);
        r.record(Advise::Rejected(22));
        assert_eq!(r.applied, 1);
        assert_eq!(r.bytes, 2 * HUGE_PAGE_BYTES);
        assert_eq!(r.too_small, 1);
        assert_eq!(r.rejected, 1);
        assert!(r.supported);
        assert!(r.to_string().contains("1 buffer(s) advised (4 MiB)"));
    }

    #[test]
    fn host_probes_do_not_panic() {
        // Values are host-dependent; the contract is graceful None.
        let _ = page_size();
        let _ = thp_mode();
        if cfg!(target_os = "linux") {
            if let Some(ps) = page_size() {
                assert!(ps.is_power_of_two());
            }
        }
    }
}
