//! An incremental fused-arena index over machine loads.
//!
//! [`LoadIndex`] answers three extremum queries over a slice of `u128`
//! machine loads — the global argmax ("which machine attains the
//! makespan"), the argmin over *active* machines ("cheapest online
//! victim"), and the argmax over active machines — each in O(1), while a
//! point update costs O(1) amortized. [`crate::Assignment`] embeds one so
//! that `makespan()` — which simulation probes call every round — stops
//! being an O(m) rescan of all loads.
//!
//! # Layout: one arena, not three trees
//!
//! Earlier revisions kept three independent implicit heaps (`max_all`,
//! `min_act`, `max_act`), each a separate `Vec<u32>` padded to the next
//! power of two, whose combine step chased candidate ids back into the
//! loads slice. Every update walked three root paths through three cold
//! vectors plus random lookups into `loads[]` — at m ≥ 1e5 the split
//! working set fell out of cache and `move_job` degraded ~10x
//! (BENCH_simcore.json). The index is now a single struct-of-arrays
//! arena of d-ary tree [`Node`]s (d = [`FANOUT`]), sized to the *exact*
//! node count (no power-of-two padding): each node fuses all three
//! (load, machine-id) extremum records in one 64-byte, cache-line-sized
//! record, so one repair step touches one line instead of three trees
//! plus the loads array. Level 0 summarizes groups of [`FANOUT`]
//! contiguous machines straight from the loads slice; level k summarizes
//! groups of [`FANOUT`] level-(k-1) nodes.
//!
//! # Lazy repair, eager answers
//!
//! On top of the arena sit three always-valid O(1) caches, one per
//! query. An update adjusts the caches directly (the algebra below) and
//! only marks the machine's level-0 group *dirty*; the arena is repaired
//! lazily, in bulk, the next time a cache is actually invalidated:
//!
//! * a non-champion's load changed: compare against the cached champion
//!   — O(1), the arena stays stale;
//! * the champion's load moved *favorably* (argmax grew, argmin shrank):
//!   it stays champion — O(1);
//! * the champion's load moved *adversely* or the champion went
//!   offline: the cache is unknowable locally, so the dirty groups are
//!   flushed (path repair per group, or a full rebuild when most groups
//!   are dirty) and all three caches are re-read from the root.
//!
//! Queries therefore never see the stale arena and take `&self` (no
//! interior mutability — the index stays `Sync`); adverse champion
//! updates are rare in balancing workloads (the victim of an exchange is
//! picked *because* it is extremal, and then both pair loads are
//! re-written at once), so `move_job` costs a handful of compares.
//!
//! The index does not own the loads: every update takes the load slice
//! as a parameter, and the caller (the assignment) guarantees the slice
//! it passes is the one the index was built over. Tie-breaking matches
//! the naive scans the index replaces exactly, so swapping it in is
//! observationally invisible:
//!
//! * argmax ties resolve to the **highest** machine index (like
//!   `Iterator::max_by_key`, which keeps the last maximum);
//! * argmin ties resolve to the **lowest** machine index (like
//!   `Iterator::min_by_key`, which keeps the first minimum).
//!
//! Each machine additionally carries an *active* flag (all machines start
//! active). Inactive machines are invisible to the `*_active` queries but
//! still participate in the global argmax — the makespan of an assignment
//! is defined over all machines, while victim/target selection under
//! churn must skip offline ones.

/// Sentinel meaning "no machine" inside nodes and caches.
const NONE: u32 = u32::MAX;

/// Arity of the arena tree: each node summarizes up to this many
/// machines (level 0) or children (upper levels). 8 keeps the whole
/// internal arena ≈ m/7 nodes — about 9 MB at m = 1e6 versus 24 MB for
/// the three padded binary trees it replaced — and makes a root path
/// log8 m ≈ 7 levels deep at a million machines.
const FANOUT: usize = 8;

/// How many flush iterations ahead each arena-repair pass prefetches
/// (see [`LoadIndex::flush`]'s level-by-level walk).
const FLUSH_LOOKAHEAD: usize = 12;

/// One fused record of the arena: the three extremum candidates of a
/// machine group, each as an exact `u128` load plus a machine id.
/// `repr(C)` keeps the three loads contiguous; the whole node is 64
/// bytes (one cache line), so a combine reads each child in one line.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Node {
    max_all_load: u128,
    min_act_load: u128,
    max_act_load: u128,
    max_all_id: u32,
    min_act_id: u32,
    max_act_id: u32,
}

impl Node {
    const EMPTY: Node = Node {
        max_all_load: 0,
        min_act_load: 0,
        max_act_load: 0,
        max_all_id: NONE,
        min_act_id: NONE,
        max_act_id: NONE,
    };
}

/// `(load, id)` beats the current maximum candidate `(cur_load, cur_id)`
/// lexicographically — load first, then *higher* id (so scanning in
/// ascending id order keeps the last maximum, matching `max_by_key`).
#[inline]
pub(crate) fn beats_max(load: u128, id: u32, cur_load: u128, cur_id: u32) -> bool {
    cur_id == NONE || load > cur_load || (load == cur_load && id > cur_id)
}

/// `(load, id)` beats the current minimum candidate: load first, then
/// *lower* id (scanning in ascending id order keeps the first minimum,
/// matching `min_by_key`).
#[inline]
pub(crate) fn beats_min(load: u128, id: u32, cur_load: u128, cur_id: u32) -> bool {
    cur_id == NONE || load < cur_load || (load == cur_load && id < cur_id)
}

/// A fused, lazily-repaired d-ary extremum index over machine loads with
/// O(1) amortized point updates and O(1) argmax / argmin-over-active /
/// argmax-over-active queries. See the [module docs](self) for the
/// layout and tie-breaking guarantees.
#[derive(Debug, Clone)]
pub struct LoadIndex {
    /// Number of machines indexed.
    len: usize,
    /// Per-machine active flag.
    active: Vec<bool>,
    /// The arena: `levels[0]` summarizes machine groups of [`FANOUT`],
    /// `levels[k]` summarizes groups of `levels[k-1]` nodes; the last
    /// level holds the single root. Every level is sized to its exact
    /// node count. Empty when `len == 0`.
    levels: Vec<Vec<Node>>,
    /// Cached sum of all loads (exact, in `u128`).
    total: u128,
    /// Always-valid caches (the authoritative query answers).
    max_all_load: u128,
    max_all_id: u32,
    min_act_load: u128,
    min_act_id: u32,
    max_act_load: u128,
    max_act_id: u32,
    /// Level-0 groups whose arena nodes are stale (deduplicated).
    dirty: Vec<u32>,
    /// Dedup flags for `dirty`, one per level-0 group.
    group_dirty: Vec<bool>,
}

impl LoadIndex {
    /// Builds the index over `loads` in O(m), with every machine active.
    pub fn new(loads: &[u128]) -> Self {
        let m = loads.len();
        let mut idx = Self {
            len: m,
            active: vec![true; m],
            levels: Vec::new(),
            total: loads.iter().sum(),
            max_all_load: 0,
            max_all_id: NONE,
            min_act_load: 0,
            min_act_id: NONE,
            max_act_load: 0,
            max_act_id: NONE,
            dirty: Vec::new(),
            group_dirty: Vec::new(),
        };
        if m == 0 {
            return idx;
        }
        let groups = m.div_ceil(FANOUT);
        idx.group_dirty = vec![false; groups];
        let mut level_len = groups;
        loop {
            idx.levels.push(vec![Node::EMPTY; level_len]);
            if level_len == 1 {
                break;
            }
            level_len = level_len.div_ceil(FANOUT);
        }
        idx.rebuild_arena(loads);
        idx.read_caches_from_root();
        idx
    }

    /// Number of machines indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index covers no machines.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cached total work `sum_i load(i)` (exact).
    #[inline]
    pub fn total(&self) -> u128 {
        self.total
    }

    /// Records that machine `i`'s load changed from `old` to `loads[i]`.
    /// `loads` must be the post-change slice. O(1) amortized: the arena
    /// repair is deferred; only an *adverse* champion change (cached
    /// argmax shrank / cached active argmin grew) flushes dirty groups.
    pub fn update(&mut self, loads: &[u128], i: usize, old: u128) {
        let new = loads[i];
        self.total = self.total - old + new;
        if new == old {
            return;
        }
        self.mark_dirty(i / FANOUT);
        let id = i as u32;
        let mut stale = false;
        if self.max_all_id == id {
            if new >= old {
                self.max_all_load = new;
            } else {
                stale = true;
            }
        } else if beats_max(new, id, self.max_all_load, self.max_all_id) {
            self.max_all_load = new;
            self.max_all_id = id;
        }
        if self.active[i] {
            if self.min_act_id == id {
                if new <= old {
                    self.min_act_load = new;
                } else {
                    stale = true;
                }
            } else if beats_min(new, id, self.min_act_load, self.min_act_id) {
                self.min_act_load = new;
                self.min_act_id = id;
            }
            if self.max_act_id == id {
                if new >= old {
                    self.max_act_load = new;
                } else {
                    stale = true;
                }
            } else if beats_max(new, id, self.max_act_load, self.max_act_id) {
                self.max_act_load = new;
                self.max_act_id = id;
            }
        }
        if stale {
            self.refresh_caches(loads);
        }
    }

    /// [`update`](Self::update) with champion-cache maintenance
    /// *deferred*: only the running total and the dirty marks are
    /// touched — O(1) worst case, never a flush. A wave of updates can
    /// dethrone the cached argmax/argmin many times over; paying one
    /// exact recompute at the end ([`flush_deferred`](Self::flush_deferred))
    /// instead of a rescan per dethroning is the batch applier's second
    /// win next to memory locality. Champion queries are unreliable
    /// until the matching `flush_deferred` — callers must not interleave
    /// queries with a deferred run.
    #[inline]
    pub(crate) fn update_deferred(&mut self, loads: &[u128], i: usize, old: u128) {
        let new = loads[i];
        self.total = self.total - old + new;
        if new != old {
            self.mark_dirty(i / FANOUT);
        }
    }

    /// Completes a run of [`update_deferred`](Self::update_deferred)s:
    /// one arena flush and one root read re-derive all three champion
    /// caches exactly (a pure function of the current loads and active
    /// mask, so the answers match any sequential update order). No-op
    /// when nothing is dirty.
    pub(crate) fn flush_deferred(&mut self, loads: &[u128]) {
        if !self.dirty.is_empty() {
            self.refresh_caches(loads);
        }
    }

    /// Whether machine `i` is active.
    #[inline]
    pub fn is_active(&self, i: usize) -> bool {
        self.active[i]
    }

    /// Sets machine `i`'s active flag. A no-op when the flag already has
    /// that value; O(1) unless the machine was a cached `*_active`
    /// champion, in which case the dirty groups are flushed.
    pub fn set_active(&mut self, loads: &[u128], i: usize, active: bool) {
        if self.active[i] == active {
            return;
        }
        self.active[i] = active;
        self.mark_dirty(i / FANOUT);
        let id = i as u32;
        if active {
            let load = loads[i];
            if beats_min(load, id, self.min_act_load, self.min_act_id) {
                self.min_act_load = load;
                self.min_act_id = id;
            }
            if beats_max(load, id, self.max_act_load, self.max_act_id) {
                self.max_act_load = load;
                self.max_act_id = id;
            }
        } else if self.min_act_id == id || self.max_act_id == id {
            self.refresh_caches(loads);
        }
    }

    /// The machine with the maximal load, ties to the highest index
    /// (`None` only when the index is empty).
    #[inline]
    pub fn argmax(&self) -> Option<usize> {
        entry(self.max_all_id)
    }

    /// The *active* machine with the minimal load, ties to the lowest
    /// index (`None` when no machine is active).
    #[inline]
    pub fn argmin_active(&self) -> Option<usize> {
        entry(self.min_act_id)
    }

    /// The *active* machine with the maximal load, ties to the highest
    /// index (`None` when no machine is active).
    #[inline]
    pub fn argmax_active(&self) -> Option<usize> {
        entry(self.max_act_id)
    }

    /// The maximal `(load, machine)` over all machines, exact. Used by
    /// [`crate::ShardedLoadIndex`] to merge shard roots.
    #[inline]
    pub fn max_all_entry(&self) -> Option<(u128, usize)> {
        entry(self.max_all_id).map(|i| (self.max_all_load, i))
    }

    /// The minimal `(load, machine)` over active machines, exact.
    #[inline]
    pub fn min_active_entry(&self) -> Option<(u128, usize)> {
        entry(self.min_act_id).map(|i| (self.min_act_load, i))
    }

    /// The maximal `(load, machine)` over active machines, exact.
    #[inline]
    pub fn max_active_entry(&self) -> Option<(u128, usize)> {
        entry(self.max_act_id).map(|i| (self.max_act_load, i))
    }

    #[inline]
    fn mark_dirty(&mut self, group: usize) {
        if !self.group_dirty[group] {
            self.group_dirty[group] = true;
            self.dirty.push(group as u32);
        }
    }

    /// Total number of arena nodes (all levels).
    fn node_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Requests hugepage backing for the arena's buffers (level-0 is
    /// ~m/8 64-byte nodes, the only one big enough to matter below
    /// m ≈ 10⁶; upper levels and the flag vectors are advised too so a
    /// giant index benefits fully). Folded into `report`; see
    /// [`crate::mem::advise_hugepages`].
    pub(crate) fn advise_hugepages(&self, report: &mut crate::mem::AdviseReport) {
        for level in &self.levels {
            report.record(crate::mem::advise_hugepages(level));
        }
        report.record(crate::mem::advise_hugepages(&self.active));
        report.record(crate::mem::advise_hugepages(&self.group_dirty));
    }

    /// Starts pulling the lines an [`update`](Self::update) of machine
    /// `i` will touch (`active[i]`, its dirty-group flag) toward L1. A
    /// pure hint for batch appliers that know their update sequence in
    /// advance; see [`crate::mem`].
    #[inline]
    pub(crate) fn prefetch_update(&self, i: usize) {
        crate::mem::prefetch_index(&self.active, i);
        // The dirty flag is *written* by `mark_dirty`: ask for the line
        // in exclusive state so the store skips the ownership upgrade.
        crate::mem::prefetch_index_write(&self.group_dirty, i / FANOUT);
    }

    /// Brings every arena node up to date: repairs the root path of each
    /// dirty group, or rebuilds all levels when most of the arena is
    /// stale anyway.
    fn flush(&mut self, loads: &[u128]) {
        if self.dirty.is_empty() {
            return;
        }
        let mut dirty = std::mem::take(&mut self.dirty);
        for &g in &dirty {
            self.group_dirty[g as usize] = false;
        }
        if dirty.len() * self.levels.len() >= self.node_count() {
            self.rebuild_arena(loads);
            return;
        }
        // Level by level, ascending: the address sequence of every pass
        // is known before the pass runs, so the next iterations' lines
        // are prefetched while the current node recombines (a big
        // wave's flush is DRAM-bound, not compute-bound). A node whose
        // recompute reproduces the stored value stops propagating — its
        // ancestors were computed from exactly these child values.
        dirty.sort_unstable();
        let mut frontier = dirty;
        let mut changed: Vec<u32> = Vec::with_capacity(frontier.len());
        for (pos, &g) in frontier.iter().enumerate() {
            if let Some(&ahead) = frontier.get(pos + FLUSH_LOOKAHEAD) {
                let base = ahead as usize * FANOUT;
                crate::mem::prefetch_index(loads, base);
                crate::mem::prefetch_index(loads, base + FANOUT / 2);
                crate::mem::prefetch_index(&self.active, base);
                crate::mem::prefetch_index_write(&self.levels[0], ahead as usize);
            }
            let g = g as usize;
            let new = compute_leaf(loads, &self.active, self.len, g);
            if self.levels[0][g] != new {
                self.levels[0][g] = new;
                let parent = (g / FANOUT) as u32;
                if changed.last() != Some(&parent) {
                    changed.push(parent);
                }
            }
        }
        frontier = changed;
        for k in 1..self.levels.len() {
            if frontier.is_empty() {
                break;
            }
            let mut next: Vec<u32> = Vec::with_capacity(frontier.len());
            let (lower, upper) = self.levels.split_at_mut(k);
            let lower = &lower[k - 1][..];
            let level = &mut upper[0];
            for (pos, &i) in frontier.iter().enumerate() {
                if let Some(&ahead) = frontier.get(pos + FLUSH_LOOKAHEAD / 2) {
                    let base = ahead as usize * FANOUT;
                    // A child span is up to FANOUT one-line nodes.
                    for c in 0..FANOUT {
                        crate::mem::prefetch_index(lower, base + c);
                    }
                    crate::mem::prefetch_index_write(level, ahead as usize);
                }
                let i = i as usize;
                let new = compute_inner(lower, i);
                if level[i] != new {
                    level[i] = new;
                    let parent = (i / FANOUT) as u32;
                    if next.last() != Some(&parent) {
                        next.push(parent);
                    }
                }
            }
            frontier = next;
        }
    }

    /// Recomputes every arena node bottom-up in O(m).
    fn rebuild_arena(&mut self, loads: &[u128]) {
        for g in 0..self.levels[0].len() {
            self.levels[0][g] = compute_leaf(loads, &self.active, self.len, g);
        }
        for k in 1..self.levels.len() {
            let (lower, upper) = self.levels.split_at_mut(k);
            for i in 0..upper[0].len() {
                upper[0][i] = compute_inner(&lower[k - 1], i);
            }
        }
    }

    /// Flushes the arena and re-reads all three caches from the root.
    fn refresh_caches(&mut self, loads: &[u128]) {
        self.flush(loads);
        self.read_caches_from_root();
    }

    fn read_caches_from_root(&mut self) {
        let root = match self.levels.last() {
            Some(level) => level[0],
            None => Node::EMPTY,
        };
        self.max_all_load = root.max_all_load;
        self.max_all_id = root.max_all_id;
        self.min_act_load = root.min_act_load;
        self.min_act_id = root.min_act_id;
        self.max_act_load = root.max_act_load;
        self.max_act_id = root.max_act_id;
    }

    /// Full-scan cross-check used by `Assignment::validate`: compares
    /// the cached total, the caches, and the (flushed) arena against a
    /// fresh from-scratch rebuild over `loads`.
    pub fn is_consistent_with(&self, loads: &[u128]) -> bool {
        if loads.len() != self.len {
            return false;
        }
        if self.total != loads.iter().sum::<u128>() {
            return false;
        }
        let mut fresh = Self::new(loads);
        for (i, &a) in self.active.iter().enumerate() {
            fresh.set_active(loads, i, a);
        }
        fresh.flush(loads);
        let mut mine = self.clone();
        mine.flush(loads);
        mine.levels == fresh.levels
            && (mine.max_all_load, mine.max_all_id) == (fresh.max_all_load, fresh.max_all_id)
            && (mine.min_act_load, mine.min_act_id) == (fresh.min_act_load, fresh.min_act_id)
            && (mine.max_act_load, mine.max_act_id) == (fresh.max_act_load, fresh.max_act_id)
    }
}

#[inline]
fn entry(id: u32) -> Option<usize> {
    (id != NONE).then_some(id as usize)
}

/// Summarizes machines `[group*FANOUT, min((group+1)*FANOUT, len))`
/// directly from the loads slice and active flags.
fn compute_leaf(loads: &[u128], active: &[bool], len: usize, group: usize) -> Node {
    let lo = group * FANOUT;
    let hi = (lo + FANOUT).min(len);
    let mut node = Node::EMPTY;
    for (i, &load) in loads.iter().enumerate().take(hi).skip(lo) {
        let id = i as u32;
        if beats_max(load, id, node.max_all_load, node.max_all_id) {
            node.max_all_load = load;
            node.max_all_id = id;
        }
        if active[i] {
            if beats_min(load, id, node.min_act_load, node.min_act_id) {
                node.min_act_load = load;
                node.min_act_id = id;
            }
            if beats_max(load, id, node.max_act_load, node.max_act_id) {
                node.max_act_load = load;
                node.max_act_id = id;
            }
        }
    }
    node
}

/// Combines children `[i*FANOUT, min((i+1)*FANOUT, level.len()))` of the
/// lower level into one node. Lexicographic `(load, id)` selection makes
/// the combine order-independent and preserves the scan tie-breaks.
fn compute_inner(lower: &[Node], i: usize) -> Node {
    let lo = i * FANOUT;
    let hi = (lo + FANOUT).min(lower.len());
    let mut node = Node::EMPTY;
    for child in &lower[lo..hi] {
        if child.max_all_id != NONE
            && beats_max(
                child.max_all_load,
                child.max_all_id,
                node.max_all_load,
                node.max_all_id,
            )
        {
            node.max_all_load = child.max_all_load;
            node.max_all_id = child.max_all_id;
        }
        if child.min_act_id != NONE
            && beats_min(
                child.min_act_load,
                child.min_act_id,
                node.min_act_load,
                node.min_act_id,
            )
        {
            node.min_act_load = child.min_act_load;
            node.min_act_id = child.min_act_id;
        }
        if child.max_act_id != NONE
            && beats_max(
                child.max_act_load,
                child.max_act_id,
                node.max_act_load,
                node.max_act_id,
            )
        {
            node.max_act_load = child.max_act_load;
            node.max_act_id = child.max_act_id;
        }
    }
    node
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_argmax(loads: &[u128]) -> Option<usize> {
        loads
            .iter()
            .enumerate()
            .max_by_key(|(_, &l)| l)
            .map(|(i, _)| i)
    }

    fn naive_argmin_active(loads: &[u128], active: &[bool]) -> Option<usize> {
        loads
            .iter()
            .enumerate()
            .filter(|&(i, _)| active[i])
            .min_by_key(|(_, &l)| l)
            .map(|(i, _)| i)
    }

    fn naive_argmax_active(loads: &[u128], active: &[bool]) -> Option<usize> {
        loads
            .iter()
            .enumerate()
            .filter(|&(i, _)| active[i])
            .max_by_key(|(_, &l)| l)
            .map(|(i, _)| i)
    }

    #[test]
    fn node_is_one_cache_line() {
        assert_eq!(std::mem::size_of::<Node>(), 64);
    }

    #[test]
    fn empty_index() {
        let idx = LoadIndex::new(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.argmax(), None);
        assert_eq!(idx.argmin_active(), None);
        assert_eq!(idx.argmax_active(), None);
        assert_eq!(idx.total(), 0);
    }

    #[test]
    fn singleton_and_non_power_of_two() {
        for m in [1usize, 3, 5, 6, 7, 9] {
            let loads: Vec<u128> = (0..m).map(|i| ((i * 7) % 5) as u128).collect();
            let idx = LoadIndex::new(&loads);
            assert_eq!(idx.argmax(), naive_argmax(&loads), "m={m}");
            assert_eq!(
                idx.argmin_active(),
                naive_argmin_active(&loads, &vec![true; m]),
                "m={m}"
            );
            assert_eq!(idx.total(), loads.iter().sum::<u128>());
        }
    }

    #[test]
    fn arena_is_exactly_sized_for_non_power_of_two_m() {
        // No power-of-two padding: each level holds exactly
        // ceil(prev / FANOUT) nodes, down to a single root.
        for m in [1usize, 7, 8, 9, 63, 64, 65, 100, 1000, 1_000_001] {
            let loads = vec![1u128; m];
            let idx = LoadIndex::new(&loads);
            let mut expect = m.div_ceil(FANOUT);
            for (k, level) in idx.levels.iter().enumerate() {
                assert_eq!(level.len(), expect, "m={m} level={k}");
                expect = expect.div_ceil(FANOUT);
            }
            assert_eq!(idx.levels.last().unwrap().len(), 1, "m={m} root");
            // The whole arena is < m/(FANOUT-1) + levels nodes — strictly
            // smaller than the machine count it indexes (for m > 1).
            let nodes = idx.node_count();
            assert!(
                nodes <= m.div_ceil(FANOUT - 1) + idx.levels.len(),
                "m={m}: {nodes} nodes"
            );
        }
    }

    #[test]
    fn tie_breaking_matches_naive_scans() {
        // All-equal loads: argmax must be the LAST index, argmin the FIRST.
        let loads = vec![4u128; 6];
        let idx = LoadIndex::new(&loads);
        assert_eq!(idx.argmax(), Some(5));
        assert_eq!(idx.argmin_active(), Some(0));
        assert_eq!(idx.argmax_active(), Some(5));
    }

    #[test]
    fn updates_track_the_naive_scan() {
        let mut loads: Vec<u128> = vec![10, 3, 7, 3, 9];
        let mut idx = LoadIndex::new(&loads);
        let updates = [(0usize, 1u128), (4, 1), (2, 20), (1, 20), (2, 2)];
        for (i, v) in updates {
            let old = loads[i];
            loads[i] = v;
            idx.update(&loads, i, old);
            assert_eq!(idx.argmax(), naive_argmax(&loads), "after {i} <- {v}");
            assert_eq!(idx.argmin_active(), naive_argmin_active(&loads, &[true; 5]));
            assert_eq!(idx.total(), loads.iter().sum::<u128>());
            assert!(idx.is_consistent_with(&loads));
        }
    }

    #[test]
    fn adverse_champion_updates_recover_across_groups() {
        // m > FANOUT so the arena has two levels; repeatedly demote the
        // current champion so every update takes the flush path.
        let mut loads: Vec<u128> = (0..20).map(|i| 100 + i as u128).collect();
        let mut idx = LoadIndex::new(&loads);
        for step in 0..40 {
            let champ = idx.argmax().unwrap();
            let old = loads[champ];
            loads[champ] = step % 7; // crash the maximum
            idx.update(&loads, champ, old);
            assert_eq!(idx.argmax(), naive_argmax(&loads), "step {step}");
            assert_eq!(
                idx.argmin_active(),
                naive_argmin_active(&loads, &[true; 20])
            );
            assert_eq!(
                idx.argmax_active(),
                naive_argmax_active(&loads, &[true; 20])
            );
        }
        assert!(idx.is_consistent_with(&loads));
    }

    #[test]
    fn active_mask_hides_machines_from_active_queries_only() {
        let loads: Vec<u128> = vec![5, 1, 8, 2];
        let mut idx = LoadIndex::new(&loads);
        idx.set_active(&loads, 1, false); // the global minimum goes offline
        idx.set_active(&loads, 2, false); // the global maximum goes offline
        assert_eq!(idx.argmax(), Some(2), "global argmax ignores the mask");
        assert_eq!(idx.argmin_active(), Some(3));
        assert_eq!(idx.argmax_active(), Some(0));
        assert!(!idx.is_active(1) && idx.is_active(0));
        // Reactivation restores the original answers.
        idx.set_active(&loads, 1, true);
        idx.set_active(&loads, 2, true);
        assert_eq!(idx.argmin_active(), Some(1));
        assert_eq!(idx.argmax_active(), Some(2));
        assert!(idx.is_consistent_with(&loads));
    }

    #[test]
    fn all_inactive_yields_none() {
        let loads: Vec<u128> = vec![3, 3];
        let mut idx = LoadIndex::new(&loads);
        idx.set_active(&loads, 0, false);
        idx.set_active(&loads, 1, false);
        assert_eq!(idx.argmin_active(), None);
        assert_eq!(idx.argmax_active(), None);
        assert_eq!(idx.argmax(), Some(1), "global query unaffected");
    }

    #[test]
    fn entries_expose_exact_loads() {
        let loads: Vec<u128> = vec![5, 1, 8, 2];
        let idx = LoadIndex::new(&loads);
        assert_eq!(idx.max_all_entry(), Some((8, 2)));
        assert_eq!(idx.min_active_entry(), Some((1, 1)));
        assert_eq!(idx.max_active_entry(), Some((8, 2)));
    }

    #[test]
    fn consistency_check_detects_stale_trees() {
        let loads: Vec<u128> = vec![1, 2, 3];
        let idx = LoadIndex::new(&loads);
        // The caller mutated a load without telling the index.
        let corrupted: Vec<u128> = vec![1, 2, 30];
        assert!(idx.is_consistent_with(&loads));
        assert!(!idx.is_consistent_with(&corrupted));
        assert!(!idx.is_consistent_with(&loads[..2]));
    }

    #[test]
    fn randomized_ops_match_naive_scans() {
        // Deterministic pseudo-random op mix across group boundaries.
        let m = 37usize; // non-power-of-two, two arena levels
        let mut loads: Vec<u128> = (0..m).map(|i| (i * 13 % 29) as u128).collect();
        let mut active = vec![true; m];
        let mut idx = LoadIndex::new(&loads);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            let i = (next() % m as u64) as usize;
            match next() % 4 {
                0 => {
                    let old = loads[i];
                    loads[i] = u128::from(next() % 50);
                    idx.update(&loads, i, old);
                }
                1 => {
                    active[i] = !active[i];
                    idx.set_active(&loads, i, active[i]);
                }
                2 => {
                    let old = loads[i];
                    loads[i] = old.saturating_sub(u128::from(next() % 5));
                    idx.update(&loads, i, old);
                }
                _ => {
                    let old = loads[i];
                    loads[i] = old + u128::from(next() % 5);
                    idx.update(&loads, i, old);
                }
            }
            assert_eq!(idx.argmax(), naive_argmax(&loads));
            assert_eq!(idx.argmin_active(), naive_argmin_active(&loads, &active));
            assert_eq!(idx.argmax_active(), naive_argmax_active(&loads, &active));
            assert_eq!(idx.total(), loads.iter().sum::<u128>());
        }
        assert!(idx.is_consistent_with(&loads));
    }
}
