//! An incremental tournament-tree index over machine loads.
//!
//! [`LoadIndex`] is a pair of segment trees (argmax / argmin) over a slice
//! of `u128` machine loads, maintained leaf-by-leaf: updating one
//! machine's load costs O(log m), and the global argmax ("which machine
//! attains the makespan"), the argmin over *active* machines ("cheapest
//! online victim"), and the argmax over active machines are all O(1)
//! reads of a tree root. [`crate::Assignment`] embeds one so that
//! `makespan()` — which simulation probes call every round — stops being
//! an O(m) rescan of all loads.
//!
//! The index does not own the loads: every query and update takes the
//! load slice as a parameter, and the caller (the assignment) guarantees
//! the slice it passes is the one the tree was built over. Tie-breaking
//! matches the naive scans the index replaces exactly, so swapping it in
//! is observationally invisible:
//!
//! * argmax ties resolve to the **highest** machine index (like
//!   `Iterator::max_by_key`, which keeps the last maximum);
//! * argmin ties resolve to the **lowest** machine index (like
//!   `Iterator::min_by_key`, which keeps the first minimum).
//!
//! Each machine additionally carries an *active* flag (all machines start
//! active). Inactive machines are invisible to the `*_active` queries but
//! still participate in the global argmax — the makespan of an assignment
//! is defined over all machines, while victim/target selection under
//! churn must skip offline ones.

/// Sentinel meaning "no machine" inside the trees.
const NONE: u32 = u32::MAX;

/// A tournament tree (segment tree) over machine loads with O(log m)
/// point updates and O(1) argmax / argmin-over-active / argmax-over-active
/// queries. See the [module docs](self) for tie-breaking guarantees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadIndex {
    /// Number of leaf slots; a power of two (0 for an empty index).
    size: usize,
    /// Per-machine active flag.
    active: Vec<bool>,
    /// Argmax over all machines. Implicit heap: node `i` has children
    /// `2i`/`2i+1`, leaves at `size + machine`; entries are machine
    /// indices (or [`NONE`] for padding).
    max_all: Vec<u32>,
    /// Argmin over active machines.
    min_act: Vec<u32>,
    /// Argmax over active machines.
    max_act: Vec<u32>,
    /// Cached sum of all loads (exact, in `u128`).
    total: u128,
}

impl LoadIndex {
    /// Builds the index over `loads` in O(m), with every machine active.
    pub fn new(loads: &[u128]) -> Self {
        let m = loads.len();
        let size = m.next_power_of_two().max(usize::from(m > 0));
        let mut idx = Self {
            size,
            active: vec![true; m],
            max_all: vec![NONE; 2 * size],
            min_act: vec![NONE; 2 * size],
            max_act: vec![NONE; 2 * size],
            total: loads.iter().sum(),
        };
        if m == 0 {
            return idx;
        }
        for i in 0..m {
            idx.max_all[size + i] = i as u32;
            idx.min_act[size + i] = i as u32;
            idx.max_act[size + i] = i as u32;
        }
        for n in (1..size).rev() {
            idx.max_all[n] = combine_max(loads, idx.max_all[2 * n], idx.max_all[2 * n + 1]);
            idx.min_act[n] = combine_min(loads, idx.min_act[2 * n], idx.min_act[2 * n + 1]);
            idx.max_act[n] = combine_max(loads, idx.max_act[2 * n], idx.max_act[2 * n + 1]);
        }
        idx
    }

    /// Number of machines indexed.
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// Whether the index covers no machines.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Cached total work `sum_i load(i)` (exact).
    #[inline]
    pub fn total(&self) -> u128 {
        self.total
    }

    /// Records that machine `i`'s load changed from `old` to `loads[i]`,
    /// repairing the O(log m) path to each tree root. `loads` must be the
    /// post-change slice.
    pub fn update(&mut self, loads: &[u128], i: usize, old: u128) {
        self.total = self.total - old + loads[i];
        self.repair(loads, i);
    }

    /// Whether machine `i` is active.
    #[inline]
    pub fn is_active(&self, i: usize) -> bool {
        self.active[i]
    }

    /// Sets machine `i`'s active flag, repairing the active trees in
    /// O(log m). A no-op when the flag already has that value.
    pub fn set_active(&mut self, loads: &[u128], i: usize, active: bool) {
        if self.active[i] == active {
            return;
        }
        self.active[i] = active;
        self.repair(loads, i);
    }

    /// The machine with the maximal load, ties to the highest index
    /// (`None` only when the index is empty).
    #[inline]
    pub fn argmax(&self) -> Option<usize> {
        leaf(self.max_all.get(1))
    }

    /// The *active* machine with the minimal load, ties to the lowest
    /// index (`None` when no machine is active).
    #[inline]
    pub fn argmin_active(&self) -> Option<usize> {
        leaf(self.min_act.get(1))
    }

    /// The *active* machine with the maximal load, ties to the highest
    /// index (`None` when no machine is active).
    #[inline]
    pub fn argmax_active(&self) -> Option<usize> {
        leaf(self.max_act.get(1))
    }

    /// Recomputes the O(log m) root paths for leaf `i`.
    fn repair(&mut self, loads: &[u128], i: usize) {
        let leaf = self.size + i;
        self.min_act[leaf] = if self.active[i] { i as u32 } else { NONE };
        self.max_act[leaf] = self.min_act[leaf];
        let mut n = leaf / 2;
        while n >= 1 {
            self.max_all[n] = combine_max(loads, self.max_all[2 * n], self.max_all[2 * n + 1]);
            self.min_act[n] = combine_min(loads, self.min_act[2 * n], self.min_act[2 * n + 1]);
            self.max_act[n] = combine_max(loads, self.max_act[2 * n], self.max_act[2 * n + 1]);
            n /= 2;
        }
    }

    /// Full-scan cross-check used by `Assignment::validate`: rebuilds the
    /// index from scratch and compares every node and the cached total.
    pub fn is_consistent_with(&self, loads: &[u128]) -> bool {
        if loads.len() != self.active.len() {
            return false;
        }
        let mut fresh = Self::new(loads);
        for (i, &a) in self.active.iter().enumerate() {
            fresh.set_active(loads, i, a);
        }
        fresh == *self
    }
}

#[inline]
fn leaf(node: Option<&u32>) -> Option<usize> {
    match node {
        Some(&i) if i != NONE => Some(i as usize),
        _ => None,
    }
}

/// Argmax combine; `b` is the right (higher-index) child's candidate, so
/// `>=` keeps the highest index on ties — matching `max_by_key`.
#[inline]
fn combine_max(loads: &[u128], a: u32, b: u32) -> u32 {
    match (a, b) {
        (NONE, x) => x,
        (x, NONE) => x,
        (a, b) => {
            if loads[b as usize] >= loads[a as usize] {
                b
            } else {
                a
            }
        }
    }
}

/// Argmin combine; `a` is the left (lower-index) child's candidate, so
/// `<=` keeps the lowest index on ties — matching `min_by_key`.
#[inline]
fn combine_min(loads: &[u128], a: u32, b: u32) -> u32 {
    match (a, b) {
        (NONE, x) => x,
        (x, NONE) => x,
        (a, b) => {
            if loads[a as usize] <= loads[b as usize] {
                a
            } else {
                b
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_argmax(loads: &[u128]) -> Option<usize> {
        loads
            .iter()
            .enumerate()
            .max_by_key(|(_, &l)| l)
            .map(|(i, _)| i)
    }

    fn naive_argmin_active(loads: &[u128], active: &[bool]) -> Option<usize> {
        loads
            .iter()
            .enumerate()
            .filter(|&(i, _)| active[i])
            .min_by_key(|(_, &l)| l)
            .map(|(i, _)| i)
    }

    #[test]
    fn empty_index() {
        let idx = LoadIndex::new(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.argmax(), None);
        assert_eq!(idx.argmin_active(), None);
        assert_eq!(idx.argmax_active(), None);
        assert_eq!(idx.total(), 0);
    }

    #[test]
    fn singleton_and_non_power_of_two() {
        for m in [1usize, 3, 5, 6, 7, 9] {
            let loads: Vec<u128> = (0..m).map(|i| ((i * 7) % 5) as u128).collect();
            let idx = LoadIndex::new(&loads);
            assert_eq!(idx.argmax(), naive_argmax(&loads), "m={m}");
            assert_eq!(
                idx.argmin_active(),
                naive_argmin_active(&loads, &vec![true; m]),
                "m={m}"
            );
            assert_eq!(idx.total(), loads.iter().sum::<u128>());
        }
    }

    #[test]
    fn tie_breaking_matches_naive_scans() {
        // All-equal loads: argmax must be the LAST index, argmin the FIRST.
        let loads = vec![4u128; 6];
        let idx = LoadIndex::new(&loads);
        assert_eq!(idx.argmax(), Some(5));
        assert_eq!(idx.argmin_active(), Some(0));
        assert_eq!(idx.argmax_active(), Some(5));
    }

    #[test]
    fn updates_track_the_naive_scan() {
        let mut loads: Vec<u128> = vec![10, 3, 7, 3, 9];
        let mut idx = LoadIndex::new(&loads);
        let updates = [(0usize, 1u128), (4, 1), (2, 20), (1, 20), (2, 2)];
        for (i, v) in updates {
            let old = loads[i];
            loads[i] = v;
            idx.update(&loads, i, old);
            assert_eq!(idx.argmax(), naive_argmax(&loads), "after {i} <- {v}");
            assert_eq!(idx.argmin_active(), naive_argmin_active(&loads, &[true; 5]));
            assert_eq!(idx.total(), loads.iter().sum::<u128>());
            assert!(idx.is_consistent_with(&loads));
        }
    }

    #[test]
    fn active_mask_hides_machines_from_active_queries_only() {
        let loads: Vec<u128> = vec![5, 1, 8, 2];
        let mut idx = LoadIndex::new(&loads);
        idx.set_active(&loads, 1, false); // the global minimum goes offline
        idx.set_active(&loads, 2, false); // the global maximum goes offline
        assert_eq!(idx.argmax(), Some(2), "global argmax ignores the mask");
        assert_eq!(idx.argmin_active(), Some(3));
        assert_eq!(idx.argmax_active(), Some(0));
        assert!(!idx.is_active(1) && idx.is_active(0));
        // Reactivation restores the original answers.
        idx.set_active(&loads, 1, true);
        idx.set_active(&loads, 2, true);
        assert_eq!(idx.argmin_active(), Some(1));
        assert_eq!(idx.argmax_active(), Some(2));
        assert!(idx.is_consistent_with(&loads));
    }

    #[test]
    fn all_inactive_yields_none() {
        let loads: Vec<u128> = vec![3, 3];
        let mut idx = LoadIndex::new(&loads);
        idx.set_active(&loads, 0, false);
        idx.set_active(&loads, 1, false);
        assert_eq!(idx.argmin_active(), None);
        assert_eq!(idx.argmax_active(), None);
        assert_eq!(idx.argmax(), Some(1), "global query unaffected");
    }

    #[test]
    fn consistency_check_detects_stale_trees() {
        let loads: Vec<u128> = vec![1, 2, 3];
        let idx = LoadIndex::new(&loads);
        // The caller mutated a load without telling the index.
        let corrupted: Vec<u128> = vec![1, 2, 30];
        assert!(idx.is_consistent_with(&loads));
        assert!(!idx.is_consistent_with(&corrupted));
        assert!(!idx.is_consistent_with(&loads[..2]));
    }
}
