//! Strongly-typed identifiers.
//!
//! Using newtypes instead of bare `usize` prevents an entire class of
//! index-confusion bugs (machine index used as job index and vice versa)
//! that are easy to introduce in pairwise-balancing code where both kinds
//! of indices fly around together.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $repr:ty) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
        )]
        pub struct $name(pub $repr);

        impl $name {
            /// The identifier as a `usize`, for indexing into dense arrays.
            #[inline]
            pub fn idx(self) -> usize {
                self.0 as usize
            }

            /// Builds the identifier from a dense array index.
            ///
            /// # Panics
            /// Panics if `i` does not fit the underlying representation.
            #[inline]
            pub fn from_idx(i: usize) -> Self {
                Self(<$repr>::try_from(i).expect("id out of range"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<$repr> for $name {
            fn from(v: $repr) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// Identifies a machine (the paper uses "machine" and "processor"
    /// interchangeably).
    MachineId,
    u32
);
id_type!(
    /// Identifies a job (the paper uses "job" and "task" interchangeably).
    JobId,
    u32
);
id_type!(
    /// Identifies a cluster of identical machines (Section VI limits the
    /// system to two clusters, e.g. the CPUs and the GPUs of a hybrid
    /// cluster).
    ClusterId,
    u16
);
id_type!(
    /// Identifies a *type* of job (Section V groups jobs whose processing
    /// time vectors are identical).
    JobTypeId,
    u16
);

/// The two clusters of the Section VI setting.
impl ClusterId {
    /// First cluster (`M^1` in the paper).
    pub const ONE: ClusterId = ClusterId(0);
    /// Second cluster (`M^2` in the paper).
    pub const TWO: ClusterId = ClusterId(1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_idx() {
        for i in [0usize, 1, 7, 1000] {
            assert_eq!(MachineId::from_idx(i).idx(), i);
            assert_eq!(JobId::from_idx(i).idx(), i);
            assert_eq!(ClusterId::from_idx(i).idx(), i);
            assert_eq!(JobTypeId::from_idx(i).idx(), i);
        }
    }

    #[test]
    #[should_panic(expected = "id out of range")]
    fn cluster_id_overflow_panics() {
        let _ = ClusterId::from_idx(usize::from(u16::MAX) + 1);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let set: HashSet<MachineId> = (0..10).map(MachineId).collect();
        assert_eq!(set.len(), 10);
        assert!(MachineId(1) < MachineId(2));
        assert!(JobId(3) > JobId(0));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", MachineId(4)), "4");
        assert_eq!(format!("{:?}", JobId(9)), "JobId(9)");
        assert_eq!(ClusterId::ONE.idx(), 0);
        assert_eq!(ClusterId::TWO.idx(), 1);
    }

    #[test]
    fn from_repr() {
        let m: MachineId = 5u32.into();
        assert_eq!(m, MachineId(5));
    }
}
