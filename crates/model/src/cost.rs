//! Cost structures: how long does job `j` take on machine `i`?
//!
//! The paper's problem is `R||Cmax`: processing times `p[i][j]` are
//! arbitrary. Its algorithms however exploit *structure* in the cost
//! matrix (identical machines, job types, two clusters of identical
//! machines). [`Costs`] captures each structure explicitly so algorithms
//! can pattern-match on it, while [`Costs::cost`] always exposes the flat
//! `p[i][j]` view.

use crate::ids::{ClusterId, JobTypeId};
use serde::{Deserialize, Serialize};

/// Processing times are integer "work units".
///
/// The paper's Markov model (Section VII.A) requires integer loads, and its
/// simulations draw job lengths uniformly from `[1, 1000]`, so `u64` loses
/// nothing while keeping makespans exact (no floating-point accumulation
/// error when comparing two schedules that differ by one unit).
pub type Time = u64;

/// A processing time denoting that a job cannot run on a machine.
///
/// The problem definition allows `p[i][j]` to be infinite. All load
/// arithmetic in this workspace uses saturating addition so a machine
/// holding an infeasible job has load `INFEASIBLE`, which dominates every
/// makespan comparison, as intended.
pub const INFEASIBLE: Time = Time::MAX;

/// The cost structure of an instance.
///
/// Machine count is implied by [`crate::Instance`] (which also carries the
/// machine-to-cluster map); variants embed only what they intrinsically
/// define. All variants answer [`Costs::cost`] in `O(1)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Costs {
    /// Fully heterogeneous (unrelated) machines: a dense `|M| x |J|`
    /// matrix, row-major by machine.
    Dense {
        /// Number of machines (rows).
        num_machines: usize,
        /// Number of jobs (columns).
        num_jobs: usize,
        /// `costs[i * num_jobs + j]` is `p[i][j]`.
        costs: Vec<Time>,
    },
    /// Identical machines: every machine processes job `j` in `sizes[j]`.
    Uniform {
        /// Per-job processing time, identical on all machines.
        sizes: Vec<Time>,
    },
    /// Related machines: `p[i][j] = sizes[j] * slowdowns[i]`.
    ///
    /// A slowdown of 1 is the fastest machine; larger slowdowns are
    /// proportionally slower. Integer slowdowns keep the arithmetic exact.
    Related {
        /// Per-job base size.
        sizes: Vec<Time>,
        /// Per-machine integer slowdown factor (must be >= 1).
        slowdowns: Vec<u64>,
    },
    /// Jobs grouped by type (Section V): two jobs of the same type have the
    /// same processing-time vector.
    Typed {
        /// Number of machines (columns of `type_costs`).
        num_machines: usize,
        /// Type of each job.
        type_of: Vec<JobTypeId>,
        /// `type_costs[t][i]` is the processing time of a type-`t` job on
        /// machine `i`.
        type_costs: Vec<Vec<Time>>,
    },
    /// Two clusters of identical machines (Section VI): each job has one
    /// cost per cluster; the cluster of each machine comes from the
    /// instance's cluster map.
    TwoCluster {
        /// `(p1[j], p2[j])`: processing time of job `j` on any machine of
        /// cluster 1 / cluster 2.
        costs: Vec<(Time, Time)>,
    },
    /// `c >= 2` clusters of identical machines — the Section VIII
    /// extension setting ("its extension to more than two clusters").
    /// Each job has one cost per cluster.
    MultiCluster {
        /// Number of clusters `c`.
        num_clusters: usize,
        /// Job-major: `costs[j * num_clusters + c]` is the processing
        /// time of job `j` on any machine of cluster `c`.
        costs: Vec<Time>,
    },
}

impl Costs {
    /// Number of jobs this cost structure describes.
    pub fn num_jobs(&self) -> usize {
        match self {
            Costs::Dense { num_jobs, .. } => *num_jobs,
            Costs::Uniform { sizes } => sizes.len(),
            Costs::Related { sizes, .. } => sizes.len(),
            Costs::Typed { type_of, .. } => type_of.len(),
            Costs::TwoCluster { costs } => costs.len(),
            Costs::MultiCluster {
                num_clusters,
                costs,
            } => costs.len() / num_clusters.max(&1),
        }
    }

    /// Number of machines, when the structure intrinsically fixes it.
    ///
    /// `Uniform` and `TwoCluster` structures describe costs for *any*
    /// number of machines, so they return `None`; the instance supplies
    /// the machine count.
    pub fn num_machines(&self) -> Option<usize> {
        match self {
            Costs::Dense { num_machines, .. } => Some(*num_machines),
            Costs::Related { slowdowns, .. } => Some(slowdowns.len()),
            Costs::Typed { num_machines, .. } => Some(*num_machines),
            Costs::Uniform { .. } | Costs::TwoCluster { .. } | Costs::MultiCluster { .. } => None,
        }
    }

    /// `p[i][j]` for machine index `machine` belonging to `cluster`.
    ///
    /// `cluster` is only consulted by the `TwoCluster` variant; the caller
    /// ([`crate::Instance::cost`]) owns the machine-to-cluster map.
    #[inline]
    pub fn cost(&self, machine: usize, cluster: ClusterId, job: usize) -> Time {
        match self {
            Costs::Dense {
                num_jobs, costs, ..
            } => costs[machine * num_jobs + job],
            Costs::Uniform { sizes } => sizes[job],
            Costs::Related { sizes, slowdowns } => sizes[job].saturating_mul(slowdowns[machine]),
            Costs::Typed {
                type_of,
                type_costs,
                ..
            } => type_costs[type_of[job].idx()][machine],
            Costs::TwoCluster { costs } => {
                let (p1, p2) = costs[job];
                if cluster == ClusterId::ONE {
                    p1
                } else {
                    p2
                }
            }
            Costs::MultiCluster {
                num_clusters,
                costs,
            } => costs[job * num_clusters + cluster.idx()],
        }
    }

    /// Hints the CPU to pull the line holding `p[machine][job]`'s
    /// backing data toward L1 (row element for `Dense`, per-job entry
    /// for the compact variants). A pure scheduling hint — see
    /// [`crate::mem`] — issued when an exchange is planned but the cost
    /// lookups have not happened yet.
    #[inline]
    pub fn prefetch(&self, machine: usize, job: usize) {
        match self {
            Costs::Dense {
                num_jobs, costs, ..
            } => crate::mem::prefetch_index(costs, machine * num_jobs + job),
            Costs::Uniform { sizes } => crate::mem::prefetch_index(sizes, job),
            Costs::Related { sizes, .. } => crate::mem::prefetch_index(sizes, job),
            Costs::Typed { type_of, .. } => crate::mem::prefetch_index(type_of, job),
            Costs::TwoCluster { costs } => crate::mem::prefetch_index(costs, job),
            Costs::MultiCluster {
                num_clusters,
                costs,
            } => crate::mem::prefetch_index(costs, job * num_clusters),
        }
    }

    /// Requests hugepage backing for the structure's big flat tables
    /// (the dense matrix dwarfs every other buffer when present; the
    /// compact variants advise their per-job vectors). Folded into
    /// `report`; see [`crate::mem::advise_hugepages`].
    pub fn advise_hugepages(&self, report: &mut crate::mem::AdviseReport) {
        match self {
            Costs::Dense { costs, .. } => report.record(crate::mem::advise_hugepages(costs)),
            Costs::Uniform { sizes } => report.record(crate::mem::advise_hugepages(sizes)),
            Costs::Related { sizes, slowdowns } => {
                report.record(crate::mem::advise_hugepages(sizes));
                report.record(crate::mem::advise_hugepages(slowdowns));
            }
            Costs::Typed { type_of, .. } => {
                report.record(crate::mem::advise_hugepages(type_of));
            }
            Costs::TwoCluster { costs } => report.record(crate::mem::advise_hugepages(costs)),
            Costs::MultiCluster { costs, .. } => {
                report.record(crate::mem::advise_hugepages(costs));
            }
        }
    }

    /// The number of distinct job types, when the structure tracks types.
    ///
    /// * `Typed` — the declared number of types.
    /// * `Uniform` with all-equal sizes — 1 (the Section V.A case).
    /// * otherwise `None` (types would have to be recovered by comparing
    ///   whole cost columns, which callers can do if they need it).
    pub fn num_job_types(&self) -> Option<usize> {
        match self {
            Costs::Typed { type_costs, .. } => Some(type_costs.len()),
            Costs::Uniform { sizes } => {
                if sizes.windows(2).all(|w| w[0] == w[1]) {
                    Some(usize::from(!sizes.is_empty()))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// The type of a job, when the structure tracks types.
    pub fn job_type(&self, job: usize) -> Option<JobTypeId> {
        match self {
            Costs::Typed { type_of, .. } => Some(type_of[job]),
            _ => None,
        }
    }

    /// True if every machine sees the same processing time for every job.
    pub fn is_uniform(&self) -> bool {
        match self {
            Costs::Uniform { .. } => true,
            Costs::Related { slowdowns, .. } => slowdowns.windows(2).all(|w| w[0] == w[1]),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_cost_lookup() {
        let c = Costs::Dense {
            num_machines: 2,
            num_jobs: 3,
            costs: vec![1, 2, 3, 4, 5, 6],
        };
        assert_eq!(c.cost(0, ClusterId::ONE, 0), 1);
        assert_eq!(c.cost(0, ClusterId::ONE, 2), 3);
        assert_eq!(c.cost(1, ClusterId::ONE, 0), 4);
        assert_eq!(c.cost(1, ClusterId::ONE, 2), 6);
        assert_eq!(c.num_jobs(), 3);
        assert_eq!(c.num_machines(), Some(2));
        assert_eq!(c.num_job_types(), None);
    }

    #[test]
    fn uniform_ignores_machine() {
        let c = Costs::Uniform { sizes: vec![7, 8] };
        assert_eq!(c.cost(0, ClusterId::ONE, 0), 7);
        assert_eq!(c.cost(99, ClusterId::TWO, 1), 8);
        assert!(c.is_uniform());
        assert_eq!(c.num_machines(), None);
    }

    #[test]
    fn uniform_single_type_detection() {
        assert_eq!(
            Costs::Uniform {
                sizes: vec![5, 5, 5]
            }
            .num_job_types(),
            Some(1)
        );
        assert_eq!(Costs::Uniform { sizes: vec![5, 6] }.num_job_types(), None);
        assert_eq!(Costs::Uniform { sizes: vec![] }.num_job_types(), Some(0));
    }

    #[test]
    fn related_multiplies() {
        let c = Costs::Related {
            sizes: vec![3, 10],
            slowdowns: vec![1, 4],
        };
        assert_eq!(c.cost(0, ClusterId::ONE, 0), 3);
        assert_eq!(c.cost(1, ClusterId::ONE, 0), 12);
        assert_eq!(c.cost(1, ClusterId::ONE, 1), 40);
        assert!(!c.is_uniform());
        assert!(Costs::Related {
            sizes: vec![1],
            slowdowns: vec![2, 2]
        }
        .is_uniform());
    }

    #[test]
    fn related_saturates_on_infeasible() {
        let c = Costs::Related {
            sizes: vec![INFEASIBLE],
            slowdowns: vec![3],
        };
        assert_eq!(c.cost(0, ClusterId::ONE, 0), INFEASIBLE);
    }

    #[test]
    fn typed_lookup() {
        let c = Costs::Typed {
            num_machines: 2,
            type_of: vec![JobTypeId(0), JobTypeId(1), JobTypeId(0)],
            type_costs: vec![vec![10, 20], vec![5, 1]],
        };
        assert_eq!(c.cost(0, ClusterId::ONE, 0), 10);
        assert_eq!(c.cost(1, ClusterId::ONE, 0), 20);
        assert_eq!(c.cost(1, ClusterId::ONE, 1), 1);
        assert_eq!(c.cost(0, ClusterId::ONE, 2), 10);
        assert_eq!(c.num_job_types(), Some(2));
        assert_eq!(c.job_type(1), Some(JobTypeId(1)));
        assert_eq!(c.job_type(2), Some(JobTypeId(0)));
    }

    #[test]
    fn two_cluster_uses_cluster_of_machine() {
        let c = Costs::TwoCluster {
            costs: vec![(2, 9)],
        };
        assert_eq!(c.cost(0, ClusterId::ONE, 0), 2);
        assert_eq!(c.cost(5, ClusterId::TWO, 0), 9);
        assert_eq!(c.num_jobs(), 1);
    }

    #[test]
    fn serde_roundtrip() {
        let c = Costs::TwoCluster {
            costs: vec![(2, 9), (4, 4)],
        };
        let s = serde_json::to_string(&c).unwrap();
        let back: Costs = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }
}
