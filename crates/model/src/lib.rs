//! Problem substrate for load balancing on fully heterogeneous (unrelated)
//! machines, as studied in Cheriere & Saule, *"Considerations on Distributed
//! Load Balancing for Fully Heterogeneous Machines: Two Particular Cases"*
//! (2015).
//!
//! The crate models the classical `R||Cmax` setting: a set of sequential,
//! independent jobs must be partitioned over a set of machines that do not
//! share memory, minimizing the **makespan** (the time at which the last
//! machine finishes). Processing times `p[i][j]` are arbitrary per
//! machine/job pair, which subsumes the identical, related, typed-job, and
//! two-cluster special cases the paper builds its algorithms on.
//!
//! # Layout
//!
//! * [`ids`] — strongly-typed identifiers for machines, jobs, clusters and
//!   job types.
//! * [`cost`] — the [`cost::Costs`] enumeration of cost structures
//!   (dense unrelated, uniform, related, typed, two-cluster).
//! * [`instance`] — an immutable problem [`instance::Instance`]
//!   combining a cost structure with a machine-to-cluster map.
//! * [`assignment`] — a mutable [`assignment::Assignment`] of
//!   jobs to machines with incremental load bookkeeping.
//! * [`load_index`] — a fused, lazily-repaired d-ary arena over machine
//!   loads giving the assignment O(1) makespan/argmin queries with O(1)
//!   amortized updates.
//! * [`sharded_index`] — [`sharded_index::ShardedLoadIndex`]: the load
//!   index partitioned into S contiguous shards, merged at query time;
//!   the basis of parallel round execution in `lb-distsim`.
//! * [`shard_view`] — [`shard_view::ShardView`]: a mutable per-shard
//!   window over an assignment (disjoint across shards), handed out by
//!   [`assignment::Assignment::with_shard_views`].
//! * [`bounds`] — provable lower bounds on the optimal makespan.
//! * [`exact`] — exact solvers (brute force and branch-and-bound) for small
//!   instances, used to validate approximation guarantees in tests.
//! * [`invariant`] — runtime safety auditing: job conservation, single
//!   custody, and load-index consistency checks used by the simulators'
//!   `--check-invariants` mode and the chaos harness.
//! * [`mem`] — memory-locality primitives (software prefetch, hugepage
//!   advice) with portable no-op fallbacks; the only module permitted to
//!   contain `unsafe`.
//! * [`migrate`] — [`migrate::MigrationBatch`]: a machine-grouped,
//!   prefetch-pipelined applier for streams of planned job moves,
//!   draw-for-draw equivalent to sequential `move_job` calls.
//! * [`metrics`] — schedule quality metrics beyond the makespan
//!   (imbalance, fairness, utilization).
//! * [`perturb`] — cost misprediction: derive a "predicted" instance and
//!   evaluate schedules under the true one.
//!
//! # Example
//!
//! ```
//! use lb_model::prelude::*;
//!
//! // Two machines, three jobs, fully heterogeneous costs.
//! let inst = Instance::dense(2, 3, vec![
//!     1, 10, 4, // machine 0
//!     8, 2, 4, // machine 1
//! ]).unwrap();
//!
//! let mut asg = Assignment::all_on(&inst, MachineId(0));
//! assert_eq!(asg.makespan(), 15);
//! asg.move_job(&inst, JobId(1), MachineId(1));
//! assert_eq!(asg.makespan(), 5);
//! assert!(lb_model::bounds::combined_lower_bound(&inst) <= 5);
//! ```

// `deny` rather than `forbid`: the `mem` module carries the crate's only
// `#[allow(unsafe_code)]`, scoped to the prefetch intrinsics and the raw
// `madvise` syscall (both semantics-free hints). Everything else still
// refuses unsafe at compile time.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod bounds;
pub mod cost;
pub mod error;
pub mod exact;
pub mod ids;
pub mod instance;
pub mod invariant;
pub mod load_index;
pub mod mem;
pub mod metrics;
pub mod migrate;
pub mod perturb;
pub mod shard_view;
pub mod sharded_index;

pub use assignment::Assignment;
pub use cost::{Costs, Time, INFEASIBLE};
pub use error::{LbError, Result};
pub use ids::{ClusterId, JobId, JobTypeId, MachineId};
pub use instance::Instance;
pub use invariant::{check_custody, InvariantViolation};
pub use load_index::LoadIndex;
pub use migrate::{MigrationBatch, ADAPTIVE_BATCH_MIN};
pub use shard_view::ShardView;
pub use sharded_index::ShardedLoadIndex;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::assignment::Assignment;
    pub use crate::cost::{Costs, Time, INFEASIBLE};
    pub use crate::error::{LbError, Result};
    pub use crate::ids::{ClusterId, JobId, JobTypeId, MachineId};
    pub use crate::instance::Instance;
    pub use crate::migrate::MigrationBatch;
    pub use crate::shard_view::ShardView;
    pub use crate::sharded_index::ShardedLoadIndex;
}
