//! A sharded wrapper over [`LoadIndex`]: machines partitioned into S
//! contiguous shards, each with its own flat index.
//!
//! [`ShardedLoadIndex`] is what [`crate::Assignment`] actually embeds
//! (with S = 1 by default). Global queries merge the S shard roots at
//! query time — an O(S) fold over exact `(load, machine)` entries, still
//! effectively O(1) for S ≤ 64 — so every answer, including every
//! tie-break, is **identical for any shard count**: sharding is purely a
//! parallelism/locality knob, never a semantics knob. That invariance is
//! what lets `decent-lb simulate --shards N` promise byte-identical
//! output to the unsharded run, and what the `sharded_index_equivalence`
//! proptest pins down.
//!
//! The payoff of the partition is mutation locality: a shard's index can
//! be repaired independently of every other shard, which is how
//! `Assignment::with_shard_views` hands disjoint `&mut` shard views to a
//! rayon-parallel round driver (`lb-distsim`).

use crate::load_index::{beats_max, beats_min, LoadIndex};
use crate::mem::AdviseReport;

/// S contiguous-range shards of a [`LoadIndex`], merged at query time.
/// See the [module docs](self).
#[derive(Debug, Clone)]
pub struct ShardedLoadIndex {
    /// Machines per shard (the last shard may be smaller). 1 when empty.
    width: usize,
    /// Total number of machines.
    len: usize,
    shards: Vec<LoadIndex>,
}

impl ShardedLoadIndex {
    /// Builds the index over `loads` split into (up to) `shards`
    /// contiguous shards, every machine active. Shard counts are clamped
    /// to `[1, m]`; each shard spans `ceil(m / S)` machines.
    pub fn new(loads: &[u128], shards: usize) -> Self {
        let len = loads.len();
        let s = shards.clamp(1, len.max(1));
        let width = len.div_ceil(s).max(1);
        Self {
            width,
            len,
            shards: loads.chunks(width).map(LoadIndex::new).collect(),
        }
    }

    /// Number of shards (0 only when the index covers no machines).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Machines per shard (the last shard may cover fewer).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The shard machine `i` belongs to.
    #[inline]
    pub fn shard_of(&self, i: usize) -> usize {
        i / self.width
    }

    /// Number of machines indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index covers no machines.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable access to the per-shard indexes, for
    /// `Assignment::with_shard_views` (shard s indexes machines
    /// `[s * width, min((s+1) * width, m))` with shard-local ids).
    pub(crate) fn shards_mut(&mut self) -> &mut [LoadIndex] {
        &mut self.shards
    }

    /// Requests hugepage backing for every shard's arena buffers (see
    /// [`crate::mem::advise_hugepages`]); folded into `report`.
    pub(crate) fn advise_hugepages(&self, report: &mut AdviseReport) {
        for shard in &self.shards {
            shard.advise_hugepages(report);
        }
    }

    /// Prefetch hint for an upcoming [`update`](Self::update) of
    /// machine `i`; see [`LoadIndex::prefetch_update`].
    #[inline]
    pub(crate) fn prefetch_update(&self, i: usize) {
        let s = i / self.width;
        self.shards[s].prefetch_update(i - s * self.width);
    }

    /// The global-loads subrange covered by shard `s`.
    #[inline]
    fn range(&self, s: usize) -> (usize, usize) {
        let lo = s * self.width;
        (lo, (lo + self.width).min(self.len))
    }

    /// Total work `sum_i load(i)` (exact), folded over shard totals.
    pub fn total(&self) -> u128 {
        self.shards.iter().map(LoadIndex::total).sum()
    }

    /// Records that machine `i`'s load changed from `old` to `loads[i]`.
    /// `loads` is the full (global) post-change slice.
    #[inline]
    pub fn update(&mut self, loads: &[u128], i: usize, old: u128) {
        let s = i / self.width;
        let (lo, hi) = self.range(s);
        self.shards[s].update(&loads[lo..hi], i - lo, old);
    }

    /// [`update`](Self::update) with champion maintenance deferred to
    /// [`flush_deferred`](Self::flush_deferred); see
    /// [`LoadIndex::update_deferred`]. Queries are unreliable in
    /// between.
    #[inline]
    pub(crate) fn update_deferred(&mut self, loads: &[u128], i: usize, old: u128) {
        let s = i / self.width;
        let (lo, hi) = self.range(s);
        self.shards[s].update_deferred(&loads[lo..hi], i - lo, old);
    }

    /// Completes a deferred-update run: every shard with dirty groups
    /// recomputes its caches exactly; untouched shards are a no-op.
    pub(crate) fn flush_deferred(&mut self, loads: &[u128]) {
        let width = self.width;
        let len = self.len;
        for (s, shard) in self.shards.iter_mut().enumerate() {
            let lo = s * width;
            shard.flush_deferred(&loads[lo..(lo + width).min(len)]);
        }
    }

    /// Whether machine `i` is active.
    #[inline]
    pub fn is_active(&self, i: usize) -> bool {
        self.shards[i / self.width].is_active(i % self.width)
    }

    /// Sets machine `i`'s active flag (no-op when unchanged).
    pub fn set_active(&mut self, loads: &[u128], i: usize, active: bool) {
        let s = i / self.width;
        let (lo, hi) = self.range(s);
        self.shards[s].set_active(&loads[lo..hi], i - lo, active);
    }

    /// The machine with the maximal load, ties to the highest index;
    /// merged over shard roots in O(S).
    pub fn argmax(&self) -> Option<usize> {
        self.merge(LoadIndex::max_all_entry, beats_max)
    }

    /// The *active* machine with the minimal load, ties to the lowest
    /// index; merged over shard roots in O(S).
    pub fn argmin_active(&self) -> Option<usize> {
        self.merge(LoadIndex::min_active_entry, beats_min)
    }

    /// The *active* machine with the maximal load, ties to the highest
    /// index; merged over shard roots in O(S).
    pub fn argmax_active(&self) -> Option<usize> {
        self.merge(LoadIndex::max_active_entry, beats_max)
    }

    /// Folds one `(load, local-id)` entry per shard into the global
    /// winner under the given lexicographic predicate. Shards cover
    /// disjoint contiguous id ranges, so translating the winner's local
    /// id to `s * width + local` preserves every scan tie-break.
    fn merge(
        &self,
        per_shard: impl Fn(&LoadIndex) -> Option<(u128, usize)>,
        beats: impl Fn(u128, u32, u128, u32) -> bool,
    ) -> Option<usize> {
        let mut best_load = 0u128;
        let mut best_id = u32::MAX;
        let mut found = false;
        for (s, shard) in self.shards.iter().enumerate() {
            if let Some((load, local)) = per_shard(shard) {
                let gid = (s * self.width + local) as u32;
                if !found || beats(load, gid, best_load, best_id) {
                    best_load = load;
                    best_id = gid;
                    found = true;
                }
            }
        }
        found.then_some(best_id as usize)
    }

    /// Full-scan cross-check used by `Assignment::validate`: every shard
    /// must be consistent with its slice of `loads`, and the shard
    /// geometry must cover `loads` exactly.
    pub fn is_consistent_with(&self, loads: &[u128]) -> bool {
        if loads.len() != self.len {
            return false;
        }
        if self.shards.len() != self.len.div_ceil(self.width.max(1)) {
            return false;
        }
        self.shards
            .iter()
            .zip(loads.chunks(self.width))
            .all(|(shard, chunk)| shard.is_consistent_with(chunk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_argmax(loads: &[u128]) -> Option<usize> {
        loads
            .iter()
            .enumerate()
            .max_by_key(|(_, &l)| l)
            .map(|(i, _)| i)
    }

    #[test]
    fn empty_and_singleton() {
        let idx = ShardedLoadIndex::new(&[], 4);
        assert!(idx.is_empty());
        assert_eq!(idx.argmax(), None);
        assert_eq!(idx.num_shards(), 0);

        let idx = ShardedLoadIndex::new(&[7], 4);
        assert_eq!(idx.num_shards(), 1, "shard count clamps to m");
        assert_eq!(idx.argmax(), Some(0));
        assert_eq!(idx.total(), 7);
    }

    #[test]
    fn queries_are_shard_count_invariant() {
        let loads: Vec<u128> = vec![4, 9, 9, 1, 1, 4, 9, 2, 6, 6, 9];
        let reference = ShardedLoadIndex::new(&loads, 1);
        for s in 1..=loads.len() + 2 {
            let idx = ShardedLoadIndex::new(&loads, s);
            assert_eq!(idx.argmax(), reference.argmax(), "s={s}");
            assert_eq!(idx.argmin_active(), reference.argmin_active(), "s={s}");
            assert_eq!(idx.argmax_active(), reference.argmax_active(), "s={s}");
            assert_eq!(idx.total(), reference.total(), "s={s}");
            assert!(idx.is_consistent_with(&loads), "s={s}");
        }
        // And invariant to the naive scans themselves.
        assert_eq!(reference.argmax(), naive_argmax(&loads));
    }

    #[test]
    fn tie_breaks_cross_shard_boundaries() {
        // Equal maxima in different shards: the global argmax must be
        // the highest id, the active argmin the lowest, exactly as an
        // unsharded scan would pick.
        let loads = vec![5u128; 10];
        let idx = ShardedLoadIndex::new(&loads, 3);
        assert_eq!(idx.argmax(), Some(9));
        assert_eq!(idx.argmin_active(), Some(0));
        assert_eq!(idx.argmax_active(), Some(9));
    }

    #[test]
    fn updates_and_active_route_to_the_right_shard() {
        let mut loads: Vec<u128> = (0..10).map(|i| i as u128).collect();
        let mut idx = ShardedLoadIndex::new(&loads, 3);
        let old = loads[9];
        loads[9] = 0;
        idx.update(&loads, 9, old);
        assert_eq!(idx.argmax(), Some(8));
        idx.set_active(&loads, 9, false);
        assert!(!idx.is_active(9));
        assert_eq!(idx.argmin_active(), Some(0));
        idx.set_active(&loads, 0, false);
        assert_eq!(idx.argmin_active(), Some(1));
        assert!(idx.is_consistent_with(&loads));
    }

    #[test]
    fn consistency_check_detects_wrong_loads() {
        let loads: Vec<u128> = vec![1, 2, 3, 4, 5];
        let idx = ShardedLoadIndex::new(&loads, 2);
        assert!(idx.is_consistent_with(&loads));
        assert!(!idx.is_consistent_with(&[1, 2, 3, 4, 50]));
        assert!(!idx.is_consistent_with(&loads[..4]));
    }
}
