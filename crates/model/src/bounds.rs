//! Provable lower bounds on the optimal makespan `OPT`.
//!
//! Exact `OPT` is NP-hard (`R||Cmax`), so experiments measure
//! approximation quality against these bounds on instances too large for
//! the exact solvers of [`crate::exact`]. Every function here returns a
//! value that is *provably* `<= OPT`, so `Cmax / bound` over-estimates the
//! true ratio `Cmax / OPT` — a conservative direction for validating the
//! paper's guarantees.

use crate::cost::{Time, INFEASIBLE};
use crate::ids::ClusterId;
use crate::instance::Instance;

/// `max_j min_i p[i][j]`: some machine must run each job, so the optimum
/// is at least the cheapest cost of the most expensive job.
pub fn min_cost_lower_bound(inst: &Instance) -> Time {
    inst.jobs().map(|j| inst.min_cost_of(j)).max().unwrap_or(0)
}

/// `ceil( sum_j min_i p[i][j] / |M| )`: the total work is at least the sum
/// of per-job minima and must be spread over `|M|` machines, so some
/// machine carries at least the average.
pub fn average_work_lower_bound(inst: &Instance) -> Time {
    let total: u128 = inst.jobs().map(|j| u128::from(inst.min_cost_of(j))).sum();
    let m = inst.num_machines() as u128;
    Time::try_from(total.div_ceil(m)).unwrap_or(INFEASIBLE)
}

/// Exact optimum of the fractional two-cluster relaxation, as a real.
///
/// Relaxation: jobs may be split between the clusters and the machines of
/// a cluster share work perfectly (cluster makespan = cluster work /
/// cluster size). By a standard exchange argument the optimal fractional
/// solution sorts jobs by `p1/p2` and sends a prefix (plus at most one
/// split job) to cluster 1; we evaluate every prefix with its optimal
/// split and take the minimum. The result is `<= OPT`.
///
/// Returns `None` if the instance is not a two-cluster instance or any
/// cost is [`INFEASIBLE`] (the relaxation's arithmetic would be
/// meaningless).
pub fn two_cluster_fractional_lower_bound(inst: &Instance) -> Option<f64> {
    if !inst.is_two_cluster() {
        return None;
    }
    let m1 = inst.machines_in(ClusterId::ONE).len() as f64;
    let m2 = inst.machines_in(ClusterId::TWO).len() as f64;
    let rep1 = inst.machines_in(ClusterId::ONE)[0];
    let rep2 = inst.machines_in(ClusterId::TWO)[0];
    let mut jobs: Vec<(f64, f64)> = Vec::with_capacity(inst.num_jobs());
    for j in inst.jobs() {
        let p1 = inst.cost(rep1, j);
        let p2 = inst.cost(rep2, j);
        if p1 == INFEASIBLE || p2 == INFEASIBLE {
            return None;
        }
        jobs.push((p1 as f64, p2 as f64));
    }
    // Sort by p1/p2 ascending: cheapest-for-cluster-1 first. Compare by
    // cross-multiplication to avoid dividing by zero-cost jobs.
    jobs.sort_by(|a, b| (a.0 * b.1).total_cmp(&(b.0 * a.1)));

    let total2: f64 = jobs.iter().map(|&(_, p2)| p2).sum();
    let mut w1 = 0.0; // work of the prefix strictly before the split job, on cluster 1
    let mut w2_suffix = total2; // work of the split job and everything after, on cluster 2
    let mut best = f64::INFINITY;
    // Candidate k: jobs[..k] fully on cluster 1, jobs[k] split by x in
    // [0,1], jobs[k+1..] fully on cluster 2.
    for k in 0..=jobs.len() {
        if k == jobs.len() {
            best = best.min((w1 / m1).max(0.0));
            break;
        }
        let (p1, p2) = jobs[k];
        let w2_after = w2_suffix - p2; // suffix excluding the split job
        let eval = |x: f64| ((w1 + x * p1) / m1).max((w2_after + (1.0 - x) * p2) / m2);
        // Unconstrained equalizing split.
        let denom = m2 * p1 + m1 * p2;
        let x_star = if denom > 0.0 {
            ((m1 * (w2_after + p2) - m2 * w1) / denom).clamp(0.0, 1.0)
        } else {
            0.0
        };
        best = best.min(eval(0.0)).min(eval(1.0)).min(eval(x_star));
        w1 += p1;
        w2_suffix -= p2;
    }
    Some(best.max(0.0))
}

/// The strongest combined integer lower bound available for the instance.
///
/// Takes the max of [`min_cost_lower_bound`], [`average_work_lower_bound`]
/// and (for two-cluster instances) the fractional relaxation rounded *up*
/// with a small epsilon guard against floating-point noise (`OPT` is an
/// integer, so `OPT >= ceil(fractional)`; the guard only ever weakens the
/// bound).
pub fn combined_lower_bound(inst: &Instance) -> Time {
    let mut lb = min_cost_lower_bound(inst).max(average_work_lower_bound(inst));
    if let Some(frac) = two_cluster_fractional_lower_bound(inst) {
        let guarded = (frac - 1e-6).ceil();
        if guarded.is_finite() && guarded > 0.0 && (guarded as u128) <= u128::from(Time::MAX) {
            lb = lb.max(guarded as Time);
        }
    }
    lb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::Assignment;
    use crate::ids::MachineId;

    #[test]
    fn min_cost_bound_basic() {
        // Job 0: min 2, job 1: min 7 -> bound 7.
        let inst = Instance::dense(2, 2, vec![2, 9, 5, 7]).unwrap();
        assert_eq!(min_cost_lower_bound(&inst), 7);
    }

    #[test]
    fn min_cost_bound_empty_jobs() {
        let inst = Instance::dense(2, 0, vec![]).unwrap();
        assert_eq!(min_cost_lower_bound(&inst), 0);
        assert_eq!(average_work_lower_bound(&inst), 0);
        assert_eq!(combined_lower_bound(&inst), 0);
    }

    #[test]
    fn average_work_bound_rounds_up() {
        // 3 jobs of min-cost 1 on 2 machines: ceil(3/2) = 2.
        let inst = Instance::uniform(2, vec![1, 1, 1]).unwrap();
        assert_eq!(average_work_lower_bound(&inst), 2);
    }

    #[test]
    fn fractional_bound_only_for_two_clusters() {
        let inst = Instance::uniform(3, vec![1, 2]).unwrap();
        assert_eq!(two_cluster_fractional_lower_bound(&inst), None);
    }

    #[test]
    fn fractional_bound_balanced_case() {
        // Two single-machine clusters; jobs are (10,10) and (10,10):
        // best fractional spreads 20 units over 2 machines -> 10.
        let inst = Instance::two_cluster(1, 1, vec![(10, 10), (10, 10)]).unwrap();
        let lb = two_cluster_fractional_lower_bound(&inst).unwrap();
        assert!((lb - 10.0).abs() < 1e-9, "lb = {lb}");
    }

    #[test]
    fn fractional_bound_prefers_cheap_cluster() {
        // One job, much cheaper on cluster 2: fractional sends it there
        // almost entirely. With m1 = m2 = 1, optimum splits x so that
        // 100x = 10(1-x) -> x = 1/11 -> value 100/11 ≈ 9.09.
        let inst = Instance::two_cluster(1, 1, vec![(100, 10)]).unwrap();
        let lb = two_cluster_fractional_lower_bound(&inst).unwrap();
        assert!((lb - 100.0 / 11.0).abs() < 1e-9, "lb = {lb}");
    }

    #[test]
    fn fractional_bound_none_on_infeasible() {
        let inst = Instance::two_cluster(1, 1, vec![(INFEASIBLE, 10)]).unwrap();
        assert_eq!(two_cluster_fractional_lower_bound(&inst), None);
    }

    #[test]
    fn bounds_never_exceed_any_schedule() {
        // Whatever schedule we build, every bound must stay below its
        // makespan (bounds are on OPT <= any schedule).
        let inst =
            Instance::two_cluster(2, 2, vec![(5, 9), (7, 2), (3, 3), (8, 1), (2, 6)]).unwrap();
        let lb = combined_lower_bound(&inst);
        for pattern in 0..(4u32.pow(5)) {
            let mut p = pattern;
            let machine_of: Vec<MachineId> = (0..5)
                .map(|_| {
                    let m = MachineId(p % 4);
                    p /= 4;
                    m
                })
                .collect();
            let asg = Assignment::from_vec(&inst, machine_of).unwrap();
            assert!(
                lb <= asg.makespan(),
                "lb {lb} > makespan {}",
                asg.makespan()
            );
        }
    }

    #[test]
    fn combined_bound_takes_max() {
        // min-cost bound: 7 (job 1); avg work: ceil((2+7)/2) = 5 -> 7 wins.
        let inst = Instance::dense(2, 2, vec![2, 9, 5, 7]).unwrap();
        assert_eq!(combined_lower_bound(&inst), 7);
    }

    #[test]
    fn zero_cost_jobs_do_not_break_sort() {
        let inst = Instance::two_cluster(1, 1, vec![(0, 5), (5, 0), (0, 0)]).unwrap();
        let lb = two_cluster_fractional_lower_bound(&inst).unwrap();
        assert!((lb - 0.0).abs() < 1e-9, "lb = {lb}");
    }
}
