//! Runtime safety invariants over an [`Assignment`].
//!
//! The simulators in this workspace promise that rebalancing never
//! creates or destroys work: every job is owned by exactly one machine
//! at every instant, whatever faults the network injects. This module is
//! the checkable form of that promise. [`check_custody`] audits a full
//! custody snapshot — job conservation (the multiset of [`JobId`]s is
//! constant), single custody (each job appears on exactly one machine,
//! and that machine agrees with the job→machine map), and `LoadIndex`
//! consistency (the incremental makespan structures match a from-scratch
//! recompute via [`Assignment::validate`]).
//!
//! The checker is pure and dependency-free so every layer can use it:
//! `lb-distsim` wraps it in an `InvariantProbe` that re-audits after
//! every applied simulation event (opt-in via `--check-invariants`), and
//! the chaos harness treats any reported [`InvariantViolation`] as a
//! reproducer worth shrinking. Cost is `O(jobs + machines)` per audit.

use crate::assignment::Assignment;
use crate::error::LbError;
use crate::ids::{JobId, MachineId};
use crate::instance::Instance;
use std::fmt;

/// One detected breach of a custody/consistency invariant.
///
/// The monotonicity variants are produced by stateful wrappers (the
/// simulation probes) that watch clocks across events; the custody
/// variants come from [`check_custody`] snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InvariantViolation {
    /// The number of jobs across all machines differs from the
    /// instance's job count: work was created or destroyed.
    JobCountMismatch {
        /// Jobs the instance defines.
        expected: usize,
        /// Jobs found across all machine queues.
        actual: usize,
    },
    /// A job appears in no machine's job list.
    MissingJob {
        /// The orphaned job.
        job: JobId,
    },
    /// A job appears in more than one machine's job list.
    DuplicateCustody {
        /// The doubly-owned job.
        job: JobId,
        /// The machine that listed it first.
        first: MachineId,
        /// The machine that also lists it.
        second: MachineId,
    },
    /// A machine's job list and the job→machine map disagree.
    CustodyMismatch {
        /// The inconsistent job.
        job: JobId,
        /// The machine whose list contains the job.
        listed_on: MachineId,
        /// The machine the map claims owns it.
        mapped_to: MachineId,
    },
    /// [`Assignment::validate`] failed: the incremental load index (or
    /// another internal structure) drifted from the job lists.
    Inconsistent(
        /// The underlying validation error.
        LbError,
    ),
    /// A round/clock value decreased between observations.
    NonMonotonicClock {
        /// Which clock regressed (e.g. `"round"`, `"virtual time"`).
        clock: &'static str,
        /// The previously observed value.
        last: u64,
        /// The smaller value observed after it.
        seen: u64,
    },
    /// An agent's timer-invalidation epoch decreased.
    NonMonotonicEpoch {
        /// The machine whose epoch regressed.
        machine: MachineId,
        /// The previously observed epoch.
        last: u64,
        /// The smaller epoch observed after it.
        seen: u64,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::JobCountMismatch { expected, actual } => {
                write!(
                    f,
                    "job conservation: expected {expected} jobs, found {actual}"
                )
            }
            InvariantViolation::MissingJob { job } => {
                write!(f, "job {} is on no machine", job.0)
            }
            InvariantViolation::DuplicateCustody { job, first, second } => {
                write!(
                    f,
                    "job {} owned by both machine {} and machine {}",
                    job.0, first.0, second.0
                )
            }
            InvariantViolation::CustodyMismatch {
                job,
                listed_on,
                mapped_to,
            } => {
                write!(
                    f,
                    "job {} listed on machine {} but mapped to machine {}",
                    job.0, listed_on.0, mapped_to.0
                )
            }
            InvariantViolation::Inconsistent(e) => {
                write!(f, "assignment validation failed: {e}")
            }
            InvariantViolation::NonMonotonicClock { clock, last, seen } => {
                write!(f, "{clock} went backwards: {last} -> {seen}")
            }
            InvariantViolation::NonMonotonicEpoch {
                machine,
                last,
                seen,
            } => {
                write!(
                    f,
                    "machine {} epoch went backwards: {last} -> {seen}",
                    machine.0
                )
            }
        }
    }
}

/// Audits one custody snapshot, returning every violation found (empty
/// when the state is sound).
///
/// Checks, in order:
/// 1. **conservation** — the machines' job lists together hold exactly
///    the instance's jobs (no job lost, none minted);
/// 2. **single custody** — no job is listed on two machines, and each
///    listing agrees with [`Assignment::machine_of`];
/// 3. **index consistency** — [`Assignment::validate`] recomputes the
///    load vector and tournament trees from scratch and compares.
///
/// `O(jobs + machines)` time, one `jobs`-sized scratch allocation.
pub fn check_custody(inst: &Instance, asg: &Assignment) -> Vec<InvariantViolation> {
    let n = inst.num_jobs();
    let mut violations = Vec::new();
    let mut owner: Vec<Option<MachineId>> = vec![None; n];
    let mut listed = 0usize;
    for machine in inst.machines() {
        for &job in asg.jobs_on(machine) {
            listed += 1;
            if job.idx() >= n {
                violations.push(InvariantViolation::Inconsistent(LbError::InvalidJob {
                    job: job.idx(),
                    num_jobs: n,
                }));
                continue;
            }
            match owner[job.idx()] {
                None => owner[job.idx()] = Some(machine),
                Some(first) => violations.push(InvariantViolation::DuplicateCustody {
                    job,
                    first,
                    second: machine,
                }),
            }
            let mapped = asg.machine_of(job);
            if mapped != machine {
                violations.push(InvariantViolation::CustodyMismatch {
                    job,
                    listed_on: machine,
                    mapped_to: mapped,
                });
            }
        }
    }
    if listed != n {
        violations.push(InvariantViolation::JobCountMismatch {
            expected: n,
            actual: listed,
        });
    }
    for (j, o) in owner.iter().enumerate() {
        if o.is_none() {
            violations.push(InvariantViolation::MissingJob {
                job: JobId::from_idx(j),
            });
        }
    }
    if let Err(e) = asg.validate(inst) {
        violations.push(InvariantViolation::Inconsistent(e));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Instance, Assignment) {
        let inst = Instance::uniform(3, vec![2, 3, 5, 7]).unwrap();
        let asg = Assignment::round_robin(&inst);
        (inst, asg)
    }

    #[test]
    fn sound_state_has_no_violations() {
        let (inst, asg) = small();
        assert!(check_custody(&inst, &asg).is_empty());
    }

    #[test]
    fn every_constructor_passes() {
        let inst = Instance::uniform(2, vec![1, 1, 1]).unwrap();
        for asg in [
            Assignment::all_on(&inst, MachineId(0)),
            Assignment::round_robin(&inst),
            Assignment::from_vec(&inst, vec![MachineId(1), MachineId(0), MachineId(1)]).unwrap(),
        ] {
            assert!(check_custody(&inst, &asg).is_empty());
        }
    }

    #[test]
    fn moves_preserve_soundness() {
        let (inst, mut asg) = small();
        asg.move_job(&inst, JobId(0), MachineId(2));
        asg.move_job(&inst, JobId(3), MachineId(0));
        assert!(check_custody(&inst, &asg).is_empty());
    }

    #[test]
    fn violations_display_names_the_job() {
        let v = InvariantViolation::DuplicateCustody {
            job: JobId(7),
            first: MachineId(0),
            second: MachineId(2),
        };
        let s = v.to_string();
        assert!(s.contains("job 7"), "{s}");
        assert!(s.contains("machine 0"), "{s}");
    }

    #[test]
    fn clock_violation_display() {
        let v = InvariantViolation::NonMonotonicClock {
            clock: "round",
            last: 9,
            seen: 3,
        };
        assert!(v.to_string().contains("round went backwards"));
    }
}
