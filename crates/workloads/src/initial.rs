//! Initial distributions of jobs to machines.
//!
//! The decentralized algorithms assume jobs start with "an arbitrary
//! initial distribution" (Section II): pre-distributed statically,
//! spawned locally, or submitted to particular processors. These helpers
//! produce the initial [`Assignment`]s the experiments start from.

use lb_model::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Each job lands on a machine chosen uniformly at random — the paper's
/// simulation starting point ("jobs are randomly distributed at the
/// beginning of each experiment").
pub fn random_assignment(inst: &Instance, seed: u64) -> Assignment {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = inst.num_machines();
    Assignment::from_fn(inst, |_| MachineId::from_idx(rng.gen_range(0..m)))
        .expect("random machine ids are in range")
}

/// All jobs land on a random machine of the given cluster — models tasks
/// submitted through a head node of one side of a hybrid cluster.
pub fn cluster_local_assignment(inst: &Instance, cluster: ClusterId, seed: u64) -> Assignment {
    let mut rng = StdRng::seed_from_u64(seed);
    let machines = inst.machines_in(cluster);
    Assignment::from_fn(inst, |_| machines[rng.gen_range(0..machines.len())])
        .expect("cluster machine ids are in range")
}

/// Jobs land uniformly on the first `ceil(fraction * |M|)` machines —
/// a tunably bad skew (fraction 0 degenerates to "all on machine 0").
///
/// # Panics
/// Panics if `fraction` is not within `[0, 1]`.
pub fn skewed_assignment(inst: &Instance, fraction: f64, seed: u64) -> Assignment {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let k = ((fraction * inst.num_machines() as f64).ceil() as usize).clamp(1, inst.num_machines());
    Assignment::from_fn(inst, |_| MachineId::from_idx(rng.gen_range(0..k)))
        .expect("skewed machine ids are in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_cluster::paper_two_cluster;
    use crate::uniform::paper_uniform;

    #[test]
    fn random_assignment_covers_machines() {
        let inst = paper_uniform(8, 400, 1);
        let asg = random_assignment(&inst, 2);
        asg.validate(&inst).unwrap();
        // With 400 jobs over 8 machines, every machine should see jobs.
        for m in inst.machines() {
            assert!(asg.num_jobs_on(m) > 0, "machine {m} empty");
        }
        // Deterministic.
        assert_eq!(asg, random_assignment(&inst, 2));
    }

    #[test]
    fn cluster_local_stays_in_cluster() {
        let inst = paper_two_cluster(4, 4, 50, 3);
        let asg = cluster_local_assignment(&inst, ClusterId::TWO, 4);
        for j in inst.jobs() {
            assert_eq!(inst.cluster(asg.machine_of(j)), ClusterId::TWO);
        }
    }

    #[test]
    fn skewed_uses_prefix() {
        let inst = paper_uniform(10, 200, 5);
        let asg = skewed_assignment(&inst, 0.2, 6);
        for j in inst.jobs() {
            assert!(asg.machine_of(j).idx() < 2);
        }
        // fraction 0 clamps to a single machine.
        let asg0 = skewed_assignment(&inst, 0.0, 6);
        for j in inst.jobs() {
            assert_eq!(asg0.machine_of(j), MachineId(0));
        }
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn skew_fraction_checked() {
        let inst = paper_uniform(2, 2, 0);
        let _ = skewed_assignment(&inst, 1.5, 0);
    }
}
