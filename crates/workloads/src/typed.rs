//! Section V workloads: jobs grouped into `k` types.
//!
//! Jobs of the same type have the same processing-time vector across
//! machines ("simple queries can represent most of the jobs of a
//! system"). MJTB's guarantee is `k × OPT`, so generators expose `k`
//! directly.

use lb_model::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `k` job types with per-type per-machine costs drawn from `U[lo, hi]`,
/// and `num_jobs` jobs with types assigned uniformly at random.
pub fn typed_uniform(
    num_machines: usize,
    num_jobs: usize,
    k: usize,
    lo: Time,
    hi: Time,
    seed: u64,
) -> Instance {
    assert!(k >= 1, "need at least one job type");
    assert!(lo <= hi, "lo must be <= hi");
    let mut rng = StdRng::seed_from_u64(seed);
    let type_costs: Vec<Vec<Time>> = (0..k)
        .map(|_| (0..num_machines).map(|_| rng.gen_range(lo..=hi)).collect())
        .collect();
    let type_of = (0..num_jobs)
        .map(|_| JobTypeId::from_idx(rng.gen_range(0..k)))
        .collect();
    Instance::typed(num_machines, type_of, type_costs).expect("valid by construction")
}

/// Like [`typed_uniform`] but with a skewed (geometric-ish) type mix:
/// type `t` is roughly twice as common as type `t+1`, mimicking systems
/// where a few query types dominate.
pub fn typed_skewed(
    num_machines: usize,
    num_jobs: usize,
    k: usize,
    lo: Time,
    hi: Time,
    seed: u64,
) -> Instance {
    assert!(k >= 1, "need at least one job type");
    assert!(lo <= hi, "lo must be <= hi");
    let mut rng = StdRng::seed_from_u64(seed);
    let type_costs: Vec<Vec<Time>> = (0..k)
        .map(|_| (0..num_machines).map(|_| rng.gen_range(lo..=hi)).collect())
        .collect();
    // Geometric weights 2^(k-1), ..., 2, 1.
    let weights: Vec<u64> = (0..k).map(|t| 1u64 << (k - 1 - t).min(62)).collect();
    let total: u64 = weights.iter().sum();
    let type_of = (0..num_jobs)
        .map(|_| {
            let mut x = rng.gen_range(0..total);
            let mut t = 0;
            while x >= weights[t] {
                x -= weights[t];
                t += 1;
            }
            JobTypeId::from_idx(t)
        })
        .collect();
    Instance::typed(num_machines, type_of, type_costs).expect("valid by construction")
}

/// A single-type instance (Section V.A): all jobs identical, but machines
/// arbitrary — the setting where OJTB is provably optimal.
pub fn single_type(
    num_machines: usize,
    num_jobs: usize,
    lo: Time,
    hi: Time,
    seed: u64,
) -> Instance {
    typed_uniform(num_machines, num_jobs, 1, lo, hi, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_uniform_types_in_range() {
        let inst = typed_uniform(4, 100, 3, 1, 50, 2);
        assert_eq!(inst.num_job_types(), Some(3));
        for j in inst.jobs() {
            let t = inst.job_type(j).unwrap();
            assert!(t.idx() < 3);
        }
        // Same-type jobs have identical cost vectors.
        let (mut a, mut b) = (None, None);
        for j in inst.jobs() {
            if inst.job_type(j).unwrap() == JobTypeId(0) {
                if a.is_none() {
                    a = Some(j);
                } else if b.is_none() {
                    b = Some(j);
                }
            }
        }
        if let (Some(a), Some(b)) = (a, b) {
            for m in inst.machines() {
                assert_eq!(inst.cost(m, a), inst.cost(m, b));
            }
        }
    }

    #[test]
    fn skewed_prefers_early_types() {
        let inst = typed_skewed(2, 4000, 4, 1, 10, 3);
        let mut counts = [0usize; 4];
        for j in inst.jobs() {
            counts[inst.job_type(j).unwrap().idx()] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[3]);
    }

    #[test]
    fn single_type_has_one_type() {
        let inst = single_type(5, 30, 1, 100, 4);
        assert_eq!(inst.num_job_types(), Some(1));
        // All jobs identical on each machine.
        for m in inst.machines() {
            let c = inst.cost(m, JobId(0));
            for j in inst.jobs() {
                assert_eq!(inst.cost(m, j), c);
            }
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            typed_uniform(3, 20, 2, 1, 9, 7),
            typed_uniform(3, 20, 2, 1, 9, 7)
        );
        assert_eq!(
            typed_skewed(3, 20, 2, 1, 9, 7),
            typed_skewed(3, 20, 2, 1, 9, 7)
        );
    }
}
