//! Homogeneous (identical machines) workloads.

use lb_model::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One cluster of `num_machines` identical machines and `num_jobs` jobs
/// with lengths drawn uniformly from `[lo, hi]` (inclusive).
///
/// The paper's simulations use `lo = 1`, `hi = 1000`.
///
/// # Panics
/// Panics if `lo > hi` or `num_machines == 0`.
pub fn uniform_instance(
    num_machines: usize,
    num_jobs: usize,
    lo: Time,
    hi: Time,
    seed: u64,
) -> Instance {
    assert!(lo <= hi, "lo must be <= hi");
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes = (0..num_jobs).map(|_| rng.gen_range(lo..=hi)).collect();
    Instance::uniform(num_machines, sizes).expect("valid by construction")
}

/// The paper's standard homogeneous workload: lengths `U[1, 1000]`.
pub fn paper_uniform(num_machines: usize, num_jobs: usize, seed: u64) -> Instance {
    uniform_instance(num_machines, num_jobs, 1, 1000, seed)
}

/// Related machines: identical job length distribution but per-machine
/// integer slowdowns drawn uniformly from `[1, max_slowdown]`.
pub fn related_instance(
    num_machines: usize,
    num_jobs: usize,
    lo: Time,
    hi: Time,
    max_slowdown: u64,
    seed: u64,
) -> Instance {
    assert!(lo <= hi, "lo must be <= hi");
    assert!(max_slowdown >= 1, "max_slowdown must be >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes: Vec<Time> = (0..num_jobs).map(|_| rng.gen_range(lo..=hi)).collect();
    let slowdowns: Vec<u64> = (0..num_machines)
        .map(|_| rng.gen_range(1..=max_slowdown))
        .collect();
    Instance::related(sizes, slowdowns).expect("valid by construction")
}

/// Fully heterogeneous (dense unrelated) instance with every `p[i][j]`
/// drawn independently from `U[lo, hi]`.
pub fn dense_uniform(
    num_machines: usize,
    num_jobs: usize,
    lo: Time,
    hi: Time,
    seed: u64,
) -> Instance {
    assert!(lo <= hi, "lo must be <= hi");
    let mut rng = StdRng::seed_from_u64(seed);
    let costs = (0..num_machines * num_jobs)
        .map(|_| rng.gen_range(lo..=hi))
        .collect();
    Instance::dense(num_machines, num_jobs, costs).expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_in_range_and_deterministic() {
        let a = paper_uniform(4, 100, 42);
        let b = paper_uniform(4, 100, 42);
        assert_eq!(a, b);
        assert_eq!(a.num_machines(), 4);
        assert_eq!(a.num_jobs(), 100);
        for j in a.jobs() {
            let c = a.cost(MachineId(0), j);
            assert!((1..=1000).contains(&c));
            // Identical machines: same cost everywhere.
            assert_eq!(c, a.cost(MachineId(3), j));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = paper_uniform(4, 50, 1);
        let b = paper_uniform(4, 50, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn related_slowdowns_in_range() {
        let inst = related_instance(5, 20, 1, 10, 4, 7);
        assert_eq!(inst.num_machines(), 5);
        // Cost ratios between machines are consistent across jobs.
        let c0 =
            inst.cost(MachineId(0), JobId(0)) as f64 / inst.cost(MachineId(1), JobId(0)) as f64;
        let c1 =
            inst.cost(MachineId(0), JobId(5)) as f64 / inst.cost(MachineId(1), JobId(5)) as f64;
        assert!((c0 - c1).abs() < 1e-9);
    }

    #[test]
    fn dense_uniform_shape() {
        let inst = dense_uniform(3, 7, 5, 9, 11);
        for m in inst.machines() {
            for j in inst.jobs() {
                assert!((5..=9).contains(&inst.cost(m, j)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "lo must be <= hi")]
    fn bad_range_panics() {
        let _ = uniform_instance(2, 2, 10, 1, 0);
    }
}
