//! Declarative workload scenarios (serde-able experiment configs).
//!
//! Experiment configurations as data: a [`Scenario`] names a generator
//! family and its parameters, and `build` materializes the instance.
//! Used by the CLI (`--scenario file.json`) and by experiment sidecars so
//! a results CSV can always be traced back to the exact workload that
//! produced it.

use crate::{heavy_tail, two_cluster, typed, uniform};
use lb_model::prelude::*;
use serde::{Deserialize, Serialize};

/// A workload scenario, fully describing an instance generator call.
///
/// ```
/// use lb_workloads::scenario::Scenario;
///
/// let json = r#"{"family":"two-cluster","m1":4,"m2":2,"jobs":24,"lo":1,"hi":100}"#;
/// let scenario: Scenario = serde_json::from_str(json).unwrap();
/// let inst = scenario.build(42);
/// assert_eq!(inst.num_machines(), 6);
/// assert!(inst.is_two_cluster());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "family", rename_all = "kebab-case")]
pub enum Scenario {
    /// One homogeneous cluster, `U[lo, hi]` lengths.
    Uniform {
        /// Number of machines.
        machines: usize,
        /// Number of jobs.
        jobs: usize,
        /// Smallest job length.
        lo: Time,
        /// Largest job length.
        hi: Time,
    },
    /// Two clusters, independent `U[lo, hi]` per-cluster costs.
    TwoCluster {
        /// Machines in cluster 1.
        m1: usize,
        /// Machines in cluster 2.
        m2: usize,
        /// Number of jobs.
        jobs: usize,
        /// Smallest cost.
        lo: Time,
        /// Largest cost.
        hi: Time,
    },
    /// Two clusters, anti-correlated costs (`p2 = lo + hi - p1`).
    Inverted {
        /// Machines in cluster 1.
        m1: usize,
        /// Machines in cluster 2.
        m2: usize,
        /// Number of jobs.
        jobs: usize,
        /// Smallest cost.
        lo: Time,
        /// Largest cost.
        hi: Time,
    },
    /// Typed jobs with uniformly random per-type costs.
    Typed {
        /// Number of machines.
        machines: usize,
        /// Number of jobs.
        jobs: usize,
        /// Number of job types.
        types: usize,
        /// Smallest cost.
        lo: Time,
        /// Largest cost.
        hi: Time,
    },
    /// Heavy-tailed (bounded Pareto) homogeneous cluster.
    Pareto {
        /// Number of machines.
        machines: usize,
        /// Number of jobs.
        jobs: usize,
        /// Smallest length.
        lo: Time,
        /// Largest length.
        hi: Time,
        /// Pareto shape (smaller = heavier tail).
        alpha: f64,
    },
    /// `c` clusters of identical machines with independent per-cluster
    /// costs (the Section VIII extension setting).
    MultiCluster {
        /// Machines per cluster.
        sizes: Vec<usize>,
        /// Number of jobs.
        jobs: usize,
        /// Smallest cost.
        lo: Time,
        /// Largest cost.
        hi: Time,
    },
    /// Bimodal mice/elephants homogeneous cluster.
    Bimodal {
        /// Number of machines.
        machines: usize,
        /// Number of jobs.
        jobs: usize,
        /// Largest mouse size.
        small: Time,
        /// Largest elephant size.
        big: Time,
        /// Percentage of mice.
        mice_percent: u32,
    },
}

impl Scenario {
    /// Materializes the instance for this scenario with the given seed.
    pub fn build(&self, seed: u64) -> Instance {
        match *self {
            Scenario::Uniform {
                machines,
                jobs,
                lo,
                hi,
            } => uniform::uniform_instance(machines, jobs, lo, hi, seed),
            Scenario::TwoCluster {
                m1,
                m2,
                jobs,
                lo,
                hi,
            } => two_cluster::independent(m1, m2, jobs, lo, hi, seed),
            Scenario::Inverted {
                m1,
                m2,
                jobs,
                lo,
                hi,
            } => two_cluster::inverted(m1, m2, jobs, lo, hi, seed),
            Scenario::Typed {
                machines,
                jobs,
                types,
                lo,
                hi,
            } => typed::typed_uniform(machines, jobs, types, lo, hi, seed),
            Scenario::Pareto {
                machines,
                jobs,
                lo,
                hi,
                alpha,
            } => heavy_tail::pareto_uniform_cluster(machines, jobs, lo, hi, alpha, seed),
            Scenario::MultiCluster {
                ref sizes,
                jobs,
                lo,
                hi,
            } => crate::multi_cluster::independent(sizes, jobs, lo, hi, seed),
            Scenario::Bimodal {
                machines,
                jobs,
                small,
                big,
                mice_percent,
            } => heavy_tail::bimodal_cluster(machines, jobs, small, big, mice_percent, seed),
        }
    }

    /// The paper's standard heterogeneous scenario (64+32, 768 jobs).
    pub fn paper_default() -> Self {
        Scenario::TwoCluster {
            m1: 64,
            m2: 32,
            jobs: 768,
            lo: 1,
            hi: 1000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_each_family() {
        let scenarios = [
            Scenario::Uniform {
                machines: 3,
                jobs: 10,
                lo: 1,
                hi: 9,
            },
            Scenario::TwoCluster {
                m1: 2,
                m2: 2,
                jobs: 10,
                lo: 1,
                hi: 9,
            },
            Scenario::Inverted {
                m1: 2,
                m2: 2,
                jobs: 10,
                lo: 1,
                hi: 9,
            },
            Scenario::Typed {
                machines: 3,
                jobs: 10,
                types: 2,
                lo: 1,
                hi: 9,
            },
            Scenario::Pareto {
                machines: 3,
                jobs: 10,
                lo: 1,
                hi: 100,
                alpha: 1.5,
            },
            Scenario::MultiCluster {
                sizes: vec![2, 1, 1],
                jobs: 10,
                lo: 1,
                hi: 9,
            },
            Scenario::Bimodal {
                machines: 3,
                jobs: 10,
                small: 5,
                big: 90,
                mice_percent: 70,
            },
        ];
        for s in scenarios {
            let inst = s.build(1);
            assert_eq!(inst.num_jobs(), 10);
            assert!(inst.num_machines() >= 3);
            // Deterministic per seed.
            assert_eq!(inst, s.build(1));
        }
    }

    #[test]
    fn serde_roundtrip() {
        let s = Scenario::paper_default();
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("two-cluster"));
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn json_is_human_editable() {
        let json = r#"{"family":"uniform","machines":4,"jobs":8,"lo":1,"hi":10}"#;
        let s: Scenario = serde_json::from_str(json).unwrap();
        let inst = s.build(0);
        assert_eq!(inst.num_machines(), 4);
    }
}
