//! The paper's hand-built counterexample instances.
//!
//! * [`worksteal_trap`] — Table I (Theorem 1): work stealing left at the
//!   mercy of a bad initial distribution finishes in Θ(n) while `OPT = 2`.
//! * [`pairwise_trap`] — Table II (Proposition 2): a schedule where every
//!   *pair* of machines is optimally balanced, yet the global makespan is
//!   `n` against an optimum of 1.
//! * [`prop8_candidate`] — small random two-cluster instances used by the
//!   Proposition 8 / Figure 1 cycle search (the figure's exact numbers are
//!   not machine-readable in the paper; non-convergence is demonstrated by
//!   searching this family for a DLB2C limit cycle, which `lb-distsim`'s
//!   cycle detector finds reliably).

use lb_model::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Table I (Theorem 1): the work-stealing trap.
///
/// Three machines `A, B, C`, five jobs. Machine `A` runs everything in 1
/// unit; job 0 takes `n` on `B` and `C`; job 1 takes `n` on `C`.
/// The returned assignment is the paper's circled one: job 0 on `B`,
/// job 1 on `C`, jobs 2–4 on `A`.
///
/// Under work stealing, `B` and `C` immediately start their single job
/// and have nothing stealable, so the schedule finishes at time `n`
/// (the paper reports `n + 1` under its steal-accounting convention)
/// while the optimum is 2 (`A:{0,1}`, `B:{2,3}`, `C:{4}`).
pub fn worksteal_trap(n: Time) -> (Instance, Assignment) {
    assert!(n >= 2, "the trap needs n >= 2 to dominate OPT");
    #[rustfmt::skip]
    let costs = vec![
        // jobs:   0  1  2  3  4
        /* A */    1, 1, 1, 1, 1,
        /* B */    n, 1, 1, 1, 1,
        /* C */    n, n, 1, 1, 1,
    ];
    let inst = Instance::dense(3, 5, costs).expect("static dimensions");
    let asg = Assignment::from_vec(
        &inst,
        vec![
            MachineId(1),
            MachineId(2),
            MachineId(0),
            MachineId(0),
            MachineId(0),
        ],
    )
    .expect("static assignment");
    (inst, asg)
}

/// Table II (Proposition 2): the pairwise-optimal trap.
///
/// Three machines, three jobs, cyclic costs: job `j` runs in 1 on machine
/// `j`, in `n` on machine `j+1 (mod 3)`, and in `n^2` on the remaining
/// machine. The returned assignment places each job on its `n`-cost
/// machine: every *pair* of machines is then optimally balanced (verified
/// exhaustively in the tests), yet `Cmax = n` while `OPT = 1`.
pub fn pairwise_trap(n: Time) -> (Instance, Assignment) {
    assert!(n >= 2, "the trap needs n >= 2");
    let n2 = n.saturating_mul(n);
    #[rustfmt::skip]
    let costs = vec![
        // jobs:   0   1   2
        /* A */    1,  n2, n,
        /* B */    n,  1,  n2,
        /* C */    n2, n,  1,
    ];
    let inst = Instance::dense(3, 3, costs).expect("static dimensions");
    // Job j on machine j+1 (its n-cost machine).
    let asg = Assignment::from_vec(&inst, vec![MachineId(1), MachineId(2), MachineId(0)])
        .expect("static assignment");
    (inst, asg)
}

/// A small random two-cluster instance (2 + 1 machines, 5 jobs, costs in
/// `[1, 9]`) with a random initial distribution — the search family for
/// DLB2C limit cycles (Proposition 8 / Figure 1).
pub fn prop8_candidate(seed: u64) -> (Instance, Assignment) {
    let mut rng = StdRng::seed_from_u64(seed);
    let costs: Vec<(Time, Time)> = (0..5)
        .map(|_| (rng.gen_range(1..=9), rng.gen_range(1..=9)))
        .collect();
    let inst = Instance::two_cluster(2, 1, costs).expect("static dimensions");
    let asg = crate::initial::random_assignment(&inst, rng.gen());
    (inst, asg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_model::exact::{opt_makespan, ExactLimits};

    #[test]
    fn worksteal_trap_opt_is_two() {
        for n in [2, 10, 1000] {
            let (inst, asg) = worksteal_trap(n);
            asg.validate(&inst).unwrap();
            assert_eq!(opt_makespan(&inst, ExactLimits::default()).unwrap(), 2);
            // The circled distribution costs n on both B and C.
            assert_eq!(asg.load(MachineId(1)), n);
            assert_eq!(asg.load(MachineId(2)), n);
            assert_eq!(asg.load(MachineId(0)), 3);
            assert_eq!(asg.makespan(), n.max(3));
        }
    }

    #[test]
    fn pairwise_trap_opt_is_one_and_circled_is_n() {
        for n in [2, 10, 100] {
            let (inst, asg) = pairwise_trap(n);
            asg.validate(&inst).unwrap();
            assert_eq!(opt_makespan(&inst, ExactLimits::default()).unwrap(), 1);
            assert_eq!(asg.makespan(), n);
            // Each machine carries exactly one job at cost n.
            for m in inst.machines() {
                assert_eq!(asg.load(m), n);
            }
        }
    }

    #[test]
    fn pairwise_trap_is_pairwise_optimal() {
        // For every pair of machines, no redistribution of their jobs
        // lowers the pair's local makespan below n.
        let n = 10;
        let (inst, asg) = pairwise_trap(n);
        let pairs = [(0u32, 1u32), (0, 2), (1, 2)];
        for (a, b) in pairs {
            let (ma, mb) = (MachineId(a), MachineId(b));
            let jobs: Vec<JobId> = asg
                .jobs_on(ma)
                .iter()
                .chain(asg.jobs_on(mb))
                .copied()
                .collect();
            let current = asg.load(ma).max(asg.load(mb));
            let mut best = Time::MAX;
            for mask in 0..(1u32 << jobs.len()) {
                let (mut la, mut lb) = (0u64, 0u64);
                for (bit, &j) in jobs.iter().enumerate() {
                    if mask & (1 << bit) != 0 {
                        la += inst.cost(ma, j);
                    } else {
                        lb += inst.cost(mb, j);
                    }
                }
                best = best.min(la.max(lb));
            }
            assert_eq!(best, current, "pair ({a},{b}) should already be optimal");
        }
    }

    #[test]
    fn prop8_candidate_is_small_two_cluster() {
        let (inst, asg) = prop8_candidate(7);
        assert_eq!(inst.num_machines(), 3);
        assert_eq!(inst.num_jobs(), 5);
        assert!(inst.is_two_cluster());
        asg.validate(&inst).unwrap();
        // Deterministic.
        let (i2, a2) = prop8_candidate(7);
        assert_eq!(inst, i2);
        assert_eq!(asg, a2);
    }
}
