//! Heavy-tailed and bimodal job-size distributions.
//!
//! The paper's simulations draw lengths from `U[1, 1000]`, but real
//! batch workloads are famously skewed: a few elephants among many mice.
//! These generators stress the algorithms where the `max p <= OPT`
//! hypothesis of Theorems 6–7 starts to strain — the `ext_robustness`
//! and ablation experiments use them to probe that boundary.

use lb_model::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws one bounded-Pareto-ish sample in `[lo, hi]` with shape `alpha`
/// (smaller alpha = heavier tail), by inverse-transform sampling.
fn bounded_pareto(rng: &mut StdRng, lo: f64, hi: f64, alpha: f64) -> Time {
    let u: f64 = rng.gen_range(0.0..1.0);
    // Inverse CDF of the bounded Pareto distribution.
    let la = lo.powf(alpha);
    let ha = hi.powf(alpha);
    let x = (-(u * (ha - la) - ha) / (ha * la)).powf(-1.0 / alpha);
    (x.round() as u64).clamp(lo as u64, hi as u64)
}

/// Homogeneous machines, bounded-Pareto job sizes in `[lo, hi]`.
pub fn pareto_uniform_cluster(
    num_machines: usize,
    num_jobs: usize,
    lo: Time,
    hi: Time,
    alpha: f64,
    seed: u64,
) -> Instance {
    assert!(lo >= 1 && lo <= hi, "need 1 <= lo <= hi");
    assert!(alpha > 0.0, "alpha must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes = (0..num_jobs)
        .map(|_| bounded_pareto(&mut rng, lo as f64, hi as f64, alpha))
        .collect();
    Instance::uniform(num_machines, sizes).expect("valid by construction")
}

/// Two clusters with bounded-Pareto base sizes and independent per-cluster
/// speed noise: elephants and mice on a hybrid cluster.
pub fn pareto_two_cluster(
    m1: usize,
    m2: usize,
    num_jobs: usize,
    lo: Time,
    hi: Time,
    alpha: f64,
    seed: u64,
) -> Instance {
    assert!(lo >= 1 && lo <= hi, "need 1 <= lo <= hi");
    assert!(alpha > 0.0, "alpha must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let costs = (0..num_jobs)
        .map(|_| {
            let base = bounded_pareto(&mut rng, lo as f64, hi as f64, alpha);
            // Each cluster runs the job at 50%–150% of the base.
            let f1 = rng.gen_range(50..=150);
            let f2 = rng.gen_range(50..=150);
            ((base * f1 / 100).max(1), (base * f2 / 100).max(1))
        })
        .collect();
    Instance::two_cluster(m1, m2, costs).expect("valid by construction")
}

/// Bimodal sizes: `mice_fraction` (percent) of jobs are mice of size
/// `U[1, small]`, the rest are elephants of size `U[big/2, big]`.
pub fn bimodal_cluster(
    num_machines: usize,
    num_jobs: usize,
    small: Time,
    big: Time,
    mice_percent: u32,
    seed: u64,
) -> Instance {
    assert!(small >= 1 && small < big, "need 1 <= small < big");
    assert!(mice_percent <= 100);
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes = (0..num_jobs)
        .map(|_| {
            if rng.gen_range(0..100) < mice_percent {
                rng.gen_range(1..=small)
            } else {
                rng.gen_range(big / 2..=big)
            }
        })
        .collect();
    Instance::uniform(num_machines, sizes).expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_in_range_and_skewed() {
        let inst = pareto_uniform_cluster(4, 2000, 1, 1000, 1.1, 7);
        let sizes: Vec<Time> = inst.jobs().map(|j| inst.cost(MachineId(0), j)).collect();
        assert!(sizes.iter().all(|&s| (1..=1000).contains(&s)));
        // Heavy tail: the mean is far above the median.
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        let mean = sizes.iter().map(|&s| s as f64).sum::<f64>() / sizes.len() as f64;
        assert!(
            mean > 2.0 * median,
            "mean {mean} vs median {median}: not heavy-tailed"
        );
    }

    #[test]
    fn pareto_two_cluster_shape() {
        let inst = pareto_two_cluster(4, 2, 100, 1, 1000, 1.5, 9);
        assert!(inst.is_two_cluster());
        assert_eq!(inst.num_machines(), 6);
        for j in inst.jobs() {
            assert!(inst.cost(MachineId(0), j) >= 1);
            assert!(inst.cost(MachineId(5), j) >= 1);
        }
    }

    #[test]
    fn bimodal_has_two_modes() {
        let inst = bimodal_cluster(2, 1000, 10, 1000, 80, 3);
        let mut mice = 0;
        let mut elephants = 0;
        for j in inst.jobs() {
            let c = inst.cost(MachineId(0), j);
            if c <= 10 {
                mice += 1;
            } else {
                assert!(c >= 500);
                elephants += 1;
            }
        }
        // Roughly 80/20.
        assert!(mice > 700 && mice < 900, "mice = {mice}");
        assert!(elephants > 100, "elephants = {elephants}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            pareto_uniform_cluster(3, 50, 1, 100, 2.0, 5),
            pareto_uniform_cluster(3, 50, 1, 100, 2.0, 5)
        );
        assert_eq!(
            bimodal_cluster(3, 50, 5, 500, 50, 5),
            bimodal_cluster(3, 50, 5, 500, 50, 5)
        );
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let _ = pareto_uniform_cluster(2, 10, 1, 100, 0.0, 1);
    }
}
