//! Multi-cluster workloads (the Section VIII extension setting).
//!
//! `c` clusters of identical machines with per-cluster job costs — think
//! CPU + GPU + FPGA tiers. Each job draws one cost per cluster.

use lb_model::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Independent per-cluster costs `U[lo, hi]` for `sizes.len()` clusters
/// of `sizes[c]` machines each.
pub fn independent(sizes: &[usize], num_jobs: usize, lo: Time, hi: Time, seed: u64) -> Instance {
    assert!(lo <= hi, "lo must be <= hi");
    let c = sizes.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let job_costs: Vec<Vec<Time>> = (0..num_jobs)
        .map(|_| (0..c).map(|_| rng.gen_range(lo..=hi)).collect())
        .collect();
    Instance::multi_cluster(sizes, job_costs).expect("valid by construction")
}

/// Affine clusters: each job is fast (`U[lo, hi]`) on one uniformly
/// chosen home cluster and `penalty`x slower elsewhere — maximal
/// cross-tier contrast.
pub fn affine(
    sizes: &[usize],
    num_jobs: usize,
    lo: Time,
    hi: Time,
    penalty: u64,
    seed: u64,
) -> Instance {
    assert!(lo <= hi, "lo must be <= hi");
    assert!(penalty >= 1, "penalty must be >= 1");
    let c = sizes.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let job_costs: Vec<Vec<Time>> = (0..num_jobs)
        .map(|_| {
            let home = rng.gen_range(0..c);
            let base = rng.gen_range(lo..=hi);
            (0..c)
                .map(|ci| {
                    if ci == home {
                        base
                    } else {
                        base.saturating_mul(penalty)
                    }
                })
                .collect()
        })
        .collect();
    Instance::multi_cluster(sizes, job_costs).expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_shape() {
        let inst = independent(&[4, 2, 2], 40, 1, 100, 3);
        assert_eq!(inst.num_machines(), 8);
        assert_eq!(inst.num_clusters(), 3);
        for j in inst.jobs() {
            for m in inst.machines() {
                assert!((1..=100).contains(&inst.cost(m, j)));
            }
        }
        assert_eq!(inst, independent(&[4, 2, 2], 40, 1, 100, 3));
    }

    #[test]
    fn affine_penalizes_away_clusters() {
        let inst = affine(&[1, 1, 1], 60, 10, 100, 10, 5);
        for j in inst.jobs() {
            let mut costs: Vec<Time> = inst.machines().map(|m| inst.cost(m, j)).collect();
            costs.sort_unstable();
            // Exactly one home cost; the others are 10x it.
            assert_eq!(costs[1], costs[0] * 10);
            assert_eq!(costs[2], costs[0] * 10);
        }
    }

    #[test]
    #[should_panic(expected = "penalty")]
    fn affine_rejects_zero_penalty() {
        let _ = affine(&[1, 1], 2, 1, 5, 0, 0);
    }
}
