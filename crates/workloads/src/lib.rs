//! Workload and instance generators for the load-balancing experiments.
//!
//! Four families:
//!
//! * [`uniform`] — homogeneous-cluster workloads with job lengths drawn
//!   uniformly (the paper draws from `[1, 1000]`).
//! * [`two_cluster`] — Section VI workloads: two clusters of identical
//!   machines with per-cluster job costs, in several correlation regimes.
//! * [`typed`] — Section V workloads: jobs grouped into `k` types with a
//!   per-type processing-time vector.
//! * [`adversarial`] — the paper's hand-built counterexamples (Table I,
//!   Table II) and a searcher for DLB2C non-convergence instances
//!   (Proposition 8 / Figure 1).
//!
//! Plus [`initial`] — initial job distributions (random, skewed) for the
//! decentralized algorithms, which assume jobs start *somewhere*.
//!
//! All generators are deterministic given their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod heavy_tail;
pub mod initial;
pub mod multi_cluster;
pub mod scenario;
pub mod two_cluster;
pub mod typed;
pub mod uniform;

pub use initial::{random_assignment, skewed_assignment};
