//! Section VI workloads: two clusters of identical machines.
//!
//! Each job `j` has a pair `(p1[j], p2[j])`: its processing time on any
//! machine of cluster 1 / cluster 2. The regimes below model different
//! relationships between the two clusters (think CPU vs GPU):
//!
//! * [`independent`] — `p1` and `p2` drawn independently; a job can be
//!   arbitrarily better on either side (the paper's simulation setup:
//!   "the time to execute a job on each cluster is a probability
//!   distribution", lengths `U[1, 1000]`).
//! * [`correlated`] — a shared base length plus independent noise; mild
//!   heterogeneity.
//! * [`inverted`] — anti-correlated: jobs fast on cluster 1 are slow on
//!   cluster 2 and vice versa; maximal affinity contrast.
//! * [`related_factor`] — cluster 2 is a uniformly faster copy of cluster
//!   1 (the "GPU is k× faster" folk model the paper argues against).

use lb_model::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Independent per-cluster costs `U[lo, hi]` (the paper's regime).
pub fn independent(
    m1: usize,
    m2: usize,
    num_jobs: usize,
    lo: Time,
    hi: Time,
    seed: u64,
) -> Instance {
    assert!(lo <= hi, "lo must be <= hi");
    let mut rng = StdRng::seed_from_u64(seed);
    let costs = (0..num_jobs)
        .map(|_| (rng.gen_range(lo..=hi), rng.gen_range(lo..=hi)))
        .collect();
    Instance::two_cluster(m1, m2, costs).expect("valid by construction")
}

/// The paper's standard two-cluster workload: independent `U[1, 1000]`.
pub fn paper_two_cluster(m1: usize, m2: usize, num_jobs: usize, seed: u64) -> Instance {
    independent(m1, m2, num_jobs, 1, 1000, seed)
}

/// Shared base length `U[lo, hi]` plus ±`noise`% independent per-cluster
/// perturbation.
pub fn correlated(
    m1: usize,
    m2: usize,
    num_jobs: usize,
    lo: Time,
    hi: Time,
    noise_percent: u32,
    seed: u64,
) -> Instance {
    assert!(lo <= hi, "lo must be <= hi");
    let mut rng = StdRng::seed_from_u64(seed);
    let perturb = |base: Time, rng: &mut StdRng| -> Time {
        let span = base.saturating_mul(u64::from(noise_percent)) / 100;
        let delta = rng.gen_range(0..=2 * span);
        (base + delta).saturating_sub(span).max(1)
    };
    let costs = (0..num_jobs)
        .map(|_| {
            let base = rng.gen_range(lo..=hi);
            (perturb(base, &mut rng), perturb(base, &mut rng))
        })
        .collect();
    Instance::two_cluster(m1, m2, costs).expect("valid by construction")
}

/// Anti-correlated costs: `p2 = lo + hi - p1`, so a job fast on one
/// cluster is slow on the other.
pub fn inverted(m1: usize, m2: usize, num_jobs: usize, lo: Time, hi: Time, seed: u64) -> Instance {
    assert!(lo <= hi, "lo must be <= hi");
    let mut rng = StdRng::seed_from_u64(seed);
    let costs = (0..num_jobs)
        .map(|_| {
            let p1 = rng.gen_range(lo..=hi);
            (p1, lo + hi - p1)
        })
        .collect();
    Instance::two_cluster(m1, m2, costs).expect("valid by construction")
}

/// Cluster 2 runs every job `factor`× faster (integer division, min 1).
pub fn related_factor(
    m1: usize,
    m2: usize,
    num_jobs: usize,
    lo: Time,
    hi: Time,
    factor: u64,
    seed: u64,
) -> Instance {
    assert!(lo <= hi, "lo must be <= hi");
    assert!(factor >= 1, "factor must be >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let costs = (0..num_jobs)
        .map(|_| {
            let p1 = rng.gen_range(lo..=hi);
            (p1, (p1 / factor).max(1))
        })
        .collect();
    Instance::two_cluster(m1, m2, costs).expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_shape_and_determinism() {
        let a = paper_two_cluster(64, 32, 768, 9);
        let b = paper_two_cluster(64, 32, 768, 9);
        assert_eq!(a, b);
        assert_eq!(a.num_machines(), 96);
        assert_eq!(a.num_jobs(), 768);
        assert!(a.is_two_cluster());
        assert_eq!(a.machines_in(ClusterId::ONE).len(), 64);
        assert_eq!(a.machines_in(ClusterId::TWO).len(), 32);
        for j in a.jobs() {
            let p1 = a.cost(MachineId(0), j);
            let p2 = a.cost(MachineId(64), j);
            assert!((1..=1000).contains(&p1));
            assert!((1..=1000).contains(&p2));
        }
    }

    #[test]
    fn inverted_is_anticorrelated() {
        let inst = inverted(1, 1, 50, 1, 1000, 3);
        for j in inst.jobs() {
            let p1 = inst.cost(MachineId(0), j);
            let p2 = inst.cost(MachineId(1), j);
            assert_eq!(p1 + p2, 1001);
        }
    }

    #[test]
    fn correlated_stays_near_base() {
        let inst = correlated(1, 1, 100, 100, 1000, 10, 5);
        for j in inst.jobs() {
            let p1 = inst.cost(MachineId(0), j) as f64;
            let p2 = inst.cost(MachineId(1), j) as f64;
            // Both within ±10% of a shared base -> ratio within ~[0.81, 1.23].
            let ratio = p1 / p2;
            assert!(ratio > 0.8 && ratio < 1.25, "ratio {ratio}");
        }
    }

    #[test]
    fn related_factor_divides() {
        let inst = related_factor(2, 2, 40, 10, 1000, 4, 6);
        for j in inst.jobs() {
            let p1 = inst.cost(MachineId(0), j);
            let p2 = inst.cost(MachineId(2), j);
            assert_eq!(p2, (p1 / 4).max(1));
        }
    }

    #[test]
    fn correlated_never_zero() {
        let inst = correlated(1, 1, 200, 1, 3, 100, 8);
        for j in inst.jobs() {
            assert!(inst.cost(MachineId(0), j) >= 1);
            assert!(inst.cost(MachineId(1), j) >= 1);
        }
    }
}
