//! Property tests of the workload generators.

use lb_model::prelude::*;
use lb_workloads::adversarial::{pairwise_trap, worksteal_trap};
use lb_workloads::heavy_tail::{bimodal_cluster, pareto_uniform_cluster};
use lb_workloads::initial::{random_assignment, skewed_assignment};
use lb_workloads::scenario::Scenario;
use lb_workloads::two_cluster::{correlated, independent, inverted};
use lb_workloads::typed::typed_uniform;
use lb_workloads::uniform::uniform_instance;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generator produces costs in its declared range and is
    /// deterministic per seed.
    #[test]
    fn generators_in_range(
        m in 1usize..=6,
        n in 0usize..=40,
        lo in 1u64..=10,
        span in 0u64..=100,
        seed in 0u64..500,
    ) {
        let hi = lo + span;
        let inst = uniform_instance(m, n, lo, hi, seed);
        for mm in inst.machines() {
            for j in inst.jobs() {
                prop_assert!((lo..=hi).contains(&inst.cost(mm, j)));
            }
        }
        prop_assert_eq!(inst, uniform_instance(m, n, lo, hi, seed));
    }

    /// Two-cluster regimes keep cluster-uniform costs in range.
    #[test]
    fn two_cluster_regimes_sound(
        m1 in 1usize..=4,
        m2 in 1usize..=4,
        n in 1usize..=30,
        seed in 0u64..200,
        regime in 0usize..3,
    ) {
        let inst = match regime {
            0 => independent(m1, m2, n, 1, 100, seed),
            1 => correlated(m1, m2, n, 1, 100, 20, seed),
            _ => inverted(m1, m2, n, 1, 100, seed),
        };
        prop_assert!(inst.is_two_cluster());
        prop_assert_eq!(inst.num_machines(), m1 + m2);
        // Cluster-uniformity: all machines of a cluster agree.
        for j in inst.jobs() {
            let c1 = inst.cost(inst.machines_in(ClusterId::ONE)[0], j);
            for &mm in inst.machines_in(ClusterId::ONE) {
                prop_assert_eq!(inst.cost(mm, j), c1);
            }
            prop_assert!(c1 >= 1);
        }
    }

    /// Typed generators: declared type count respected, same-type jobs
    /// identical everywhere.
    #[test]
    fn typed_generator_sound(
        m in 2usize..=5,
        n in 1usize..=30,
        k in 1usize..=4,
        seed in 0u64..200,
    ) {
        let inst = typed_uniform(m, n, k, 1, 50, seed);
        prop_assert_eq!(inst.num_job_types(), Some(k));
        for a in inst.jobs() {
            for b in inst.jobs() {
                if inst.job_type(a) == inst.job_type(b) {
                    for mm in inst.machines() {
                        prop_assert_eq!(inst.cost(mm, a), inst.cost(mm, b));
                    }
                }
            }
        }
    }

    /// Heavy-tail generators stay in range with positive costs.
    #[test]
    fn heavy_tail_sound(m in 1usize..=4, n in 1usize..=60, seed in 0u64..100) {
        let pareto = pareto_uniform_cluster(m, n, 1, 500, 1.2, seed);
        let bimodal = bimodal_cluster(m, n, 10, 400, 70, seed);
        for j in pareto.jobs() {
            prop_assert!((1..=500).contains(&pareto.cost(MachineId(0), j)));
        }
        for j in bimodal.jobs() {
            let c = bimodal.cost(MachineId(0), j);
            prop_assert!((1..=400).contains(&c));
        }
    }

    /// Initial distributions are valid assignments of every job.
    #[test]
    fn initial_distributions_valid(
        m in 2usize..=6,
        n in 0usize..=50,
        seed in 0u64..200,
        fraction in 1u32..=100,
    ) {
        let inst = uniform_instance(m, n, 1, 9, seed);
        let r = random_assignment(&inst, seed);
        prop_assert!(r.validate(&inst).is_ok());
        let s = skewed_assignment(&inst, f64::from(fraction) / 100.0, seed);
        prop_assert!(s.validate(&inst).is_ok());
    }

    /// The adversarial constructions keep their defining properties for
    /// every n.
    #[test]
    fn adversarial_invariants(n in 2u64..10_000) {
        let (wt_inst, wt_asg) = worksteal_trap(n);
        prop_assert_eq!(wt_asg.load(MachineId(1)), n);
        prop_assert_eq!(wt_asg.load(MachineId(2)), n);
        prop_assert_eq!(wt_asg.load(MachineId(0)), 3);
        let (pt_inst, pt_asg) = pairwise_trap(n);
        for mm in pt_inst.machines() {
            prop_assert_eq!(pt_asg.load(mm), n);
        }
        let _ = wt_inst;
    }

    /// Scenario JSON round-trips and rebuilds the identical instance.
    #[test]
    fn scenario_roundtrip(m in 1usize..=4, n in 1usize..=20, seed in 0u64..100) {
        let s = Scenario::Uniform { machines: m, jobs: n, lo: 1, hi: 9 };
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(s.build(seed), back.build(seed));
    }
}
