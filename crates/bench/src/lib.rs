//! Shared plumbing for the experiment binaries.
//!
//! Every table/figure of the paper has a binary under `src/bin/` that
//! prints human-readable rows *and* writes a CSV (plus a JSON sidecar with
//! the parameters) under `results/`, so EXPERIMENTS.md numbers can be
//! regenerated and diffed. Result emission itself lives in
//! [`lb_stats::runner::SimRunner`] — shared with the `decent-lb simulate`
//! subcommand — and is re-exported here; this module keeps only the bits
//! specific to standalone binaries: a minimal flag parser and results-path
//! helpers for the smoke tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lb_stats::runner::{row, SimRunner};
use std::path::{Path, PathBuf};

/// Where experiment outputs land (created on demand): `LB_RESULTS_DIR`
/// or `results/`, same resolution as [`SimRunner::new`].
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("LB_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Minimal flag reader: `flag("--full")` / `value("--panel")`.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn parse() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// True if the flag is present.
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }

    /// The value following `name`, if any.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.raw.get(i + 1))
            .map(|s| s.as_str())
    }
}

/// Asserts a results path exists (used by integration smoke tests).
pub fn results_file_exists(name: &str) -> bool {
    Path::new(&results_dir()).join(name).exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_flag_and_value() {
        let args = Args {
            raw: vec!["--full".into(), "--panel".into(), "a".into()],
        };
        assert!(args.flag("--full"));
        assert!(!args.flag("--quick"));
        assert_eq!(args.value("--panel"), Some("a"));
        assert_eq!(args.value("--missing"), None);
        assert_eq!(args.value("a"), None);
    }

    #[test]
    fn results_dir_respects_env() {
        // Can't mutate env safely in parallel tests; just verify the
        // default path shape.
        let d = results_dir();
        assert!(d.ends_with("results") || d.is_dir());
    }

    #[test]
    fn runner_matches_results_dir_resolution() {
        // SimRunner::new and results_dir must resolve to the same place.
        let runner = SimRunner::new("resolution_check");
        assert_eq!(runner.dir(), results_dir().as_path());
    }
}
