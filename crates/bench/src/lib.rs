//! Shared plumbing for the experiment binaries.
//!
//! Every table/figure of the paper has a binary under `src/bin/` that
//! prints human-readable rows *and* writes a CSV (plus a JSON sidecar with
//! the parameters) under `results/`, so EXPERIMENTS.md numbers can be
//! regenerated and diffed. This module holds the tiny bits they share:
//! output-directory handling, a minimal flag parser, and experiment
//! banners.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lb_stats::csv::{CsvCell, CsvWriter};
use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};

/// Where experiment outputs land (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("LB_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Opens `results/<name>.csv` with the given header.
pub fn csv_out(name: &str, header: &[&str]) -> CsvWriter<BufWriter<File>> {
    let path = results_dir().join(format!("{name}.csv"));
    let file = File::create(&path).unwrap_or_else(|e| panic!("create {path:?}: {e}"));
    CsvWriter::new(BufWriter::new(file), header).expect("write CSV header")
}

/// Writes a JSON parameter sidecar next to the CSV.
pub fn json_sidecar<T: serde::Serialize>(name: &str, params: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let file = File::create(&path).unwrap_or_else(|e| panic!("create {path:?}: {e}"));
    serde_json::to_writer_pretty(BufWriter::new(file), params).expect("serialize parameters");
}

/// Prints the experiment banner.
pub fn banner(id: &str, what: &str) {
    println!("==========================================================");
    println!("{id}: {what}");
    println!("==========================================================");
}

/// Minimal flag reader: `flag("--full")` / `value("--panel")`.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn parse() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// True if the flag is present.
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }

    /// The value following `name`, if any.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.raw.get(i + 1))
            .map(|s| s.as_str())
    }
}

/// Convenience: one CSV row from mixed cells.
pub fn row(w: &mut CsvWriter<BufWriter<File>>, cells: Vec<CsvCell>) {
    w.row(&cells).expect("write CSV row");
}

/// Asserts a results path exists (used by integration smoke tests).
pub fn results_file_exists(name: &str) -> bool {
    Path::new(&results_dir()).join(name).exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_flag_and_value() {
        let args = Args {
            raw: vec!["--full".into(), "--panel".into(), "a".into()],
        };
        assert!(args.flag("--full"));
        assert!(!args.flag("--quick"));
        assert_eq!(args.value("--panel"), Some("a"));
        assert_eq!(args.value("--missing"), None);
        assert_eq!(args.value("a"), None);
    }

    #[test]
    fn results_dir_respects_env() {
        // Can't mutate env safely in parallel tests; just verify the
        // default path shape.
        let d = results_dir();
        assert!(d.ends_with("results") || d.is_dir());
    }
}
