//! Experiment F5 — paper Figure 5.
//!
//! Number of pairwise exchanges per machine needed to first reach a
//! makespan under `1.5 × CLB2C` (the centralized 2-approximation's value,
//! "1.5cent"). The paper runs two clusters of 64+32 and 512+256 machines
//! and one homogeneous cluster of 96, with 768 jobs `U[1, 1000]` (scaled
//! 8x for the large configuration), and reports that ~90% of machines
//! reach the threshold within ~5 exchanges per machine.
//!
//! Per machine we count the effective exchanges the machine itself
//! participated in before its load first fell under the threshold; the
//! CSV also reports the run-level count (total effective exchanges / |M|
//! until the *global* makespan passed the threshold).
//!
//! `--start skewed` crams the initial distribution onto 5% of the
//! machines (instead of the paper's uniform random start), which makes the
//! first-passage counts visibly larger — useful to see the CDF's shape
//! away from the near-trivial random-start regime.
//!
//! All `config x replication` cells run through the shared campaign
//! engine (`--threads N`, 0 = all cores); output order is fixed by the
//! grid, so results are identical for any thread count.
//!
//! Run: `cargo run --release -p lb-bench --bin fig5_exchanges \
//!       [--reps N] [--quick] [--start random|skewed] [--threads N]`

use lb_bench::{row, Args, SimRunner};
use lb_core::{clb2c, Dlb2cBalance};
use lb_distsim::{GossipConfig, GossipRun};
use lb_model::prelude::*;
use lb_stats::csv::CsvCell;
use lb_stats::{run_campaign, CampaignSpec, Ecdf};
use lb_workloads::initial::{random_assignment, skewed_assignment};
use lb_workloads::two_cluster::paper_two_cluster;
use lb_workloads::uniform::uniform_instance;

fn homogeneous_as_two_cluster(m1: usize, m2: usize, jobs: usize, seed: u64) -> Instance {
    let base = uniform_instance(m1 + m2, jobs, 1, 1000, seed);
    let costs: Vec<(Time, Time)> = base
        .jobs()
        .map(|j| {
            let c = base.cost(MachineId(0), j);
            (c, c)
        })
        .collect();
    Instance::two_cluster(m1, m2, costs).expect("valid by construction")
}

struct Config {
    name: &'static str,
    m1: usize,
    m2: usize,
    jobs: usize,
    homogeneous: bool,
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("--quick");
    let skewed = args.value("--start") == Some("skewed");
    let reps: u64 = args
        .value("--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 3 } else { 10 });
    let threads: usize = args
        .value("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let runner = SimRunner::new("fig5_exchanges");
    runner.banner("F5", "Figure 5: exchanges per machine to reach 1.5 x CLB2C");
    runner.sidecar(&serde_json::json!({
        "reps": reps,
        "quick": quick,
        "start": if skewed { "skewed" } else { "random" },
    }));
    let mut csv = runner.csv(&["config", "replication", "machine", "exchanges_to_threshold"]);
    let mut run_csv = runner.csv_named(
        "fig5_exchanges_runlevel",
        &["config", "replication", "global_exchanges_per_machine"],
    );

    let mut configs = vec![
        Config {
            name: "two-clusters-64+32",
            m1: 64,
            m2: 32,
            jobs: 768,
            homogeneous: false,
        },
        Config {
            name: "homogeneous-96",
            m1: 64,
            m2: 32,
            jobs: 768,
            homogeneous: true,
        },
    ];
    if !quick {
        configs.push(Config {
            name: "two-clusters-512+256",
            m1: 512,
            m2: 256,
            jobs: 6144,
            homogeneous: false,
        });
    }

    // Each replication gets its own threshold: 1.5 x CLB2C on its
    // instance. All cells fan out through one campaign.
    let spec = CampaignSpec {
        base_seed: 2_000,
        replications: reps,
        threads,
        progress_every: 0,
    };
    let campaign = run_campaign(&spec, &configs, |c, cell| -> GossipRun {
        let r = cell.replication;
        let m = c.m1 + c.m2;
        let inst = if c.homogeneous {
            homogeneous_as_two_cluster(c.m1, c.m2, c.jobs, 33 + r)
        } else {
            paper_two_cluster(c.m1, c.m2, c.jobs, 33 + r)
        };
        let cent = clb2c(&inst).expect("two-cluster instance").makespan();
        let mut asg = if skewed {
            skewed_assignment(&inst, 0.05, 900 + r)
        } else {
            random_assignment(&inst, 900 + r)
        };
        let cfg = GossipConfig {
            max_rounds: 80 * m as u64,
            seed: 2_000 + r,
            threshold: cent + cent / 2,
            ..GossipConfig::default()
        };
        lb_distsim::run_gossip(&inst, &mut asg, &Dlb2cBalance, &cfg)
    })
    .expect("campaign pool");

    for (ci, c) in configs.iter().enumerate() {
        let m = c.m1 + c.m2;
        let runs = campaign.point_results(ci);

        let mut samples: Vec<f64> = Vec::new();
        for (r, run) in runs.iter().enumerate() {
            for (mi, hit) in run.machine_threshold_hits.iter().enumerate() {
                if let Some(x) = hit {
                    samples.push(*x as f64);
                    row(
                        &mut csv,
                        vec![
                            c.name.into(),
                            CsvCell::Uint(r as u64),
                            CsvCell::Uint(mi as u64),
                            CsvCell::Uint(*x),
                        ],
                    );
                }
            }
            if let Some(g) = run.global_threshold_hit {
                row(
                    &mut run_csv,
                    vec![
                        c.name.into(),
                        CsvCell::Uint(r as u64),
                        CsvCell::Float(g as f64 / m as f64),
                    ],
                );
            }
        }
        let ecdf = Ecdf::new(samples);
        let total_machines = reps as usize * m;
        println!(
            "\n{}: {} machines sampled over {reps} runs ({}% reached the threshold)",
            c.name,
            ecdf.len(),
            100 * ecdf.len() / total_machines.max(1)
        );
        for k in [0.0, 1.0, 2.0, 3.0, 5.0, 10.0] {
            println!("  P[exchanges <= {k:>4}] = {:.3}", ecdf.eval(k));
        }
        println!(
            "  p90 = {:?} exchanges per machine (paper: ~5 for most cases)",
            ecdf.quantile(0.9)
        );
        // Run-level view (the meaningful one under a skewed start, where
        // most machines begin empty and trivially below the threshold):
        // total effective exchanges per machine until the *global*
        // makespan first dropped under 1.5 x cent.
        let global: Vec<f64> = runs
            .iter()
            .filter_map(|run| run.global_threshold_hit.map(|g| g as f64 / m as f64))
            .collect();
        if let Some(s) = lb_stats::Summary::of(&global) {
            println!(
                "  global makespan under threshold after {:.2} exchanges/machine (median)",
                s.median
            );
        }
    }
    println!(
        "\n{} cells in {:.2}s ({:.1} reps/s, threads={})",
        campaign.cells(),
        campaign.wall_secs,
        campaign.reps_per_sec(),
        campaign.threads
    );
    println!(
        "\nshape check: ~90% of machines under the threshold within a handful of \
         exchanges; the larger configuration needs fewer (paper Fig. 5)."
    );
}
