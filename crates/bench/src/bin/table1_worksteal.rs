//! Experiment T1 — paper Table I / Theorem 1.
//!
//! Work stealing on unrelated machines can be unboundedly worse than the
//! optimum: on the trap instance the first steal cannot happen before the
//! long jobs finish, so the schedule completes in Θ(n) while `OPT = 2`.
//!
//! Regenerates the table for growing `n`, reporting the simulated
//! work-stealing makespan, the exact optimum, and the ratio (which the
//! theorem says diverges).
//!
//! Run: `cargo run --release -p lb-bench --bin table1_worksteal`

use lb_bench::{row, SimRunner};
use lb_distsim::simulate_work_stealing;
use lb_model::exact::{opt_makespan, ExactLimits};
use lb_stats::csv::CsvCell;
use lb_workloads::adversarial::worksteal_trap;

fn main() {
    let runner = SimRunner::new("table1_worksteal");
    runner.banner(
        "T1",
        "Table I / Theorem 1: work stealing is unbounded on unrelated machines",
    );
    runner.sidecar(&serde_json::json!({"ns": [10, 100, 1000, 10000, 100000]}));
    let mut csv = runner.csv(&["n", "worksteal_cmax", "opt", "ratio", "steals"]);

    println!(
        "{:>8} {:>16} {:>6} {:>10} {:>7}",
        "n", "worksteal Cmax", "OPT", "ratio", "steals"
    );
    for n in [10u64, 100, 1000, 10_000, 100_000] {
        let (inst, initial) = worksteal_trap(n);
        let ws = simulate_work_stealing(&inst, &initial, 1);
        let opt = opt_makespan(&inst, ExactLimits::default()).expect("5-job instance");
        let ratio = ws.makespan as f64 / opt as f64;
        println!(
            "{n:>8} {:>16} {opt:>6} {ratio:>10.1} {:>7}",
            ws.makespan, ws.steals
        );
        row(
            &mut csv,
            vec![
                CsvCell::Uint(n),
                CsvCell::Uint(ws.makespan),
                CsvCell::Uint(opt),
                CsvCell::Float(ratio),
                CsvCell::Uint(ws.steals),
            ],
        );
        assert_eq!(opt, 2, "the trap's optimum is 2 by construction");
        assert!(
            ws.makespan >= n,
            "the trap must delay completion to at least n"
        );
    }
    println!("\nshape check: ratio grows linearly in n (paper: unbounded). OK.");
}
