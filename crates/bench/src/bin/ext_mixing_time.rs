//! Extension E2 — mixing time of the one-cluster chain.
//!
//! Model-side companion to Figure 5: starting from the *worst* sink
//! state, how many random pairwise exchanges does the chain need to get
//! within total-variation `eps` of stationarity? Normalized per machine,
//! the answer is "a handful" — matching the simulation's observation that
//! machines reach the 1.5x threshold within a few exchanges each.
//!
//! Run: `cargo run --release -p lb-bench --bin ext_mixing_time`

use lb_bench::{row, SimRunner};
use lb_markov::mixing::{mixing_time, tv_trajectory, worst_state};
use lb_markov::spectral::{relaxation_time, second_eigenvalue};
use lb_markov::{ChainParams, LoadChain};
use lb_stats::csv::CsvCell;
use lb_stats::plot::sparkline;

fn main() {
    let runner = SimRunner::new("ext_mixing_time");
    runner.banner(
        "E2",
        "mixing time of the one-cluster chain (model-side Figure 5)",
    );
    runner.sidecar(&serde_json::json!({"eps": [0.25, 0.05], "configs": "m in 3..=6"}));
    let mut csv = runner.csv(&[
        "m",
        "p_max",
        "states",
        "tmix_025",
        "tmix_005",
        "tmix_025_per_machine",
        "lambda2",
        "t_relax",
    ]);

    println!(
        "{:>3} {:>6} {:>8} {:>10} {:>10} {:>12} {:>9} {:>8}",
        "m", "p_max", "states", "tmix(.25)", "tmix(.05)", "tmix(.25)/m", "lambda2", "t_rel"
    );
    for (m, p_max) in [(3usize, 4u64), (4, 4), (5, 4), (6, 4), (4, 2), (4, 8)] {
        let chain = LoadChain::build(ChainParams::paper_total(m, p_max));
        let pi = chain.stationary(1e-12, 5_000_000).expect("converged");
        let start = worst_state(&chain);
        let t25 = mixing_time(&chain, &start, &pi, 0.25, 100_000).expect("mixes");
        let t05 = mixing_time(&chain, &start, &pi, 0.05, 100_000).expect("mixes");
        let l2 = second_eigenvalue(&chain, &pi, 1e-10, 200_000).unwrap_or(f64::NAN);
        let t_rel = relaxation_time(l2);
        println!(
            "{m:>3} {p_max:>6} {:>8} {t25:>10} {t05:>10} {:>12.2} {l2:>9.4} {t_rel:>8.1}",
            chain.num_states(),
            t25 as f64 / m as f64
        );
        row(
            &mut csv,
            vec![
                CsvCell::Uint(m as u64),
                CsvCell::Uint(p_max),
                CsvCell::Uint(chain.num_states() as u64),
                CsvCell::Uint(t25 as u64),
                CsvCell::Uint(t05 as u64),
                CsvCell::Float(t25 as f64 / m as f64),
                CsvCell::Float(l2),
                CsvCell::Float(t_rel),
            ],
        );
        if m == 5 {
            let traj = tv_trajectory(&chain, &start, &pi, 60).expect("in component");
            println!("      TV decay (m=5): {}", sparkline(&traj));
        }
    }
    println!(
        "\nreading: t_mix(0.25) stays at a small multiple of the machine count — \
         per machine, a handful of exchanges suffices to forget even the worst \
         starting state, which is exactly Figure 5's empirical finding. The \
         spectral column makes it sharp: lambda2 = (m-2)/(m-1) independent of \
         p_max (the classic random-pair-averaging gap), so the relaxation time \
         is m-1 exchanges — O(1) per machine."
    );
}
