//! Ablation A4 — network usage of DLB2C and the move-frugal variant.
//!
//! The paper's conclusion flags that the model "ignores the amount of
//! tasks exchanged; minimizing the number of tasks exchanged (or network
//! usage) would certainly be of interest". This ablation measures job
//! migrations on the 64+32 workload for plain DLB2C vs the
//! [`lb_core::MoveFrugal`] wrapper (commit only strictly
//! improving exchanges), at equal round budgets.
//!
//! Run: `cargo run --release -p lb-bench --bin ablation_migration`

use lb_bench::{row, SimRunner};
use lb_core::{clb2c, Dlb2cBalance, MoveFrugal};
use lb_distsim::{run_gossip, GossipConfig};
use lb_stats::csv::CsvCell;
use lb_stats::Summary;
use lb_workloads::initial::random_assignment;
use lb_workloads::two_cluster::paper_two_cluster;
use rayon::prelude::*;

fn main() {
    let runner = SimRunner::new("ablation_migration");
    runner.banner("A4", "job migrations: plain DLB2C vs move-frugal DLB2C");
    let reps = 20u64;
    runner.sidecar(&serde_json::json!({"reps": reps, "rounds": 20000}));
    let mut csv = runner.csv(&[
        "variant",
        "replication",
        "migrations",
        "final_cmax_over_cent",
    ]);

    let results: Vec<(u64, f64, u64, f64)> = (0..reps)
        .into_par_iter()
        .map(|r| {
            let inst = paper_two_cluster(64, 32, 768, 600 + r);
            let cent = clb2c(&inst).expect("two-cluster").makespan() as f64;
            let cfg = GossipConfig {
                max_rounds: 20_000,
                seed: 42 + r,
                ..GossipConfig::default()
            };
            let mut plain = random_assignment(&inst, 800 + r);
            let rp = run_gossip(&inst, &mut plain, &Dlb2cBalance, &cfg);
            let mut frugal = random_assignment(&inst, 800 + r);
            let rf = run_gossip(&inst, &mut frugal, &MoveFrugal(Dlb2cBalance), &cfg);
            (
                rp.jobs_migrated,
                rp.final_makespan as f64 / cent,
                rf.jobs_migrated,
                rf.final_makespan as f64 / cent,
            )
        })
        .collect();

    for (r, &(pm, pf, fm, ff)) in results.iter().enumerate() {
        row(
            &mut csv,
            vec![
                "plain".into(),
                CsvCell::Uint(r as u64),
                CsvCell::Uint(pm),
                CsvCell::Float(pf),
            ],
        );
        row(
            &mut csv,
            vec![
                "frugal".into(),
                CsvCell::Uint(r as u64),
                CsvCell::Uint(fm),
                CsvCell::Float(ff),
            ],
        );
    }
    let plain_m =
        Summary::of(&results.iter().map(|&(m, ..)| m as f64).collect::<Vec<_>>()).unwrap();
    let frugal_m = Summary::of(
        &results
            .iter()
            .map(|&(_, _, m, _)| m as f64)
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let plain_q = Summary::of(&results.iter().map(|&(_, q, ..)| q).collect::<Vec<_>>()).unwrap();
    let frugal_q = Summary::of(&results.iter().map(|&(.., q)| q).collect::<Vec<_>>()).unwrap();
    println!(
        "{:>8} {:>18} {:>18}",
        "variant", "migrations (med)", "final/cent (med)"
    );
    println!(
        "{:>8} {:>18.0} {:>18.4}",
        "plain", plain_m.median, plain_q.median
    );
    println!(
        "{:>8} {:>18.0} {:>18.4}",
        "frugal", frugal_m.median, frugal_q.median
    );
    println!(
        "\nreading: committing only strictly improving exchanges cuts migrations by \
         ~{:.0}% (median quality ratio frugal/plain = {:.3}). Frugal dynamics are \
         monotone, so the final state is also the best state — plain DLB2C's final \
         snapshot sits somewhere in its oscillation band (Figure 4), which is why \
         frugal can even end up *better* at the same budget.",
        100.0 * (1.0 - frugal_m.median / plain_m.median),
        frugal_q.median / plain_q.median
    );
}
