//! Extension E5 — more than two clusters (the paper's stated future
//! work, Section VIII).
//!
//! A three-tier system (e.g. CPU + GPU + FPGA): 32 + 16 + 8 machines,
//! 448 jobs, two cost regimes (independent and affine-with-penalty).
//! Compares the decentralized multi-cluster balancer (DLBMC: intra-
//! cluster equalization + pair-local CLB2C across clusters) against the
//! centralized sufferage reference, plain ECT, and the lower bound.
//!
//! No approximation guarantee is claimed for c > 2 (Proposition 2 rules
//! out generic pairwise bounds); the question is empirical: does the
//! DLB2C recipe keep working?
//!
//! Run: `cargo run --release -p lb-bench --bin ext_multicluster`

use lb_bench::{row, SimRunner};
use lb_core::baselines::ect_in_order;
use lb_core::{run_pairwise, sufferage_schedule, MultiClusterBalance};
use lb_model::bounds::combined_lower_bound;
use lb_model::prelude::*;
use lb_stats::csv::CsvCell;
use lb_stats::Summary;
use lb_workloads::initial::random_assignment;
use lb_workloads::multi_cluster::{affine, independent};
use rayon::prelude::*;

fn main() {
    let runner = SimRunner::new("ext_multicluster");
    runner.banner(
        "E5",
        "three clusters (CPU+GPU+FPGA): decentralized DLBMC vs references",
    );
    let reps = 15u64;
    runner.sidecar(&serde_json::json!({"reps": reps, "sizes": [32, 16, 8], "jobs": 448}));
    let mut csv = runner.csv(&["regime", "replication", "algorithm", "cmax", "lb", "ratio"]);

    type Maker = Box<dyn Fn(u64) -> Instance + Sync>;
    let regimes: Vec<(&str, Maker)> = vec![
        (
            "independent",
            Box::new(|r| independent(&[32, 16, 8], 448, 1, 1000, 21 + r)),
        ),
        (
            "affine-8x",
            Box::new(|r| affine(&[32, 16, 8], 448, 1, 500, 8, 22 + r)),
        ),
    ];

    println!(
        "{:>12} {:>12} {:>14} {:>10}",
        "regime", "DLBMC/LB", "sufferage/LB", "ECT/LB"
    );
    for (name, make) in &regimes {
        let results: Vec<(f64, f64, f64)> = (0..reps)
            .into_par_iter()
            .map(|r| {
                let inst = make(r);
                // For multi-cluster instances the combined bound has no
                // fractional term (it is two-cluster-specific), so ratios
                // here overestimate the true distance to OPT.
                let lb = combined_lower_bound(&inst) as f64;
                let mut asg = random_assignment(&inst, 31 + r);
                let report = run_pairwise(&inst, &mut asg, &MultiClusterBalance, 41 + r, 40_000);
                let d = report.final_makespan as f64 / lb;
                let s = sufferage_schedule(&inst).makespan() as f64 / lb;
                let e = ect_in_order(&inst).makespan() as f64 / lb;
                (d, s, e)
            })
            .collect();
        for (r, &(d, s, e)) in results.iter().enumerate() {
            for (algo, v) in [("dlbmc", d), ("sufferage", s), ("ect", e)] {
                row(
                    &mut csv,
                    vec![
                        (*name).into(),
                        CsvCell::Uint(r as u64),
                        algo.into(),
                        CsvCell::Float(v),
                        CsvCell::Float(1.0),
                        CsvCell::Float(v),
                    ],
                );
            }
        }
        let med = |f: fn(&(f64, f64, f64)) -> f64| {
            Summary::of(&results.iter().map(f).collect::<Vec<_>>())
                .unwrap()
                .median
        };
        println!(
            "{name:>12} {:>12.3} {:>14.3} {:>10.3}",
            med(|t| t.0),
            med(|t| t.1),
            med(|t| t.2)
        );
    }
    println!(
        "\nreading: the DLB2C recipe survives the jump to three clusters — the \
         decentralized balancer stays within a few percent of the centralized \
         references on both regimes, without any guarantee to lean on. This is \
         the empirical half of the paper's 'extension to more than two \
         clusters' future work; the theory half remains open."
    );
}
