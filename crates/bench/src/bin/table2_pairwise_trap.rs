//! Experiment T2 — paper Table II / Proposition 2.
//!
//! A schedule in which *every pair* of machines is optimally balanced can
//! still be a factor `n` from the optimum: pairwise optimality is a local
//! property. The binary verifies, for growing `n`, that the trap state is
//! a fixed point of an exact pairwise balancer while `Cmax / OPT = n`.
//!
//! Run: `cargo run --release -p lb-bench --bin table2_pairwise_trap`

use lb_bench::{row, SimRunner};
use lb_core::optimal_pair::OptimalPairBalance;
use lb_core::stability::is_stable;
use lb_model::exact::{opt_makespan, ExactLimits};
use lb_stats::csv::CsvCell;
use lb_workloads::adversarial::pairwise_trap;

fn main() {
    let runner = SimRunner::new("table2_pairwise_trap");
    runner.banner(
        "T2",
        "Table II / Proposition 2: pairwise-optimal yet unboundedly bad",
    );
    runner.sidecar(&serde_json::json!({"ns": [10, 100, 1000, 10000]}));
    let mut csv = runner.csv(&["n", "trap_cmax", "opt", "ratio", "pairwise_stable"]);

    println!(
        "{:>8} {:>10} {:>6} {:>10} {:>16}",
        "n", "trap Cmax", "OPT", "ratio", "pairwise stable"
    );
    for n in [10u64, 100, 1000, 10_000] {
        let (inst, asg) = pairwise_trap(n);
        let stable = is_stable(&inst, &asg, &OptimalPairBalance::default());
        let opt = opt_makespan(&inst, ExactLimits::default()).expect("3-job instance");
        let cmax = asg.makespan();
        println!(
            "{n:>8} {cmax:>10} {opt:>6} {:>10.1} {stable:>16}",
            cmax as f64 / opt as f64
        );
        row(
            &mut csv,
            vec![
                CsvCell::Uint(n),
                CsvCell::Uint(cmax),
                CsvCell::Uint(opt),
                CsvCell::Float(cmax as f64 / opt as f64),
                CsvCell::Str(stable.to_string()),
            ],
        );
        assert!(
            stable,
            "the trap must be a fixed point of optimal pairwise balancing"
        );
        assert_eq!(opt, 1);
        assert_eq!(cmax, n);
    }
    println!("\nshape check: stuck at ratio = n for every n (paper: unbounded). OK.");
}
