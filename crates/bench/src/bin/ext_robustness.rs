//! Extension E3 — robustness to cost misprediction.
//!
//! The introduction motivates decentralized balancing partly by "the
//! inherent imprecision of all scheduling systems (runtimes are typically
//! difficult to predict)". Here the schedulers plan against *predicted*
//! costs perturbed by ±e% and are evaluated under the *true* costs, for
//! e ∈ {0, 10, 25, 50}. Compared: CLB2C, DLB2C, and centralized local
//! search, all normalized by the true lower bound.
//!
//! All `error x replication` cells run through the shared campaign engine
//! (`--threads N`, 0 = all cores); output order is fixed by the grid.
//!
//! Run: `cargo run --release -p lb-bench --bin ext_robustness [--reps N] [--threads N]`

use lb_bench::{row, Args, SimRunner};
use lb_core::local_search::{local_search_schedule, LocalSearchLimits};
use lb_core::{clb2c, run_pairwise, Dlb2cBalance};
use lb_model::bounds::combined_lower_bound;
use lb_model::perturb::{evaluate_under, perturbed_instance};
use lb_stats::csv::CsvCell;
use lb_stats::{run_campaign, CampaignSpec, Summary};
use lb_workloads::initial::random_assignment;
use lb_workloads::two_cluster::paper_two_cluster;

fn main() {
    let args = Args::parse();
    let reps: u64 = args
        .value("--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    let threads: usize = args
        .value("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let runner = SimRunner::new("ext_robustness");
    runner.banner(
        "E3",
        "robustness to cost misprediction (plan on predictions, run on truth)",
    );
    runner.sidecar(&serde_json::json!({"reps": reps, "errors": [0,10,25,50]}));
    let mut csv = runner.csv(&[
        "error_percent",
        "replication",
        "algorithm",
        "true_cmax_over_lb",
    ]);

    let errors = [0u32, 10, 25, 50];
    let spec = CampaignSpec {
        base_seed: 900,
        replications: reps,
        threads,
        progress_every: 0,
    };
    let campaign = run_campaign(&spec, &errors, |&error, cell| -> (f64, f64, f64) {
        let r = cell.replication;
        let truth = paper_two_cluster(16, 8, 192, 900 + r);
        let predicted = perturbed_instance(&truth, error, 31 + r);
        let lb = combined_lower_bound(&truth) as f64;

        // Plan every algorithm against `predicted`, score under `truth`.
        let central = clb2c(&predicted).expect("two-cluster");
        let c_ratio = evaluate_under(&truth, &central) as f64 / lb;

        let mut asg = random_assignment(&predicted, 50 + r);
        run_pairwise(&predicted, &mut asg, &Dlb2cBalance, 60 + r, 15_000);
        let d_ratio = evaluate_under(&truth, &asg) as f64 / lb;

        let ls = local_search_schedule(&predicted, LocalSearchLimits::default());
        let l_ratio = evaluate_under(&truth, &ls) as f64 / lb;
        (c_ratio, d_ratio, l_ratio)
    })
    .expect("campaign pool");

    println!(
        "{:>7} {:>12} {:>12} {:>14}",
        "error%", "CLB2C/LB", "DLB2C/LB", "local-search/LB"
    );
    for (ei, &error) in errors.iter().enumerate() {
        let results = campaign.point_results(ei);
        for (r, &(c, d, l)) in results.iter().enumerate() {
            for (algo, v) in [("clb2c", c), ("dlb2c", d), ("local-search", l)] {
                row(
                    &mut csv,
                    vec![
                        CsvCell::Uint(u64::from(error)),
                        CsvCell::Uint(r as u64),
                        algo.into(),
                        CsvCell::Float(v),
                    ],
                );
            }
        }
        let med = |f: fn(&(f64, f64, f64)) -> f64| {
            Summary::of(&results.iter().map(f).collect::<Vec<_>>())
                .unwrap()
                .median
        };
        println!(
            "{error:>7} {:>12.3} {:>12.3} {:>14.3}",
            med(|t| t.0),
            med(|t| t.1),
            med(|t| t.2)
        );
    }
    println!(
        "\n{} cells in {:.2}s ({:.1} reps/s, threads={})",
        campaign.cells(),
        campaign.wall_secs,
        campaign.reps_per_sec(),
        campaign.threads
    );
    println!(
        "\nreading: all three degrade gracefully — the true makespan grows roughly \
         with the prediction error band, with no cliff. DLB2C inherits CLB2C's \
         robustness: pairwise decisions use the same ratio ordering, which is \
         stable under moderate multiplicative noise."
    );
}
