//! Extension E3 — robustness to cost misprediction.
//!
//! The introduction motivates decentralized balancing partly by "the
//! inherent imprecision of all scheduling systems (runtimes are typically
//! difficult to predict)". Here the schedulers plan against *predicted*
//! costs perturbed by ±e% and are evaluated under the *true* costs, for
//! e ∈ {0, 10, 25, 50}. Compared: CLB2C, DLB2C, and centralized local
//! search, all normalized by the true lower bound.
//!
//! Run: `cargo run --release -p lb-bench --bin ext_robustness`

use lb_bench::{row, SimRunner};
use lb_core::local_search::{local_search_schedule, LocalSearchLimits};
use lb_core::{clb2c, run_pairwise, Dlb2cBalance};
use lb_model::bounds::combined_lower_bound;
use lb_model::perturb::{evaluate_under, perturbed_instance};
use lb_stats::csv::CsvCell;
use lb_stats::Summary;
use lb_workloads::initial::random_assignment;
use lb_workloads::two_cluster::paper_two_cluster;
use rayon::prelude::*;

fn main() {
    let runner = SimRunner::new("ext_robustness");
    runner.banner(
        "E3",
        "robustness to cost misprediction (plan on predictions, run on truth)",
    );
    let reps = 15u64;
    runner.sidecar(&serde_json::json!({"reps": reps, "errors": [0,10,25,50]}));
    let mut csv = runner.csv(&[
        "error_percent",
        "replication",
        "algorithm",
        "true_cmax_over_lb",
    ]);

    println!(
        "{:>7} {:>12} {:>12} {:>14}",
        "error%", "CLB2C/LB", "DLB2C/LB", "local-search/LB"
    );
    for error in [0u32, 10, 25, 50] {
        let results: Vec<(f64, f64, f64)> = (0..reps)
            .into_par_iter()
            .map(|r| {
                let truth = paper_two_cluster(16, 8, 192, 900 + r);
                let predicted = perturbed_instance(&truth, error, 31 + r);
                let lb = combined_lower_bound(&truth) as f64;

                // Plan every algorithm against `predicted`, score under `truth`.
                let central = clb2c(&predicted).expect("two-cluster");
                let c_ratio = evaluate_under(&truth, &central) as f64 / lb;

                let mut asg = random_assignment(&predicted, 50 + r);
                run_pairwise(&predicted, &mut asg, &Dlb2cBalance, 60 + r, 15_000);
                let d_ratio = evaluate_under(&truth, &asg) as f64 / lb;

                let ls = local_search_schedule(&predicted, LocalSearchLimits::default());
                let l_ratio = evaluate_under(&truth, &ls) as f64 / lb;
                (c_ratio, d_ratio, l_ratio)
            })
            .collect();

        for (r, &(c, d, l)) in results.iter().enumerate() {
            for (algo, v) in [("clb2c", c), ("dlb2c", d), ("local-search", l)] {
                row(
                    &mut csv,
                    vec![
                        CsvCell::Uint(u64::from(error)),
                        CsvCell::Uint(r as u64),
                        algo.into(),
                        CsvCell::Float(v),
                    ],
                );
            }
        }
        let med = |f: fn(&(f64, f64, f64)) -> f64| {
            Summary::of(&results.iter().map(f).collect::<Vec<_>>())
                .unwrap()
                .median
        };
        println!(
            "{error:>7} {:>12.3} {:>12.3} {:>14.3}",
            med(|t| t.0),
            med(|t| t.1),
            med(|t| t.2)
        );
    }
    println!(
        "\nreading: all three degrade gracefully — the true makespan grows roughly \
         with the prediction error band, with no cliff. DLB2C inherits CLB2C's \
         robustness: pairwise decisions use the same ratio ordering, which is \
         stable under moderate multiplicative noise."
    );
}
