//! Extension E3 — robustness to cost misprediction and machine churn.
//!
//! The introduction motivates decentralized balancing partly by "the
//! inherent imprecision of all scheduling systems (runtimes are typically
//! difficult to predict)". Here the schedulers plan against *predicted*
//! costs perturbed by ±e% and are evaluated under the *true* costs, for
//! e ∈ {0, 10, 25, 50}. Compared: CLB2C, DLB2C, and centralized local
//! search, all normalized by the true lower bound.
//!
//! A second table (E3b) compares fault **semantics** on the same
//! workload: a machine blips offline mid-run and its jobs are handled by
//! the legacy oracle scatter, crash-stop custody, or crash-recovery
//! custody (see `lb_distsim::custody`). Columns report the jobs put at
//! risk by the failure, how many were reclaimed by survivors vs re-synced
//! by the recovering machine, and the final-makespan delta against a
//! fault-free paired run — the price of the failure under each
//! semantics.
//!
//! All cells run through the shared campaign engine (`--threads N`,
//! 0 = all cores); output order is fixed by the grid.
//!
//! Run: `cargo run --release -p lb-bench --bin ext_robustness [--reps N] [--threads N]`

use lb_bench::{row, Args, SimRunner};
use lb_core::local_search::{local_search_schedule, LocalSearchLimits};
use lb_core::{clb2c, run_pairwise, Dlb2cBalance};
use lb_distsim::{run_with_churn_semantics, ChurnPlan, FaultSemantics};
use lb_model::bounds::combined_lower_bound;
use lb_model::perturb::{evaluate_under, perturbed_instance};
use lb_model::prelude::*;
use lb_stats::csv::CsvCell;
use lb_stats::{run_campaign, CampaignSpec, Summary};
use lb_workloads::initial::random_assignment;
use lb_workloads::two_cluster::paper_two_cluster;

fn main() {
    let args = Args::parse();
    let reps: u64 = args
        .value("--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    let threads: usize = args
        .value("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let runner = SimRunner::new("ext_robustness");
    runner.banner(
        "E3",
        "robustness to cost misprediction (plan on predictions, run on truth)",
    );
    runner.sidecar(&serde_json::json!({"reps": reps, "errors": [0,10,25,50]}));
    let mut csv = runner.csv(&[
        "error_percent",
        "replication",
        "algorithm",
        "true_cmax_over_lb",
    ]);

    let errors = [0u32, 10, 25, 50];
    let spec = CampaignSpec {
        base_seed: 900,
        replications: reps,
        threads,
        progress_every: 0,
    };
    let campaign = run_campaign(&spec, &errors, |&error, cell| -> (f64, f64, f64) {
        let r = cell.replication;
        let truth = paper_two_cluster(16, 8, 192, 900 + r);
        let predicted = perturbed_instance(&truth, error, 31 + r);
        let lb = combined_lower_bound(&truth) as f64;

        // Plan every algorithm against `predicted`, score under `truth`.
        let central = clb2c(&predicted).expect("two-cluster");
        let c_ratio = evaluate_under(&truth, &central) as f64 / lb;

        let mut asg = random_assignment(&predicted, 50 + r);
        run_pairwise(&predicted, &mut asg, &Dlb2cBalance, 60 + r, 15_000);
        let d_ratio = evaluate_under(&truth, &asg) as f64 / lb;

        let ls = local_search_schedule(&predicted, LocalSearchLimits::default());
        let l_ratio = evaluate_under(&truth, &ls) as f64 / lb;
        (c_ratio, d_ratio, l_ratio)
    })
    .expect("campaign pool");

    println!(
        "{:>7} {:>12} {:>12} {:>14}",
        "error%", "CLB2C/LB", "DLB2C/LB", "local-search/LB"
    );
    for (ei, &error) in errors.iter().enumerate() {
        let results = campaign.point_results(ei);
        for (r, &(c, d, l)) in results.iter().enumerate() {
            for (algo, v) in [("clb2c", c), ("dlb2c", d), ("local-search", l)] {
                row(
                    &mut csv,
                    vec![
                        CsvCell::Uint(u64::from(error)),
                        CsvCell::Uint(r as u64),
                        algo.into(),
                        CsvCell::Float(v),
                    ],
                );
            }
        }
        let med = |f: fn(&(f64, f64, f64)) -> f64| {
            Summary::of(&results.iter().map(f).collect::<Vec<_>>())
                .unwrap()
                .median
        };
        println!(
            "{error:>7} {:>12.3} {:>12.3} {:>14.3}",
            med(|t| t.0),
            med(|t| t.1),
            med(|t| t.2)
        );
    }
    println!(
        "\n{} cells in {:.2}s ({:.1} reps/s, threads={})",
        campaign.cells(),
        campaign.wall_secs,
        campaign.reps_per_sec(),
        campaign.threads
    );
    println!(
        "\nreading: all three degrade gracefully — the true makespan grows roughly \
         with the prediction error band, with no cliff. DLB2C inherits CLB2C's \
         robustness: pairwise decisions use the same ratio ordering, which is \
         stable under moderate multiplicative noise."
    );

    churn_semantics_table(&runner, reps, threads);
}

/// One E3b cell: `(at_risk, reclaimed, resynced, fault_free_cmax,
/// final_cmax, invariant_violations)`.
type ChurnCell = (u64, u64, u64, u64, u64, u64);

/// E3b: the same DLB2C run under a mid-run machine blip, once per fault
/// semantics, paired against a fault-free control with identical seeds.
fn churn_semantics_table(runner: &SimRunner, reps: u64, threads: usize) {
    const ROUNDS: u64 = 15_000;
    const FAIL_AT: u64 = 2_000;
    const REJOIN_AT: u64 = 6_000;
    // Rejoin lands inside the lease, so crash-recovery re-syncs while
    // crash-stop reclaims — the two custody columns separate.
    const LEASE: u64 = 5_000;

    let scenarios: [(&str, FaultSemantics); 3] = [
        ("oracle-scatter", FaultSemantics::OracleScatter),
        (
            "crash-stop",
            FaultSemantics::CrashStop {
                lease_rounds: LEASE,
            },
        ),
        (
            "crash-recovery",
            FaultSemantics::CrashRecovery {
                lease_rounds: LEASE,
            },
        ),
    ];
    let mut csv = runner.csv_named(
        &format!("{}_churn", runner.name()),
        &[
            "scenario",
            "replication",
            "jobs_at_risk",
            "jobs_reclaimed",
            "jobs_resynced",
            "fault_free_cmax",
            "final_cmax",
            "cmax_delta",
            "invariant_violations",
        ],
    );
    let spec = CampaignSpec {
        base_seed: 910,
        replications: reps,
        threads,
        progress_every: 0,
    };
    let campaign = run_campaign(&spec, &scenarios, |&(_, semantics), cell| {
        let r = cell.replication;
        let inst = paper_two_cluster(16, 8, 192, 900 + r);
        let quiet = ChurnPlan { events: vec![] };
        let blip = ChurnPlan::one_blip(MachineId(0), FAIL_AT, REJOIN_AT);
        // Paired control: identical seeds, no failure. The fault-free
        // leg uses the same custody driver so the RNG draw sequence
        // matches the faulty leg exactly up to the failure round.
        let mut base_asg = random_assignment(&inst, 50 + r);
        let base = run_with_churn_semantics(
            &inst,
            &mut base_asg,
            &Dlb2cBalance,
            &quiet,
            ROUNDS,
            60 + r,
            0,
            semantics,
            false,
        )
        .expect("fault-free control");
        let mut asg = random_assignment(&inst, 50 + r);
        let run = run_with_churn_semantics(
            &inst,
            &mut asg,
            &Dlb2cBalance,
            &blip,
            ROUNDS,
            60 + r,
            0,
            semantics,
            true,
        )
        .expect("one survivor always remains");
        (
            run.jobs_at_risk,
            run.jobs_reclaimed,
            run.jobs_resynced,
            base.run.final_makespan,
            run.run.final_makespan,
            run.invariant_violations.len() as u64,
        )
    })
    .expect("campaign pool");

    println!("\nE3b: machine blip at round {FAIL_AT}, rejoin {REJOIN_AT}, lease {LEASE} rounds");
    println!(
        "{:>15} {:>9} {:>10} {:>9} {:>12}",
        "scenario", "at-risk", "reclaimed", "resynced", "cmax delta"
    );
    for (si, &(name, _)) in scenarios.iter().enumerate() {
        let results = campaign.point_results(si);
        for (r, &(at_risk, reclaimed, resynced, base, fin, viol)) in results.iter().enumerate() {
            row(
                &mut csv,
                vec![
                    name.into(),
                    CsvCell::Uint(r as u64),
                    CsvCell::Uint(at_risk),
                    CsvCell::Uint(reclaimed),
                    CsvCell::Uint(resynced),
                    CsvCell::Uint(base),
                    CsvCell::Uint(fin),
                    CsvCell::Int(fin as i64 - base as i64),
                    CsvCell::Uint(viol),
                ],
            );
        }
        let med = |f: fn(&ChurnCell) -> f64| {
            Summary::of(&results.iter().map(f).collect::<Vec<_>>())
                .unwrap()
                .median
        };
        println!(
            "{name:>15} {:>9.0} {:>10.0} {:>9.0} {:>12.1}",
            med(|t| t.0 as f64),
            med(|t| t.1 as f64),
            med(|t| t.2 as f64),
            med(|t| t.4 as f64 - t.3 as f64),
        );
    }
    println!(
        "\nreading: custody semantics pay a bounded, lease-shaped price for the \
         blip instead of the oracle's instantaneous (and physically impossible) \
         re-deal — crash-recovery returns the parked jobs to their owner, \
         crash-stop re-homes them to survivors, and neither trips the runtime \
         invariant checker."
    );
}
