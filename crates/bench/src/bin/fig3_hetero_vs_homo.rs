//! Experiment F3 — paper Figure 3.
//!
//! "The two clusters case behaves like the one cluster case": run DLB2C to
//! its dynamic equilibrium on (a) a heterogeneous 64+32 two-cluster system
//! and (b) a homogeneous 96-machine cluster (implemented as a two-cluster
//! instance with `p1 = p2`, which *is* a homogeneous system), 768 jobs
//! `U[1, 1000]` each, many replications; compare the distributions of the
//! equilibrium makespan normalized by each instance's lower bound.
//!
//! Expected shape: both distributions are concentrated a little above 1
//! with similar spread — qualitatively the same.
//!
//! Both cases run through the shared campaign engine (2 points x `--reps`
//! replications). Replication `r` of either case uses the same workload
//! seed, keeping the comparison paired; the lower bound is computed
//! inside the cell, so the instance is built exactly once per cell.
//!
//! Run: `cargo run --release -p lb-bench --bin fig3_hetero_vs_homo [--reps N] [--threads N]`

use lb_bench::{row, Args, SimRunner};
use lb_core::Dlb2cBalance;
use lb_distsim::{run_gossip, GossipConfig};
use lb_model::bounds::combined_lower_bound;
use lb_model::prelude::*;
use lb_stats::csv::CsvCell;
use lb_stats::{run_campaign, CampaignSpec, Summary};
use lb_workloads::initial::random_assignment;
use lb_workloads::two_cluster::paper_two_cluster;
use lb_workloads::uniform::uniform_instance;

/// A homogeneous 96-machine system expressed as a degenerate two-cluster
/// instance (p1 = p2), so DLB2C runs exactly as in the heterogeneous case.
fn homogeneous_as_two_cluster(m1: usize, m2: usize, jobs: usize, seed: u64) -> Instance {
    let base = uniform_instance(m1 + m2, jobs, 1, 1000, seed);
    let costs: Vec<(Time, Time)> = base
        .jobs()
        .map(|j| {
            let c = base.cost(MachineId(0), j);
            (c, c)
        })
        .collect();
    Instance::two_cluster(m1, m2, costs).expect("valid by construction")
}

#[derive(Clone, Copy)]
enum Case {
    Hetero,
    Homo,
}

impl Case {
    fn label(self) -> &'static str {
        match self {
            Case::Hetero => "hetero",
            Case::Homo => "homo",
        }
    }
}

fn main() {
    let args = Args::parse();
    let reps: u64 = args
        .value("--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let threads: usize = args
        .value("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let runner = SimRunner::new("fig3_hetero_vs_homo");
    runner.banner(
        "F3",
        "Figure 3: heterogeneous vs homogeneous equilibrium makespan",
    );
    runner.sidecar(
        &serde_json::json!({"reps": reps, "jobs": 768, "config": "64+32 vs 96 homogeneous"}),
    );
    let mut csv = runner.csv(&["case", "replication", "cmax_over_lb"]);

    let spec = CampaignSpec {
        base_seed: 1000,
        replications: reps,
        threads,
        progress_every: 0,
    };
    let cases = [Case::Hetero, Case::Homo];
    let run = run_campaign(&spec, &cases, |case, cell| {
        // Pair the cases: replication r of either case sees the same
        // workload seed (42 + r) and initial-assignment seed (5000 + r).
        let r = cell.replication;
        let inst = match case {
            Case::Hetero => paper_two_cluster(64, 32, 768, 42 + r),
            Case::Homo => homogeneous_as_two_cluster(64, 32, 768, 42 + r),
        };
        let mut asg = random_assignment(&inst, 5000 + r);
        let cfg = GossipConfig {
            max_rounds: 30_000,
            seed: 1000u64.wrapping_add(r),
            ..GossipConfig::default()
        };
        let g = run_gossip(&inst, &mut asg, &Dlb2cBalance, &cfg);
        g.final_makespan as f64 / combined_lower_bound(&inst) as f64
    })
    .expect("campaign pool");

    for (case_idx, case) in cases.iter().enumerate() {
        for (r, &v) in run.point_results(case_idx).iter().enumerate() {
            row(
                &mut csv,
                vec![
                    case.label().into(),
                    CsvCell::Uint(r as u64),
                    CsvCell::Float(v),
                ],
            );
        }
    }

    let sh = Summary::of(run.point_results(0)).expect("non-empty");
    let so = Summary::of(run.point_results(1)).expect("non-empty");
    println!("two clusters (64+32): {}", sh.line());
    println!("one cluster  (96):    {}", so.line());
    println!(
        "replications: {} per case in {:.2}s ({:.1} reps/s, threads={})",
        reps,
        run.wall_secs,
        run.reps_per_sec(),
        run.threads
    );
    println!(
        "\nshape check: both concentrated near 1 x LB with similar spread \
         (paper: 'qualitatively similar'). hetero mean {:.3} vs homo mean {:.3}",
        sh.mean, so.mean
    );
}
