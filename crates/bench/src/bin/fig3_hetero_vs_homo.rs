//! Experiment F3 — paper Figure 3.
//!
//! "The two clusters case behaves like the one cluster case": run DLB2C to
//! its dynamic equilibrium on (a) a heterogeneous 64+32 two-cluster system
//! and (b) a homogeneous 96-machine cluster (implemented as a two-cluster
//! instance with `p1 = p2`, which *is* a homogeneous system), 768 jobs
//! `U[1, 1000]` each, many replications; compare the distributions of the
//! equilibrium makespan normalized by each instance's lower bound.
//!
//! Expected shape: both distributions are concentrated a little above 1
//! with similar spread — qualitatively the same.
//!
//! Run: `cargo run --release -p lb-bench --bin fig3_hetero_vs_homo [--reps N]`

use lb_bench::{row, Args, SimRunner};
use lb_core::Dlb2cBalance;
use lb_distsim::{replicate, GossipConfig};
use lb_model::bounds::combined_lower_bound;
use lb_model::prelude::*;
use lb_stats::csv::CsvCell;
use lb_stats::Summary;
use lb_workloads::initial::random_assignment;
use lb_workloads::two_cluster::paper_two_cluster;
use lb_workloads::uniform::uniform_instance;

/// A homogeneous 96-machine system expressed as a degenerate two-cluster
/// instance (p1 = p2), so DLB2C runs exactly as in the heterogeneous case.
fn homogeneous_as_two_cluster(m1: usize, m2: usize, jobs: usize, seed: u64) -> Instance {
    let base = uniform_instance(m1 + m2, jobs, 1, 1000, seed);
    let costs: Vec<(Time, Time)> = base
        .jobs()
        .map(|j| {
            let c = base.cost(MachineId(0), j);
            (c, c)
        })
        .collect();
    Instance::two_cluster(m1, m2, costs).expect("valid by construction")
}

fn equilibrium_ratios(
    label: &str,
    reps: u64,
    make_inst: impl Fn(u64) -> Instance + Sync,
) -> Vec<f64> {
    let cfg = GossipConfig {
        max_rounds: 30_000,
        seed: 1000,
        ..GossipConfig::default()
    };
    let runs = replicate(&cfg, &Dlb2cBalance, reps, |r| {
        let inst = make_inst(r);
        let asg = random_assignment(&inst, 5000 + r);
        (inst, asg)
    });
    runs.iter()
        .enumerate()
        .map(|(r, run)| {
            let inst = make_inst(r as u64);
            let lb = combined_lower_bound(&inst) as f64;
            let _ = label;
            run.final_makespan as f64 / lb
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let reps: u64 = args
        .value("--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let runner = SimRunner::new("fig3_hetero_vs_homo");
    runner.banner(
        "F3",
        "Figure 3: heterogeneous vs homogeneous equilibrium makespan",
    );
    runner.sidecar(
        &serde_json::json!({"reps": reps, "jobs": 768, "config": "64+32 vs 96 homogeneous"}),
    );
    let mut csv = runner.csv(&["case", "replication", "cmax_over_lb"]);

    let hetero = equilibrium_ratios("hetero", reps, |r| paper_two_cluster(64, 32, 768, 42 + r));
    let homo = equilibrium_ratios("homo", reps, |r| {
        homogeneous_as_two_cluster(64, 32, 768, 42 + r)
    });

    for (r, &v) in hetero.iter().enumerate() {
        row(
            &mut csv,
            vec!["hetero".into(), CsvCell::Uint(r as u64), CsvCell::Float(v)],
        );
    }
    for (r, &v) in homo.iter().enumerate() {
        row(
            &mut csv,
            vec!["homo".into(), CsvCell::Uint(r as u64), CsvCell::Float(v)],
        );
    }

    let sh = Summary::of(&hetero).expect("non-empty");
    let so = Summary::of(&homo).expect("non-empty");
    println!("two clusters (64+32): {}", sh.line());
    println!("one cluster  (96):    {}", so.line());
    println!(
        "\nshape check: both concentrated near 1 x LB with similar spread \
         (paper: 'qualitatively similar'). hetero mean {:.3} vs homo mean {:.3}",
        sh.mean, so.mean
    );
}
