//! Experiment F4 — paper Figure 4.
//!
//! Evolution of `Cmax` over gossip rounds: runs quickly drop to a value
//! near the run's minimum and then *oscillate* around it (no static
//! convergence), for both the heterogeneous 64+32 and the homogeneous 96
//! configurations.
//!
//! The 2 cases x 3 seeds = 6 trajectories run through the shared campaign
//! engine (`--threads N`, 0 = all cores); rows are emitted in grid order,
//! so the CSV is identical for any thread count.
//!
//! Run: `cargo run --release -p lb-bench --bin fig4_cmax_over_time [--rounds N] [--threads N]`

use lb_bench::{row, Args, SimRunner};
use lb_core::Dlb2cBalance;
use lb_distsim::{run_gossip, GossipConfig, GossipRun};
use lb_model::prelude::*;
use lb_stats::csv::CsvCell;
use lb_stats::plot::sparkline;
use lb_stats::{run_campaign, CampaignSpec};
use lb_workloads::initial::random_assignment;
use lb_workloads::two_cluster::paper_two_cluster;
use lb_workloads::uniform::uniform_instance;

fn homogeneous_as_two_cluster(m1: usize, m2: usize, jobs: usize, seed: u64) -> Instance {
    let base = uniform_instance(m1 + m2, jobs, 1, 1000, seed);
    let costs: Vec<(Time, Time)> = base
        .jobs()
        .map(|j| {
            let c = base.cost(MachineId(0), j);
            (c, c)
        })
        .collect();
    Instance::two_cluster(m1, m2, costs).expect("valid by construction")
}

fn main() {
    let args = Args::parse();
    let rounds: u64 = args
        .value("--rounds")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let threads: usize = args
        .value("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let runner = SimRunner::new("fig4_cmax_over_time");
    runner.banner(
        "F4",
        "Figure 4: Cmax trajectories oscillate near the run minimum",
    );
    runner.sidecar(&serde_json::json!({"rounds": rounds, "seeds": [1, 2, 3]}));
    let mut csv = runner.csv(&["case", "seed", "round", "cmax"]);

    let cases = [
        ("hetero-64+32", paper_two_cluster(64, 32, 768, 7)),
        ("homo-96", homogeneous_as_two_cluster(64, 32, 768, 7)),
    ];
    let grid: Vec<(usize, u64)> = cases
        .iter()
        .enumerate()
        .flat_map(|(ci, _)| [1u64, 2, 3].into_iter().map(move |s| (ci, s)))
        .collect();

    let spec = CampaignSpec {
        threads,
        ..CampaignSpec::default()
    };
    let run = run_campaign(&spec, &grid, |&(ci, seed), _| -> GossipRun {
        let inst = &cases[ci].1;
        let mut asg = random_assignment(inst, 100 + seed);
        let cfg = GossipConfig {
            max_rounds: rounds,
            seed,
            record_every: 50,
            ..GossipConfig::default()
        };
        run_gossip(inst, &mut asg, &Dlb2cBalance, &cfg)
    })
    .expect("campaign pool");

    for (&(ci, seed), g) in grid.iter().zip(&run.results) {
        let case = cases[ci].0;
        for &(round, cmax) in &g.makespan_series {
            row(
                &mut csv,
                vec![
                    case.into(),
                    CsvCell::Uint(seed),
                    CsvCell::Uint(round),
                    CsvCell::Uint(cmax),
                ],
            );
        }
        // Oscillation analysis: after the drop phase (first quarter),
        // how far above the run minimum does the trajectory wander?
        let tail: Vec<u64> = g
            .makespan_series
            .iter()
            .skip(g.makespan_series.len() / 4)
            .map(|&(_, c)| c)
            .collect();
        let min = *tail.iter().min().expect("non-empty tail");
        let max = *tail.iter().max().expect("non-empty tail");
        let series: Vec<f64> = g.makespan_series.iter().map(|&(_, c)| c as f64).collect();
        println!(
            "{case} seed {seed}: {} -> {} | equilibrium band [{min}, {max}] \
             (width {:.1}% of min)",
            g.initial_makespan,
            g.final_makespan,
            100.0 * (max - min) as f64 / min as f64
        );
        println!("  {}", sparkline(&series));
    }
    println!(
        "\n{} trajectories in {:.2}s ({:.1} runs/s, threads={})",
        run.points,
        run.wall_secs,
        run.reps_per_sec(),
        run.threads
    );
    println!(
        "\nshape check: fast initial drop, then a narrow oscillation band; \
         homogeneous and heterogeneous trajectories look alike (paper Fig. 4)."
    );
}
