//! Experiment F4 — paper Figure 4.
//!
//! Evolution of `Cmax` over gossip rounds: runs quickly drop to a value
//! near the run's minimum and then *oscillate* around it (no static
//! convergence), for both the heterogeneous 64+32 and the homogeneous 96
//! configurations.
//!
//! Run: `cargo run --release -p lb-bench --bin fig4_cmax_over_time`

use lb_bench::{row, Args, SimRunner};
use lb_core::Dlb2cBalance;
use lb_distsim::{run_gossip, GossipConfig};
use lb_model::prelude::*;
use lb_stats::csv::CsvCell;
use lb_stats::plot::sparkline;
use lb_workloads::initial::random_assignment;
use lb_workloads::two_cluster::paper_two_cluster;
use lb_workloads::uniform::uniform_instance;

fn homogeneous_as_two_cluster(m1: usize, m2: usize, jobs: usize, seed: u64) -> Instance {
    let base = uniform_instance(m1 + m2, jobs, 1, 1000, seed);
    let costs: Vec<(Time, Time)> = base
        .jobs()
        .map(|j| {
            let c = base.cost(MachineId(0), j);
            (c, c)
        })
        .collect();
    Instance::two_cluster(m1, m2, costs).expect("valid by construction")
}

fn main() {
    let args = Args::parse();
    let rounds: u64 = args
        .value("--rounds")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let runner = SimRunner::new("fig4_cmax_over_time");
    runner.banner(
        "F4",
        "Figure 4: Cmax trajectories oscillate near the run minimum",
    );
    runner.sidecar(&serde_json::json!({"rounds": rounds, "seeds": [1, 2, 3]}));
    let mut csv = runner.csv(&["case", "seed", "round", "cmax"]);

    for (case, inst) in [
        ("hetero-64+32", paper_two_cluster(64, 32, 768, 7)),
        ("homo-96", homogeneous_as_two_cluster(64, 32, 768, 7)),
    ] {
        for seed in [1u64, 2, 3] {
            let mut asg = random_assignment(&inst, 100 + seed);
            let cfg = GossipConfig {
                max_rounds: rounds,
                seed,
                record_every: 50,
                ..GossipConfig::default()
            };
            let run = run_gossip(&inst, &mut asg, &Dlb2cBalance, &cfg);
            for &(round, cmax) in &run.makespan_series {
                row(
                    &mut csv,
                    vec![
                        case.into(),
                        CsvCell::Uint(seed),
                        CsvCell::Uint(round),
                        CsvCell::Uint(cmax),
                    ],
                );
            }
            // Oscillation analysis: after the drop phase (first quarter),
            // how far above the run minimum does the trajectory wander?
            let tail: Vec<u64> = run
                .makespan_series
                .iter()
                .skip(run.makespan_series.len() / 4)
                .map(|&(_, c)| c)
                .collect();
            let min = *tail.iter().min().expect("non-empty tail");
            let max = *tail.iter().max().expect("non-empty tail");
            let series: Vec<f64> = run.makespan_series.iter().map(|&(_, c)| c as f64).collect();
            println!(
                "{case} seed {seed}: {} -> {} | equilibrium band [{min}, {max}] \
                 (width {:.1}% of min)",
                run.initial_makespan,
                run.final_makespan,
                100.0 * (max - min) as f64 / min as f64
            );
            println!("  {}", sparkline(&series));
        }
    }
    println!(
        "\nshape check: fast initial drop, then a narrow oscillation band; \
         homogeneous and heterogeneous trajectories look alike (paper Fig. 4)."
    );
}
