//! Extension E4 — resilience to machine churn.
//!
//! Decentralized balancing's raison d'être (Section I) is that no single
//! machine is load-bearing. This experiment fails a heavily loaded
//! machine mid-run (its jobs scatter to random survivors), lets it rejoin
//! later, and measures how many rounds the gossip dynamics need to pull
//! the makespan back into its pre-failure band.
//!
//! Run: `cargo run --release -p lb-bench --bin ext_churn`

use lb_bench::{row, SimRunner};
use lb_core::Dlb2cBalance;
use lb_distsim::{run_with_churn, ChurnPlan};
use lb_model::prelude::*;
use lb_stats::csv::CsvCell;
use lb_stats::Summary;
use lb_workloads::initial::random_assignment;
use lb_workloads::two_cluster::paper_two_cluster;
use rayon::prelude::*;

fn main() {
    let runner = SimRunner::new("ext_churn");
    runner.banner("E4", "makespan recovery after a machine failure");
    let reps = 15u64;
    let (fail_at, rejoin_at, total) = (6_000u64, 12_000u64, 20_000u64);
    runner.sidecar(&serde_json::json!({"reps": reps, "fail_at": fail_at, "rejoin_at": rejoin_at, "total": total}),
    );
    let mut csv = runner.csv(&[
        "replication",
        "pre_failure_cmax",
        "spike_cmax",
        "recovery_rounds",
        "final_cmax",
    ]);

    let results: Vec<(Time, Time, Option<u64>, Time)> = (0..reps)
        .into_par_iter()
        .map(|r| {
            let inst = paper_two_cluster(16, 8, 240, 300 + r);
            let mut asg = random_assignment(&inst, 400 + r);
            let plan = ChurnPlan::one_blip(MachineId(0), fail_at, rejoin_at);
            let run = run_with_churn(&inst, &mut asg, &Dlb2cBalance, &plan, total, 500 + r, 50)
                .expect("one-blip plan always leaves survivors");

            // Pre-failure equilibrium level: the minimum before the event.
            let pre: Time = run
                .makespan_series
                .iter()
                .filter(|&&(round, _)| round < fail_at)
                .map(|&(_, c)| c)
                .min()
                .expect("samples before failure");
            // Spike: worst makespan at/after the failure, before recovery.
            let spike: Time = run
                .makespan_series
                .iter()
                .filter(|&&(round, _)| round >= fail_at)
                .map(|&(_, c)| c)
                .max()
                .expect("samples after failure");
            // Recovery: first round after the failure at which the
            // makespan is back within 5% of the pre-failure level.
            let band = pre + pre / 20;
            let recovery = run
                .makespan_series
                .iter()
                .filter(|&&(round, c)| round > fail_at && c <= band)
                .map(|&(round, _)| round - fail_at)
                .next();
            (pre, spike, recovery, run.final_makespan)
        })
        .collect();

    println!(
        "{:>4} {:>10} {:>10} {:>16} {:>10}",
        "rep", "pre Cmax", "spike", "recovery rounds", "final"
    );
    for (r, &(pre, spike, rec, fin)) in results.iter().enumerate() {
        println!(
            "{r:>4} {pre:>10} {spike:>10} {:>16} {fin:>10}",
            rec.map_or("never".to_string(), |x| x.to_string())
        );
        row(
            &mut csv,
            vec![
                CsvCell::Uint(r as u64),
                CsvCell::Uint(pre),
                CsvCell::Uint(spike),
                rec.map_or("".into(), CsvCell::Uint),
                CsvCell::Uint(fin),
            ],
        );
    }
    let recoveries: Vec<f64> = results
        .iter()
        .filter_map(|&(_, _, r, _)| r.map(|x| x as f64))
        .collect();
    let recovered = recoveries.len();
    if let Some(s) = Summary::of(&recoveries) {
        println!(
            "\n{recovered}/{reps} runs recovered to within 5% of the pre-failure level; \
             median recovery {:.0} rounds (~{:.1} exchanges per machine).",
            s.median,
            s.median / 24.0
        );
    }
    println!(
        "reading: the spike from scattering one machine's jobs is absorbed in a \
         few exchanges per machine — no coordinator, no recovery protocol, just \
         the same gossip that balanced the initial distribution."
    );
}
