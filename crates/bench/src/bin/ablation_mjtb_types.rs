//! Ablation A1 — MJTB's approximation ratio vs the number of job types.
//!
//! Theorem 5 guarantees `k x OPT` for `k` types; this ablation measures
//! how the *actual* ratio (against a provable lower bound, and against
//! exact OPT on small instances) grows with `k`, and how much slack the
//! `sum_t C(T_t)` envelope leaves. The paper proves the bound but does not
//! measure it; DESIGN.md lists this as an ablation of the Section V design
//! choice.
//!
//! Run: `cargo run --release -p lb-bench --bin ablation_mjtb_types`

use lb_bench::{row, SimRunner};
use lb_core::mjtb::per_type_makespans;
use lb_core::{run_pairwise, TypedPairBalance};
use lb_model::exact::{opt_makespan, ExactLimits};
use lb_stats::csv::CsvCell;
use lb_workloads::initial::skewed_assignment;
use lb_workloads::typed::typed_uniform;

fn main() {
    let runner = SimRunner::new("ablation_mjtb_types");
    runner.banner("A1", "MJTB ratio vs number of job types k");
    runner.sidecar(&serde_json::json!({"ks": [1,2,3,4,6,8], "sizes": "small+large"}));
    let mut csv = runner.csv(&[
        "k",
        "size",
        "cmax",
        "envelope",
        "reference",
        "ratio",
        "theorem5_bound",
    ]);

    println!("small instances (exact OPT):");
    println!(
        "{:>2} {:>8} {:>10} {:>8} {:>8} {:>8}",
        "k", "Cmax", "envelope", "OPT", "ratio", "k"
    );
    for k in [1usize, 2, 3, 4] {
        let inst = typed_uniform(3, 12, k, 1, 9, 77 + k as u64);
        let mut asg = skewed_assignment(&inst, 0.4, 3);
        run_pairwise(&inst, &mut asg, &TypedPairBalance, 11, 50_000);
        let envelope: u64 = per_type_makespans(&inst, &asg).expect("typed").iter().sum();
        let opt = opt_makespan(&inst, ExactLimits::default()).expect("12 jobs");
        let ratio = asg.makespan() as f64 / opt as f64;
        println!(
            "{k:>2} {:>8} {envelope:>10} {opt:>8} {ratio:>8.3} {k:>8}",
            asg.makespan()
        );
        assert!(
            ratio <= k as f64 + 1e-9,
            "Theorem 5 violated at convergence: ratio {ratio} > k {k}"
        );
        row(
            &mut csv,
            vec![
                CsvCell::Uint(k as u64),
                "small".into(),
                CsvCell::Uint(asg.makespan()),
                CsvCell::Uint(envelope),
                CsvCell::Uint(opt),
                CsvCell::Float(ratio),
                CsvCell::Uint(k as u64),
            ],
        );
    }

    // On large typed instances the generic work lower bound is very weak
    // (it prices every job at its global minimum cost on every machine),
    // so LB-based ratios would be wildly inflated. Compare against a
    // strong centralized baseline instead: ECT list scheduling, which
    // sees all jobs at once.
    println!("\nlarge instances (vs centralized ECT list scheduling):");
    println!(
        "{:>2} {:>10} {:>10} {:>10} {:>10}",
        "k", "MJTB Cmax", "envelope", "ECT Cmax", "MJTB/ECT"
    );
    for k in [1usize, 2, 3, 4, 6, 8] {
        let inst = typed_uniform(16, 480, k, 10, 500, 99 + k as u64);
        let mut asg = skewed_assignment(&inst, 0.25, 4);
        run_pairwise(&inst, &mut asg, &TypedPairBalance, 13, 200_000);
        let envelope: u64 = per_type_makespans(&inst, &asg).expect("typed").iter().sum();
        let ect = lb_core::baselines::ect_in_order(&inst).makespan();
        let ratio = asg.makespan() as f64 / ect as f64;
        println!(
            "{k:>2} {:>10} {envelope:>10} {ect:>10} {ratio:>10.3}",
            asg.makespan()
        );
        row(
            &mut csv,
            vec![
                CsvCell::Uint(k as u64),
                "large".into(),
                CsvCell::Uint(asg.makespan()),
                CsvCell::Uint(envelope),
                CsvCell::Uint(ect),
                CsvCell::Float(ratio),
                CsvCell::Uint(k as u64),
            ],
        );
    }
    println!(
        "\nshape check: on small instances the measured ratio stays far below the \
         k x OPT worst case; on large ones decentralized MJTB lands close to the \
         centralized ECT reference. The Theorem 5 guarantee is pessimistic on \
         average — its value is that it exists at all for a decentralized scheme."
    );
}
