//! Experiment F2 — paper Figure 2.
//!
//! Stationary distribution of the makespan of the one-cluster chain,
//! plotted as the deviation from perfect balance in units of `p_max`:
//!
//! * panel (a): fixed `m = 6`, varying `p_max` in the paper's
//!   `{2, 4, 6, 8}` (`--quick` shrinks to `{2, 3, 4, 5}`),
//! * panel (b): fixed `p_max = 4`, varying `m` in `{3, 4, 5, 6, 7}`.
//!
//! Expected shapes (paper): unimodal distributions with mode at deviation
//! 0.5; larger `p_max` only smooths the shape; larger `m` shifts mass from
//! below the mode to above it; and `Cmax <= S/m + 1.5 p_max` with very
//! high probability.
//!
//! The grid is solved through the shared campaign engine: points run in
//! parallel (`--threads N`, 0 = all cores) and are emitted in grid
//! order, so the CSV is byte-identical for any thread count.
//!
//! Run: `cargo run --release -p lb-bench --bin fig2_markov [--panel a|b] [--quick] [--threads N]`

use lb_bench::{row, Args, SimRunner};
use lb_markov::theory::verify_theorem10;
use lb_markov::{ChainParams, LoadChain};
use lb_stats::csv::CsvCell;
use lb_stats::plot::bar_chart;
use lb_stats::{run_campaign, CampaignSpec};

struct PointOut {
    panel: &'static str,
    m: usize,
    p_max: u64,
    total: u64,
    states: usize,
    worst: u64,
    dev: Vec<(f64, f64)>,
}

fn solve(panel: &'static str, m: usize, p_max: u64) -> PointOut {
    let params = ChainParams::paper_total(m, p_max);
    let chain = LoadChain::build(params);
    let worst = verify_theorem10(&chain).expect("Theorem 10 must hold on the sink");
    let pi = chain
        .stationary(1e-12, 5_000_000)
        .expect("power iteration converged");
    PointOut {
        panel,
        m,
        p_max,
        total: params.total,
        states: chain.num_states(),
        worst,
        dev: chain.deviation_distribution(&pi),
    }
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("--quick");
    let panel = args.value("--panel").unwrap_or("both");
    let threads: usize = args
        .value("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let runner = SimRunner::new("fig2_markov");
    runner.banner(
        "F2",
        "Figure 2: stationary makespan distribution of the one-cluster chain",
    );
    runner.sidecar(&serde_json::json!({"quick": quick, "panel": panel}));
    let mut csv = runner.csv(&["panel", "m", "p_max", "deviation", "probability"]);

    let mut grid: Vec<(&'static str, usize, u64)> = Vec::new();
    if panel == "a" || panel == "both" {
        let pmaxes: &[u64] = if quick { &[2, 3, 4, 5] } else { &[2, 4, 6, 8] };
        grid.extend(pmaxes.iter().map(|&p| ("a", 6, p)));
    }
    if panel == "b" || panel == "both" {
        let ms: &[usize] = if quick {
            &[3, 4, 5, 6]
        } else {
            &[3, 4, 5, 6, 7]
        };
        grid.extend(ms.iter().map(|&m| ("b", m, 4)));
    }

    let spec = CampaignSpec {
        threads,
        ..CampaignSpec::default()
    };
    let run = run_campaign(&spec, &grid, |&(panel, m, p_max), _| solve(panel, m, p_max))
        .expect("campaign pool");

    for out in &run.results {
        println!(
            "\npanel {}: m={}, p_max={}, S={}, {} sink states, worst sink Cmax {}",
            out.panel, out.m, out.p_max, out.total, out.states, out.worst
        );
        let rows: Vec<(String, f64)> = out
            .dev
            .iter()
            .map(|&(d, p)| (format!("{d:>5.2}"), p))
            .collect();
        print!("{}", bar_chart(&rows, 46));

        let mode = out
            .dev
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|&(d, _)| d)
            .unwrap_or(f64::NAN);
        let p_below_15: f64 = out
            .dev
            .iter()
            .filter(|&&(d, _)| d <= 1.5)
            .map(|&(_, p)| p)
            .sum();
        println!("mode = {mode:.2}, P[deviation <= 1.5] = {p_below_15:.6}");

        for &(d, p) in &out.dev {
            row(
                &mut csv,
                vec![
                    CsvCell::Str(out.panel.to_string()),
                    CsvCell::Uint(out.m as u64),
                    CsvCell::Uint(out.p_max),
                    CsvCell::Float(d),
                    CsvCell::Float(p),
                ],
            );
        }
    }
    println!(
        "\nsolved {} grid points in {:.2}s ({:.1} points/s, threads={})",
        run.points,
        run.wall_secs,
        run.reps_per_sec(),
        run.threads
    );
    println!(
        "shape check: unimodal, mode near 0.5, Cmax <= S/m + 1.5 p_max w.h.p. \
         (compare the P[deviation <= 1.5] column)."
    );
}
