//! Experiment F2 — paper Figure 2.
//!
//! Stationary distribution of the makespan of the one-cluster chain,
//! plotted as the deviation from perfect balance in units of `p_max`:
//!
//! * panel (a): fixed `m = 6`, varying `p_max` in the paper's
//!   `{2, 4, 6, 8}` (`--quick` shrinks to `{2, 3, 4, 5}`),
//! * panel (b): fixed `p_max = 4`, varying `m` in `{3, 4, 5, 6, 7}`.
//!
//! Expected shapes (paper): unimodal distributions with mode at deviation
//! 0.5; larger `p_max` only smooths the shape; larger `m` shifts mass from
//! below the mode to above it; and `Cmax <= S/m + 1.5 p_max` with very
//! high probability.
//!
//! Run: `cargo run --release -p lb-bench --bin fig2_markov [--panel a|b] [--quick]`

use lb_bench::{row, Args, SimRunner};
use lb_markov::theory::verify_theorem10;
use lb_markov::{ChainParams, LoadChain};
use lb_stats::csv::CsvCell;
use lb_stats::plot::bar_chart;

fn run_config(
    panel: &str,
    m: usize,
    p_max: u64,
    csv: &mut lb_stats::csv::CsvWriter<std::io::BufWriter<std::fs::File>>,
) {
    let params = ChainParams::paper_total(m, p_max);
    let chain = LoadChain::build(params);
    let worst = verify_theorem10(&chain).expect("Theorem 10 must hold on the sink");
    let pi = chain
        .stationary(1e-12, 5_000_000)
        .expect("power iteration converged");
    let dev = chain.deviation_distribution(&pi);

    println!(
        "\npanel {panel}: m={m}, p_max={p_max}, S={}, {} sink states, worst sink Cmax {worst}",
        params.total,
        chain.num_states()
    );
    let rows: Vec<(String, f64)> = dev.iter().map(|&(d, p)| (format!("{d:>5.2}"), p)).collect();
    print!("{}", bar_chart(&rows, 46));

    let mode = dev
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .map(|&(d, _)| d)
        .unwrap_or(f64::NAN);
    let p_below_15: f64 = dev
        .iter()
        .filter(|&&(d, _)| d <= 1.5)
        .map(|&(_, p)| p)
        .sum();
    println!("mode = {mode:.2}, P[deviation <= 1.5] = {p_below_15:.6}");

    for &(d, p) in &dev {
        row(
            csv,
            vec![
                CsvCell::Str(panel.to_string()),
                CsvCell::Uint(m as u64),
                CsvCell::Uint(p_max),
                CsvCell::Float(d),
                CsvCell::Float(p),
            ],
        );
    }
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("--quick");
    let panel = args.value("--panel").unwrap_or("both");
    let runner = SimRunner::new("fig2_markov");
    runner.banner(
        "F2",
        "Figure 2: stationary makespan distribution of the one-cluster chain",
    );
    runner.sidecar(&serde_json::json!({"quick": quick, "panel": panel}));
    let mut csv = runner.csv(&["panel", "m", "p_max", "deviation", "probability"]);

    if panel == "a" || panel == "both" {
        let pmaxes: &[u64] = if quick { &[2, 3, 4, 5] } else { &[2, 4, 6, 8] };
        for &p_max in pmaxes {
            run_config("a", 6, p_max, &mut csv);
        }
    }
    if panel == "b" || panel == "both" {
        let ms: &[usize] = if quick {
            &[3, 4, 5, 6]
        } else {
            &[3, 4, 5, 6, 7]
        };
        for &m in ms {
            run_config("b", m, 4, &mut csv);
        }
    }
    println!(
        "\nshape check: unimodal, mode near 0.5, Cmax <= S/m + 1.5 p_max w.h.p. \
         (compare the P[deviation <= 1.5] column)."
    );
}
