//! Experiment F1 — paper Figure 1 / Proposition 8.
//!
//! DLB2C does not always converge: the deterministic pairwise dynamics can
//! enter a limit cycle. The paper exhibits one 5-job, 3-machine, 2-cluster
//! instance; its exact numbers are not machine-readable in the text, so
//! this binary *searches* the same family (tiny random two-cluster
//! instances) for instances whose round-robin DLB2C dynamics provably
//! cycle (exact state-repetition detection), then prints the first few
//! found, with their cycle period.
//!
//! Run: `cargo run --release -p lb-bench --bin fig1_cycle`

use lb_bench::{row, Args, SimRunner};
use lb_core::Dlb2cBalance;
use lb_distsim::{run_gossip, GossipConfig, PairSchedule, RunOutcome};
use lb_stats::csv::CsvCell;
use lb_workloads::adversarial::prop8_candidate;

fn main() {
    let args = Args::parse();
    let max_seeds: u64 = args
        .value("--seeds")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let runner = SimRunner::new("fig1_cycle");
    runner.banner(
        "F1",
        "Figure 1 / Proposition 8: DLB2C limit cycles (existence by search)",
    );
    runner.sidecar(&serde_json::json!({"family": "2+1 machines, 5 jobs, costs U[1,9]", "max_seeds": max_seeds}),
    );
    let mut csv = runner.csv(&[
        "seed",
        "first_seen_sweep",
        "period_sweeps",
        "costs",
        "initial_assignment",
    ]);

    let mut found = 0u32;
    let mut tried = 0u64;
    for seed in 0..max_seeds {
        tried += 1;
        let (inst, mut asg) = prop8_candidate(seed);
        let initial: Vec<u32> = inst.jobs().map(|j| asg.machine_of(j).0).collect();
        let costs: Vec<(u64, u64)> = inst
            .jobs()
            .map(|j| {
                (
                    inst.cost(inst.machines_in(lb_model::ClusterId::ONE)[0], j),
                    inst.cost(inst.machines_in(lb_model::ClusterId::TWO)[0], j),
                )
            })
            .collect();
        let cfg = GossipConfig {
            max_rounds: 3000,
            schedule: PairSchedule::RoundRobin,
            detect_cycles: true,
            seed,
            ..GossipConfig::default()
        };
        let run = run_gossip(&inst, &mut asg, &Dlb2cBalance, &cfg);
        if let RunOutcome::CycleDetected {
            first_seen_sweep,
            period_sweeps,
        } = run.outcome
        {
            // A period-1 "cycle" is just a stable fixed point; Proposition 8
            // needs a genuine oscillation.
            if period_sweeps >= 2 {
                found += 1;
                println!(
                    "seed {seed}: cycle of period {period_sweeps} sweeps entered at sweep \
                     {first_seen_sweep}"
                );
                println!("  job costs (p1, p2): {costs:?}");
                println!("  initial machine of each job: {initial:?}");
                row(
                    &mut csv,
                    vec![
                        CsvCell::Uint(seed),
                        CsvCell::Uint(first_seen_sweep),
                        CsvCell::Uint(period_sweeps),
                        CsvCell::Str(format!("{costs:?}")),
                        CsvCell::Str(format!("{initial:?}")),
                    ],
                );
                if found >= 5 {
                    break;
                }
            }
        }
    }
    println!("\nsearched {tried} instances, found {found} cycling ones");
    if found == 0 {
        println!("no cycle found in this family — try --seeds with a larger budget");
    } else {
        println!("shape check: non-convergence exists (Proposition 8). OK.");
    }
}
