//! Extension E1 — periodic a-priori balancing under online job arrivals
//! (the deployment mode paper Section IV motivates).
//!
//! Jobs arrive over time on random machines of a 16+8 hybrid cluster;
//! every `period` time units a batch of random pairwise DLB2C exchanges
//! rebalances the queued jobs. Sweeps the balancing period and reports
//! makespan, mean flow time, and migrations — showing the trade-off
//! between balancing effort and schedule quality that a runtime system
//! would tune.
//!
//! Run: `cargo run --release -p lb-bench --bin ext_dynamic_arrivals`

use lb_bench::{row, SimRunner};
use lb_core::Dlb2cBalance;
use lb_distsim::dynamic::{poissonish_arrivals, simulate_dynamic, DynamicConfig};
use lb_stats::csv::CsvCell;
use lb_stats::Summary;
use lb_workloads::two_cluster::paper_two_cluster;
use rayon::prelude::*;

fn main() {
    let runner = SimRunner::new("ext_dynamic_arrivals");
    runner.banner(
        "E1",
        "periodic balancing under online arrivals (Section IV scenario)",
    );
    let reps = 10u64;
    runner.sidecar(&serde_json::json!({"reps": reps, "m": "16+8", "jobs": 240, "horizon": 2000}));
    let mut csv = runner.csv(&[
        "period",
        "replication",
        "makespan",
        "mean_flow",
        "migrations",
    ]);

    // period 0 = never balance (jobs run where they arrive).
    let periods: [u64; 5] = [0, 25, 100, 400, 1600];
    println!(
        "{:>8} {:>12} {:>14} {:>12}",
        "period", "makespan", "mean flow", "migrations"
    );
    for &period in &periods {
        let results: Vec<(u64, f64, u64)> = (0..reps)
            .into_par_iter()
            .map(|r| {
                let inst = paper_two_cluster(16, 8, 240, 70 + r);
                let arrivals = poissonish_arrivals(&inst, 2000, 170 + r);
                let cfg = DynamicConfig {
                    balance_every: period,
                    exchanges_per_epoch: 24,
                    seed: 270 + r,
                };
                let res = simulate_dynamic(&inst, &arrivals, &Dlb2cBalance, &cfg);
                (res.makespan, res.mean_flow_time, res.migrations)
            })
            .collect();
        for (r, &(mk, fl, mg)) in results.iter().enumerate() {
            row(
                &mut csv,
                vec![
                    CsvCell::Uint(period),
                    CsvCell::Uint(r as u64),
                    CsvCell::Uint(mk),
                    CsvCell::Float(fl),
                    CsvCell::Uint(mg),
                ],
            );
        }
        let mk = Summary::of(&results.iter().map(|&(m, ..)| m as f64).collect::<Vec<_>>()).unwrap();
        let fl = Summary::of(&results.iter().map(|&(_, f, _)| f).collect::<Vec<_>>()).unwrap();
        let mg = Summary::of(&results.iter().map(|&(.., g)| g as f64).collect::<Vec<_>>()).unwrap();
        println!(
            "{:>8} {:>12.0} {:>14.1} {:>12.0}",
            if period == 0 {
                "never".to_string()
            } else {
                period.to_string()
            },
            mk.median,
            fl.median,
            mg.median
        );
    }
    println!(
        "\nreading: even infrequent periodic balancing slashes makespan and flow \
         time versus no balancing; beyond a point, balancing more often mostly \
         adds migrations. This is the Section IV argument made quantitative."
    );
}
