//! Ablation A2 — peer-selection policy in the DLB2C gossip loop.
//!
//! The paper's model selects peers uniformly. This ablation compares
//! uniform selection with a rotating host and with inter-cluster-biased
//! selection (25/50/80% forced cross-cluster pairs) on the 64+32 workload:
//! time (rounds and effective exchanges) to first reach `1.5 × CLB2C`
//! globally, and the final makespan after a fixed budget.
//!
//! Run: `cargo run --release -p lb-bench --bin ablation_peer_selection`

use lb_bench::{row, SimRunner};
use lb_core::{clb2c, Dlb2cBalance};
use lb_distsim::{run_gossip, GossipConfig, PairSchedule};
use lb_stats::csv::CsvCell;
use lb_stats::Summary;
use lb_workloads::initial::random_assignment;
use lb_workloads::two_cluster::paper_two_cluster;
use rayon::prelude::*;

fn main() {
    let runner = SimRunner::new("ablation_peer_selection");
    runner.banner("A2", "DLB2C peer-selection policies on the 64+32 workload");
    let reps = 20u64;
    runner.sidecar(&serde_json::json!({"reps": reps}));
    let mut csv = runner.csv(&[
        "policy",
        "replication",
        "rounds_to_threshold",
        "final_cmax_over_cent",
    ]);

    let policies: Vec<(&str, PairSchedule)> = vec![
        ("uniform", PairSchedule::UniformRandom),
        ("rotating-host", PairSchedule::RotatingHost),
        (
            "cross-25%",
            PairSchedule::InterClusterBiased { percent: 25 },
        ),
        (
            "cross-50%",
            PairSchedule::InterClusterBiased { percent: 50 },
        ),
        (
            "cross-80%",
            PairSchedule::InterClusterBiased { percent: 80 },
        ),
    ];

    println!(
        "{:>14} {:>22} {:>20}",
        "policy", "rounds to 1.5 x cent", "final Cmax / cent"
    );
    for (name, schedule) in policies {
        let results: Vec<(Option<u64>, f64)> = (0..reps)
            .into_par_iter()
            .map(|r| {
                let inst = paper_two_cluster(64, 32, 768, 500 + r);
                let cent = clb2c(&inst).expect("two-cluster").makespan();
                let mut asg = random_assignment(&inst, 700 + r);
                let cfg = GossipConfig {
                    max_rounds: 20_000,
                    seed: 42 + r,
                    schedule,
                    threshold: cent + cent / 2,
                    ..GossipConfig::default()
                };
                let run = run_gossip(&inst, &mut asg, &Dlb2cBalance, &cfg);
                // Rounds until the *global* makespan passed the threshold:
                // approximate from effective exchanges at the hit.
                (
                    run.global_threshold_hit,
                    run.final_makespan as f64 / cent as f64,
                )
            })
            .collect();

        let hits: Vec<f64> = results
            .iter()
            .filter_map(|(h, _)| h.map(|x| x as f64))
            .collect();
        let finals: Vec<f64> = results.iter().map(|&(_, f)| f).collect();
        let sh = Summary::of(&hits);
        let sf = Summary::of(&finals).expect("non-empty");
        println!(
            "{name:>14} {:>22} {:>20.3}",
            sh.as_ref()
                .map_or("never".to_string(), |s| format!("{:.0} (med)", s.median)),
            sf.median
        );
        for (r, (hit, fin)) in results.iter().enumerate() {
            row(
                &mut csv,
                vec![
                    name.into(),
                    CsvCell::Uint(r as u64),
                    hit.map_or("".into(), CsvCell::Uint),
                    CsvCell::Float(*fin),
                ],
            );
        }
    }
    println!(
        "\nreading: moderate cross-cluster bias speeds up the drop below the \
         threshold (inter-cluster exchanges are where CLB2C-style decisions \
         happen), while extreme bias starves intra-cluster equalization."
    );
}
