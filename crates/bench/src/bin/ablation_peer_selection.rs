//! Ablation A2 — peer-selection policy in the DLB2C gossip loop.
//!
//! The paper's model selects peers uniformly. This ablation compares
//! uniform selection with a rotating host and with inter-cluster-biased
//! selection (25/50/80% forced cross-cluster pairs) on the 64+32 workload:
//! time (rounds and effective exchanges) to first reach `1.5 × CLB2C`
//! globally, and the final makespan after a fixed budget.
//!
//! All `policy x replication` cells run through the shared campaign
//! engine (`--threads N`, 0 = all cores); output order is fixed by the
//! grid.
//!
//! Run: `cargo run --release -p lb-bench --bin ablation_peer_selection [--reps N] [--threads N]`

use lb_bench::{row, Args, SimRunner};
use lb_core::{clb2c, Dlb2cBalance};
use lb_distsim::{run_gossip, GossipConfig, PairSchedule};
use lb_stats::csv::CsvCell;
use lb_stats::{run_campaign, CampaignSpec, Summary};
use lb_workloads::initial::random_assignment;
use lb_workloads::two_cluster::paper_two_cluster;

fn main() {
    let args = Args::parse();
    let reps: u64 = args
        .value("--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let threads: usize = args
        .value("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let runner = SimRunner::new("ablation_peer_selection");
    runner.banner("A2", "DLB2C peer-selection policies on the 64+32 workload");
    runner.sidecar(&serde_json::json!({"reps": reps}));
    let mut csv = runner.csv(&[
        "policy",
        "replication",
        "rounds_to_threshold",
        "final_cmax_over_cent",
    ]);

    let policies: Vec<(&str, PairSchedule)> = vec![
        ("uniform", PairSchedule::UniformRandom),
        ("rotating-host", PairSchedule::RotatingHost),
        (
            "cross-25%",
            PairSchedule::InterClusterBiased { percent: 25 },
        ),
        (
            "cross-50%",
            PairSchedule::InterClusterBiased { percent: 50 },
        ),
        (
            "cross-80%",
            PairSchedule::InterClusterBiased { percent: 80 },
        ),
    ];

    let spec = CampaignSpec {
        base_seed: 42,
        replications: reps,
        threads,
        progress_every: 0,
    };
    let campaign = run_campaign(
        &spec,
        &policies,
        |&(_, schedule), cell| -> (Option<u64>, f64) {
            let r = cell.replication;
            let inst = paper_two_cluster(64, 32, 768, 500 + r);
            let cent = clb2c(&inst).expect("two-cluster").makespan();
            let mut asg = random_assignment(&inst, 700 + r);
            let cfg = GossipConfig {
                max_rounds: 20_000,
                seed: 42 + r,
                schedule,
                threshold: cent + cent / 2,
                ..GossipConfig::default()
            };
            let run = run_gossip(&inst, &mut asg, &Dlb2cBalance, &cfg);
            // Rounds until the *global* makespan passed the threshold:
            // approximate from effective exchanges at the hit.
            (
                run.global_threshold_hit,
                run.final_makespan as f64 / cent as f64,
            )
        },
    )
    .expect("campaign pool");

    println!(
        "{:>14} {:>22} {:>20}",
        "policy", "rounds to 1.5 x cent", "final Cmax / cent"
    );
    for (pi, (name, _)) in policies.iter().enumerate() {
        let results = campaign.point_results(pi);
        let hits: Vec<f64> = results
            .iter()
            .filter_map(|(h, _)| h.map(|x| x as f64))
            .collect();
        let finals: Vec<f64> = results.iter().map(|&(_, f)| f).collect();
        let sh = Summary::of(&hits);
        let sf = Summary::of(&finals).expect("non-empty");
        println!(
            "{name:>14} {:>22} {:>20.3}",
            sh.as_ref()
                .map_or("never".to_string(), |s| format!("{:.0} (med)", s.median)),
            sf.median
        );
        for (r, (hit, fin)) in results.iter().enumerate() {
            row(
                &mut csv,
                vec![
                    name.to_string().into(),
                    CsvCell::Uint(r as u64),
                    hit.map_or("".into(), CsvCell::Uint),
                    CsvCell::Float(*fin),
                ],
            );
        }
    }
    println!(
        "\n{} cells in {:.2}s ({:.1} reps/s, threads={})",
        campaign.cells(),
        campaign.wall_secs,
        campaign.reps_per_sec(),
        campaign.threads
    );
    println!(
        "\nreading: moderate cross-cluster bias speeds up the drop below the \
         threshold (inter-cluster exchanges are where CLB2C-style decisions \
         happen), while extreme bias starves intra-cluster equalization."
    );
}
