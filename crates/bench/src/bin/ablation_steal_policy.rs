//! Ablation A5 — work-stealing steal-amount policies vs DLB2C.
//!
//! Algorithm 1 steals half the victim's queue; Cilk-style runtimes steal
//! one task. This ablation compares steal-half / steal-one / steal-all
//! against DLB2C on two starts: the paper's random initial distribution
//! (benign) and a single-hot-machine skew (where a posteriori balancing
//! pays its reaction latency). None of the variants escapes Theorem 1 —
//! also shown, on the trap instance.
//!
//! Run: `cargo run --release -p lb-bench --bin ablation_steal_policy`

use lb_bench::{row, SimRunner};
use lb_core::{run_pairwise, Dlb2cBalance};
use lb_distsim::{simulate_work_stealing_with, StealPolicy};
use lb_stats::csv::CsvCell;
use lb_stats::Summary;
use lb_workloads::adversarial::worksteal_trap;
use lb_workloads::initial::{random_assignment, skewed_assignment};
use lb_workloads::two_cluster::paper_two_cluster;

fn main() {
    let runner = SimRunner::new("ablation_steal_policy");
    runner.banner("A5", "steal policies vs a priori balancing");
    let reps = 15u64;
    runner.sidecar(&serde_json::json!({"reps": reps}));
    let mut csv = runner.csv(&[
        "start",
        "policy",
        "replication",
        "makespan",
        "steals_or_exchanges",
    ]);

    let policies = [
        ("steal-half", StealPolicy::Half),
        ("steal-one", StealPolicy::One),
        ("steal-all", StealPolicy::All),
    ];

    for (start_name, skew) in [("random", false), ("one-hot", true)] {
        println!("\nstart = {start_name}:");
        println!(
            "{:>12} {:>12} {:>14}",
            "policy", "median Cmax", "median ops"
        );
        for (name, policy) in policies {
            let mut cmaxes = Vec::new();
            let mut ops = Vec::new();
            for r in 0..reps {
                let inst = paper_two_cluster(16, 8, 240, 40 + r);
                let init = if skew {
                    skewed_assignment(&inst, 0.05, 41 + r)
                } else {
                    random_assignment(&inst, 41 + r)
                };
                let res = simulate_work_stealing_with(&inst, &init, 42 + r, policy);
                cmaxes.push(res.makespan as f64);
                ops.push(res.steals as f64);
                row(
                    &mut csv,
                    vec![
                        start_name.into(),
                        name.into(),
                        CsvCell::Uint(r),
                        CsvCell::Uint(res.makespan),
                        CsvCell::Uint(res.steals),
                    ],
                );
            }
            println!(
                "{name:>12} {:>12.0} {:>14.0}",
                Summary::of(&cmaxes).unwrap().median,
                Summary::of(&ops).unwrap().median
            );
        }
        // DLB2C reference: balance first, then execute (a priori).
        let mut cmaxes = Vec::new();
        let mut ops = Vec::new();
        for r in 0..reps {
            let inst = paper_two_cluster(16, 8, 240, 40 + r);
            let mut asg = if skew {
                skewed_assignment(&inst, 0.05, 41 + r)
            } else {
                random_assignment(&inst, 41 + r)
            };
            let report = run_pairwise(&inst, &mut asg, &Dlb2cBalance, 43 + r, 10_000);
            cmaxes.push(report.final_makespan as f64);
            ops.push(report.exchanges as f64);
            row(
                &mut csv,
                vec![
                    start_name.into(),
                    "dlb2c".into(),
                    CsvCell::Uint(r),
                    CsvCell::Uint(report.final_makespan),
                    CsvCell::Uint(report.exchanges),
                ],
            );
        }
        println!(
            "{:>12} {:>12.0} {:>14.0}",
            "dlb2c",
            Summary::of(&cmaxes).unwrap().median,
            Summary::of(&ops).unwrap().median
        );
    }

    // Theorem 1: no steal policy escapes the trap.
    println!("\nTheorem 1 trap (n = 1000):");
    for (name, policy) in policies {
        let (inst, init) = worksteal_trap(1000);
        let res = simulate_work_stealing_with(&inst, &init, 1, policy);
        println!("{name:>12}: Cmax {} (OPT = 2)", res.makespan);
        assert!(res.makespan >= 1000);
    }
    println!(
        "\nreading: steal amount tunes the steal count, not the fundamental \
         weakness — all policies remain a posteriori and lose to DLB2C wherever \
         heterogeneous affinity matters, and all are Θ(n) on the Theorem 1 trap."
    );
}
