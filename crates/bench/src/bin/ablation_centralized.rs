//! Ablation A3 — centralized algorithms across heterogeneity regimes.
//!
//! CLB2C vs List Scheduling (ECT) vs LPT vs the fractional lower bound on
//! two-cluster workloads with different cost correlation structures:
//! independent (the paper's regime), correlated (mild heterogeneity),
//! inverted (strong affinity contrast), and related-by-a-factor (the "GPU
//! is k x faster" folk model). Shows where CLB2C's ratio-sorting pays off.
//!
//! Run: `cargo run --release -p lb-bench --bin ablation_centralized`

use lb_bench::{row, SimRunner};
use lb_core::baselines::{d_choices_schedule, ect_in_order, lpt_schedule};
use lb_core::clb2c;
use lb_model::bounds::combined_lower_bound;
use lb_model::prelude::*;
use lb_stats::csv::CsvCell;
use lb_stats::Summary;
use lb_workloads::two_cluster;

fn main() {
    let runner = SimRunner::new("ablation_centralized");
    runner.banner("A3", "centralized algorithms across heterogeneity regimes");
    let reps = 20u64;
    runner.sidecar(&serde_json::json!({"reps": reps, "m": "64+32", "jobs": 768}));
    let mut csv = runner.csv(&["regime", "replication", "algorithm", "cmax", "lb", "ratio"]);

    type Maker = Box<dyn Fn(u64) -> Instance>;
    let regimes: Vec<(&str, Maker)> = vec![
        (
            "independent",
            Box::new(|r| two_cluster::independent(64, 32, 768, 1, 1000, 11 + r)),
        ),
        (
            "correlated-10%",
            Box::new(|r| two_cluster::correlated(64, 32, 768, 1, 1000, 10, 22 + r)),
        ),
        (
            "inverted",
            Box::new(|r| two_cluster::inverted(64, 32, 768, 1, 1000, 33 + r)),
        ),
        (
            "related-4x",
            Box::new(|r| two_cluster::related_factor(64, 32, 768, 4, 1000, 4, 44 + r)),
        ),
    ];

    println!(
        "{:>15} {:>12} {:>12} {:>12} {:>14}",
        "regime", "CLB2C/LB", "ECT/LB", "LPT/LB", "2-choices/LB"
    );
    for (name, make) in &regimes {
        let mut ratios: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
        for r in 0..reps {
            let inst = make(r);
            let lb = combined_lower_bound(&inst);
            let algos: [(&str, Assignment); 4] = [
                ("clb2c", clb2c(&inst).expect("two-cluster")),
                ("ect", ect_in_order(&inst)),
                ("lpt", lpt_schedule(&inst)),
                ("dchoices", d_choices_schedule(&inst, 2, 555 + r)),
            ];
            for (algo, asg) in algos {
                let ratio = asg.makespan() as f64 / lb as f64;
                ratios.entry(algo).or_default().push(ratio);
                row(
                    &mut csv,
                    vec![
                        (*name).into(),
                        CsvCell::Uint(r),
                        algo.into(),
                        CsvCell::Uint(asg.makespan()),
                        CsvCell::Uint(lb),
                        CsvCell::Float(ratio),
                    ],
                );
            }
        }
        let med = |a: &str| Summary::of(&ratios[a]).expect("non-empty").median;
        println!(
            "{name:>15} {:>12.3} {:>12.3} {:>12.3} {:>14.3}",
            med("clb2c"),
            med("ect"),
            med("lpt"),
            med("dchoices")
        );
    }
    println!(
        "\nreading: every algorithm stays within ~1.2x of the lower bound on these \
         workloads. LPT-ordered ECT is strongest under mild heterogeneity (big jobs \
         placed cost-aware first), but it degrades on the inverted regime where \
         affinity contrast is extreme — exactly where CLB2C's ratio-sorting takes \
         the lead. CLB2C is the only one of the three with a proven 2-approximation."
    );
}
