//! Criterion microbenchmarks of the open-system subsystem.
//!
//! Three costs matter for the serve-sim path: end-to-end drain
//! throughput of the event loop (arrive → queue → exchange → serve →
//! depart, everything included), the arrival-stream generation in
//! front of it, and the tail-digest ingest/merge that every departure
//! funnels into. Bench IDs end in `m=<size>` / `n=<size>`, matching
//! the CI smoke filter convention of the other suites.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lb_distsim::stream_rng;
use lb_model::prelude::*;
use lb_open::{run_open, ArrivalProcess, OpenConfig, Pairing};
use lb_stats::QuantileDigest;
use lb_workloads::uniform::paper_uniform;
use std::hint::black_box;

/// One arrival per machine: the per-tier shape of the BENCH report's
/// open section (the m = 10⁵ row is the acceptance figure: 10⁵ Poisson
/// arrivals drained with tails reported).
const SIZES: &[usize] = &[1_000, 10_000, 100_000];

/// An open world at offered load ρ = 0.8: a uniform instance with one
/// job per machine and the Poisson gap `S̄ / (ρ·m)` the CLI would
/// derive. At large m the gap drops below one integer time unit and
/// the stream collapses toward a burst — the event loop's worst case
/// (maximal queue pressure), which is exactly what a drain-throughput
/// figure should measure.
fn setup(m: usize) -> (Instance, ArrivalProcess, OpenConfig) {
    let inst = paper_uniform(m, m, 42);
    let mean_service = inst
        .jobs()
        .map(|j| inst.cost(MachineId::from_idx(j.idx() % m), j) as f64)
        .sum::<f64>()
        / m as f64;
    let process = ArrivalProcess::Poisson {
        mean_gap: mean_service / (0.8 * m as f64),
    };
    let cfg = OpenConfig {
        error_percent: 20,
        pairing: Pairing::Greedy,
        seed: 42,
        ..OpenConfig::default()
    };
    (inst, process, cfg)
}

fn bench_open_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("open-drain");
    g.sample_size(10);
    for &m in SIZES {
        let (inst, process, cfg) = setup(m);
        g.bench_with_input(BenchmarkId::new("poisson", format!("m={m}")), &m, |b, _| {
            b.iter(|| {
                let run = run_open(&inst, &process, &cfg);
                assert_eq!(run.metrics.completed, m as u64, "stream must drain");
                black_box(run.metrics.response_tail())
            })
        });
    }
    g.finish();
}

fn bench_arrival_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("open-arrivals");
    for &m in SIZES {
        let (inst, process, _) = setup(m);
        g.bench_with_input(
            BenchmarkId::new("generate", format!("m={m}")),
            &m,
            |b, _| {
                b.iter(|| {
                    let mut rng = stream_rng(42, 0);
                    black_box(process.generate(&inst, &mut rng).len())
                })
            },
        );
    }
    g.finish();
}

fn bench_digest(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantile-digest");
    for &n in &[10_000usize, 100_000] {
        // Deterministic pseudo-latencies spanning several orders of
        // magnitude, the shape response-time streams actually have.
        let samples: Vec<u64> = (0..n as u64).map(|i| (i * 48_271) % 1_000_003).collect();
        g.bench_with_input(BenchmarkId::new("ingest", format!("n={n}")), &n, |b, _| {
            b.iter(|| {
                let d: QuantileDigest = samples.iter().copied().collect();
                black_box(d.tail_triple())
            })
        });
        let whole: QuantileDigest = samples.iter().copied().collect();
        g.bench_with_input(BenchmarkId::new("merge", format!("n={n}")), &n, |b, _| {
            b.iter(|| {
                let mut acc = whole.clone();
                acc.merge(&whole);
                black_box(acc.count())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_open_drain,
    bench_arrival_generation,
    bench_digest
);
criterion_main!(benches);
