//! Criterion microbenchmarks of the simulation substrate.
//!
//! A figure run is thousands of gossip rounds (or one work-stealing
//! simulation) per replication; these benches size that cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lb_core::Dlb2cBalance;
use lb_distsim::{
    run_concurrent, run_gossip, simulate_work_stealing, ConcurrentConfig, GossipConfig,
};
use lb_workloads::initial::random_assignment;
use lb_workloads::two_cluster::paper_two_cluster;
use std::hint::black_box;

fn bench_gossip_rounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("gossip-1000-rounds");
    g.sample_size(20);
    for &(m1, m2, jobs) in &[(16usize, 8usize, 192usize), (64, 32, 768)] {
        let inst = paper_two_cluster(m1, m2, jobs, 5);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{m1}+{m2}x{jobs}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let mut asg = random_assignment(inst, 9);
                    let cfg = GossipConfig {
                        max_rounds: 1000,
                        seed: 1,
                        ..GossipConfig::default()
                    };
                    black_box(run_gossip(inst, &mut asg, &Dlb2cBalance, &cfg))
                })
            },
        );
    }
    g.finish();
}

fn bench_worksteal(c: &mut Criterion) {
    let mut g = c.benchmark_group("worksteal-sim");
    g.sample_size(20);
    for &(machines, jobs) in &[(24usize, 192usize), (96, 768)] {
        let inst = paper_two_cluster(machines * 2 / 3, machines / 3, jobs, 6);
        let asg = random_assignment(&inst, 10);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{machines}x{jobs}")),
            &(),
            |b, ()| b.iter(|| black_box(simulate_work_stealing(&inst, &asg, 2))),
        );
    }
    g.finish();
}

fn bench_concurrent(c: &mut Criterion) {
    // Same 10k-exchange budget, sequential vs threaded: measures the
    // locking overhead and the scaling headroom of the concurrent engine.
    let mut g = c.benchmark_group("dlb2c-10k-exchanges");
    g.sample_size(10);
    let inst = paper_two_cluster(64, 32, 768, 7);
    let init = random_assignment(&inst, 8);
    g.bench_function("sequential", |b| {
        b.iter(|| {
            let mut asg = init.clone();
            let cfg = GossipConfig {
                max_rounds: 10_000,
                seed: 1,
                ..GossipConfig::default()
            };
            black_box(run_gossip(&inst, &mut asg, &Dlb2cBalance, &cfg))
        })
    });
    for threads in [2usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("concurrent", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let cfg = ConcurrentConfig {
                        total_exchanges: 10_000,
                        seed: 1,
                        max_threads: threads,
                        sample_every: 0,
                    };
                    black_box(run_concurrent(&inst, &init, &Dlb2cBalance, &cfg))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_gossip_rounds,
    bench_worksteal,
    bench_concurrent
);
criterion_main!(benches);
