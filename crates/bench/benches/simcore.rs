//! Criterion microbenchmarks of the incremental load index in the
//! simulation hot path.
//!
//! Probes call `SimCore::makespan()` every round; these benches size
//! that query (O(1) via the fused load-index caches vs the naive O(m)
//! rescan), the `move_job` update that maintains it (amortized O(1)),
//! the full per-round gossip cost with a per-round-sampling probe
//! attached, and the sharded parallel round driver, at
//! m ∈ {10², 10³, 10⁴, 10⁵, 10⁶}.
//!
//! Bench IDs end in `m=<size>`, so CI can smoke the smallest size only
//! with the regex filter `m=100$` (which the `m=1000000` tier does not
//! match).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lb_core::EctPairBalance;
use lb_distsim::gossip::GossipProtocol;
use lb_distsim::probe::{Probe, ProbeHub, SeriesProbe, StopReason};
use lb_distsim::protocol::drive;
use lb_distsim::simcore::SimCore;
use lb_distsim::PairSchedule;
use lb_model::prelude::*;
use lb_workloads::uniform::paper_uniform;
use std::hint::black_box;

/// The five machine counts of the acceptance criteria. All sizes use
/// O(n + m)-storage cost models (`paper_uniform`), so the 10⁶ tier never
/// materializes a dense cost matrix.
const SIZES: &[usize] = &[100, 1_000, 10_000, 100_000, 1_000_000];

/// A uniform instance with `2 m` jobs (O(n + m) memory, so m = 10⁵ does
/// not materialize a dense cost matrix) and a round-robin start.
fn setup(m: usize) -> (Instance, Assignment) {
    let inst = paper_uniform(m, 2 * m, 42);
    let asg = Assignment::round_robin(&inst);
    (inst, asg)
}

/// The pre-index per-round makespan path: a full O(m) rescan of the
/// loads, used as the baseline the index is measured against.
fn naive_makespan(asg: &Assignment) -> Time {
    asg.loads_iter().max().unwrap_or(0)
}

fn bench_makespan_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("makespan-query");
    for &m in SIZES {
        let (_inst, asg) = setup(m);
        g.bench_with_input(BenchmarkId::new("indexed", format!("m={m}")), &m, |b, _| {
            b.iter(|| black_box(asg.makespan()))
        });
        g.bench_with_input(
            BenchmarkId::new("naive-scan", format!("m={m}")),
            &m,
            |b, _| b.iter(|| black_box(naive_makespan(&asg))),
        );
    }
    g.finish();
}

fn bench_move_job(c: &mut Criterion) {
    let mut g = c.benchmark_group("move-job");
    for &m in SIZES {
        let (inst, mut asg) = setup(m);
        let n = inst.num_jobs();
        let mut i = 0usize;
        g.bench_with_input(BenchmarkId::new("update", format!("m={m}")), &m, |b, _| {
            b.iter(|| {
                // Cycle jobs through machines; each call is a real move.
                let job = JobId::from_idx(i % n);
                let to = MachineId::from_idx((i * 7 + 1) % m);
                asg.move_job(&inst, job, to);
                i += 1;
                black_box(asg.load(to))
            })
        });
    }
    g.finish();
}

/// A probe reproducing the pre-index per-round sampling cost: a naive
/// O(m) load rescan after every round.
struct NaiveSeriesProbe {
    series: Vec<(u64, Time)>,
}

impl Probe for NaiveSeriesProbe {
    fn after_round(&mut self, core: &SimCore) -> Option<StopReason> {
        self.series.push((core.round, naive_makespan(core.asg)));
        None
    }
}

fn run_rounds(inst: &Instance, asg: &mut Assignment, probe: &mut dyn Probe, rounds: u64) {
    let mut core = SimCore::new(inst, asg, 3);
    let mut protocol = GossipProtocol::new(&EctPairBalance, PairSchedule::UniformRandom);
    let mut hub = ProbeHub::new();
    hub.push(probe);
    drive(&mut core, &mut protocol, &mut hub, rounds);
}

fn bench_gossip_round(c: &mut Criterion) {
    // 256 full gossip rounds with a per-round-sampling series probe:
    // the indexed probe reads the O(1) root, the naive probe rescans all
    // m loads each round — the per-round speedup of the acceptance
    // criteria is this pair at m = 10⁴.
    const ROUNDS: u64 = 256;
    let mut g = c.benchmark_group("gossip-round");
    g.sample_size(10);
    for &m in SIZES {
        let (inst, asg) = setup(m);
        g.bench_with_input(BenchmarkId::new("indexed", format!("m={m}")), &m, |b, _| {
            b.iter(|| {
                let mut work = asg.clone();
                let mut probe = SeriesProbe::with_round_budget(1, ROUNDS);
                run_rounds(&inst, &mut work, &mut probe, ROUNDS);
                black_box(probe.best)
            })
        });
        g.bench_with_input(
            BenchmarkId::new("naive-probe", format!("m={m}")),
            &m,
            |b, _| {
                b.iter(|| {
                    let mut work = asg.clone();
                    let mut probe = NaiveSeriesProbe { series: Vec::new() };
                    run_rounds(&inst, &mut work, &mut probe, ROUNDS);
                    black_box(probe.series.len())
                })
            },
        );
    }
    g.finish();
}

fn bench_parallel_round(c: &mut Criterion) {
    // The sharded batch driver: 64 rounds per iteration on a persistent
    // core (no per-iteration clone — the m = 10⁶ acceptance budget is a
    // per-round number, so the clone would drown the signal). Shard-local
    // exchanges run through disjoint `ShardView`s; output is
    // byte-identical to the sequential driver at any shard count.
    const BATCH: u64 = 64;
    let mut g = c.benchmark_group("parallel-round");
    g.sample_size(10);
    for &m in SIZES {
        let (inst, asg) = setup(m);
        for shards in [1usize, 8] {
            let mut work = asg.clone();
            work.set_shards(shards);
            let mut core = SimCore::new(&inst, &mut work, 3);
            g.bench_with_input(
                BenchmarkId::new(format!("shards={shards}"), format!("m={m}")),
                &m,
                |b, _| {
                    b.iter(|| {
                        black_box(core.run_parallel_rounds(
                            &EctPairBalance,
                            PairSchedule::UniformRandom,
                            BATCH,
                        ))
                    })
                },
            );
        }
    }
    g.finish();
}

/// Two alternating waves of `wave` planned moves over distinct jobs,
/// strided so consecutive moves touch unrelated machines (a
/// cold-working-set pattern: every move misses in cache the way a real
/// scatter/exchange wave does). Applying wave A then wave B then A again
/// keeps every move a *real* move — nothing degenerates into the
/// `from == to` fast path across iterations.
type Wave = Vec<(JobId, MachineId)>;

fn migration_waves(m: usize, n: usize, wave: usize) -> (Wave, Wave) {
    // Odd prime stride, coprime with n = 2m, so the first `wave` jobs
    // are distinct and scattered across the whole job array.
    let stride = 48_271usize;
    let mut a = Vec::with_capacity(wave);
    let mut b = Vec::with_capacity(wave);
    for i in 0..wave {
        let j = (i * stride) % n;
        a.push((JobId::from_idx(j), MachineId::from_idx((j * 7 + 1) % m)));
        b.push((JobId::from_idx(j), MachineId::from_idx((j * 13 + 3) % m)));
    }
    (a, b)
}

fn bench_migration(c: &mut Criterion) {
    // The move_job memory wall. A stream of single moves chases four
    // arenas per move (machine_of, two jobs_on lists, loads, then the
    // index levels) with DRAM-latency-bound dependent loads. The batched
    // applier commits the *same* stream grouped by machine with the next
    // run's lines prefetched, and the hugepage tier additionally backs
    // the arenas with 2 MiB pages to cut TLB walks. All three rows are
    // draw-for-draw identical in results (see `lb_model::migrate`); only
    // throughput differs. Waves are *round-scale* — m moves, one per
    // machine on average, the shape a full exchange round or a
    // crash-recovery scatter hands the applier; that is where machine
    // batching amortizes (small waves roughly break even, see the
    // module docs). Each iteration applies a whole wave, so per-move
    // numbers are the criterion estimate divided by the wave length
    // (bench-report does this division when deriving
    // `move_job_batched_ns`).
    let mut g = c.benchmark_group("migration");
    g.sample_size(10);
    for &m in &[100_000usize, 1_000_000] {
        let (inst, asg) = setup(m);
        let (wave_a, wave_b) = migration_waves(m, inst.num_jobs(), m);

        let mut work = asg.clone();
        let mut flip = false;
        g.bench_with_input(
            BenchmarkId::new("per-move", format!("m={m}")),
            &m,
            |b, _| {
                b.iter(|| {
                    let wave = if flip { &wave_b } else { &wave_a };
                    flip = !flip;
                    for &(j, to) in wave {
                        work.move_job(&inst, j, to);
                    }
                    black_box(work.makespan())
                })
            },
        );

        let batch_a: MigrationBatch = wave_a.iter().copied().collect();
        let batch_b: MigrationBatch = wave_b.iter().copied().collect();
        let mut work = asg.clone();
        let mut flip = false;
        g.bench_with_input(BenchmarkId::new("batched", format!("m={m}")), &m, |b, _| {
            b.iter(|| {
                let batch = if flip { &batch_b } else { &batch_a };
                flip = !flip;
                work.apply_migrations(&inst, batch);
                black_box(work.makespan())
            })
        });

        let mut work = asg.clone();
        let _ = inst.advise_hugepages();
        let _ = work.advise_hugepages();
        let mut flip = false;
        g.bench_with_input(
            BenchmarkId::new("batched-hugepages", format!("m={m}")),
            &m,
            |b, _| {
                b.iter(|| {
                    let batch = if flip { &batch_b } else { &batch_a };
                    flip = !flip;
                    work.apply_migrations(&inst, batch);
                    black_box(work.makespan())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_makespan_query,
    bench_move_job,
    bench_gossip_round,
    bench_parallel_round,
    bench_migration
);
criterion_main!(benches);
