//! Criterion microbenchmarks of the message-passing network simulator.
//!
//! The event loop is the net layer's hot path: every message is a heap
//! push/pop plus an agent state transition, and a figure run processes
//! hundreds of thousands of them. These benches size (a) raw event
//! throughput on a perfect network, (b) the surcharge of fault
//! injection (drop/duplicate rolls and retry traffic), and (c) a full
//! run to quiescence, the unit a latency/drop sweep repeats per cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lb_core::Dlb2cBalance;
use lb_net::{run_net, FaultPlan, LatencyModel, NetConfig};
use lb_workloads::initial::random_assignment;
use lb_workloads::two_cluster::paper_two_cluster;
use std::hint::black_box;

/// A fixed exchange budget isolates event-loop cost from convergence
/// speed: every iteration processes the same amount of protocol work.
fn capped(seed: u64) -> NetConfig {
    NetConfig {
        max_exchanges: 2_000,
        quiescence_window: 0,
        seed,
        ..NetConfig::default()
    }
}

fn bench_net_exchanges(c: &mut Criterion) {
    let mut g = c.benchmark_group("net-2k-exchanges");
    g.sample_size(20);
    for &(m1, m2, jobs) in &[(16usize, 8usize, 192usize), (64, 32, 768)] {
        let inst = paper_two_cluster(m1, m2, jobs, 5);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{m1}+{m2}x{jobs}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let mut asg = random_assignment(inst, 9);
                    black_box(run_net(inst, &mut asg, &Dlb2cBalance, &capped(1)))
                })
            },
        );
    }
    g.finish();
}

fn bench_net_faults(c: &mut Criterion) {
    // Same exchange budget under increasing loss: measures what the
    // fault rolls and the retry/timeout machinery add per useful unit
    // of work.
    let mut g = c.benchmark_group("net-2k-exchanges-lossy");
    g.sample_size(10);
    let inst = paper_two_cluster(16, 8, 192, 5);
    for drop in [0u16, 150, 300] {
        g.bench_with_input(BenchmarkId::from_parameter(drop), &drop, |b, &drop| {
            b.iter(|| {
                let mut asg = random_assignment(&inst, 9);
                let cfg = NetConfig {
                    latency: LatencyModel::UniformJitter { min: 1, max: 9 },
                    faults: FaultPlan::with_drop(drop),
                    ..capped(1)
                };
                black_box(run_net(&inst, &mut asg, &Dlb2cBalance, &cfg))
            })
        });
    }
    g.finish();
}

fn bench_net_to_quiescence(c: &mut Criterion) {
    // The sweep unit: one full run to the quiescence stop on the
    // paper's workload, perfect network.
    let mut g = c.benchmark_group("net-to-quiescence");
    g.sample_size(10);
    let inst = paper_two_cluster(16, 8, 192, 5);
    g.bench_function("16+8x192", |b| {
        b.iter(|| {
            let mut asg = random_assignment(&inst, 9);
            let cfg = NetConfig {
                seed: 1,
                ..NetConfig::default()
            };
            black_box(run_net(&inst, &mut asg, &Dlb2cBalance, &cfg))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_net_exchanges,
    bench_net_faults,
    bench_net_to_quiescence
);
criterion_main!(benches);
