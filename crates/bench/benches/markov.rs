//! Criterion microbenchmarks of the Markov substrate.
//!
//! Chain construction and power iteration dominate the Figure 2
//! regeneration time; the paper notes "the computational cost quickly
//! increases with m and p_max" — these benches quantify that wall.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lb_markov::{ChainParams, LoadChain};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("chain-build");
    g.sample_size(10);
    for &(m, p_max) in &[(4usize, 2u64), (5, 2), (5, 4), (6, 2)] {
        let params = ChainParams::paper_total(m, p_max);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("m{m}-p{p_max}")),
            &params,
            |b, &params| b.iter(|| black_box(LoadChain::build(params))),
        );
    }
    g.finish();
}

fn bench_stationary(c: &mut Criterion) {
    let mut g = c.benchmark_group("stationary");
    g.sample_size(10);
    for &(m, p_max) in &[(4usize, 2u64), (5, 4)] {
        let chain = LoadChain::build(ChainParams::paper_total(m, p_max));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("m{m}-p{p_max}-{}states", chain.num_states())),
            &chain,
            |b, chain| b.iter(|| black_box(chain.stationary(1e-10, 1_000_000))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_build, bench_stationary);
criterion_main!(benches);
