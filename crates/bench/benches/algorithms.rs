//! Criterion microbenchmarks of the core algorithms.
//!
//! Covers the costs a runtime system would actually pay: one CLB2C pass
//! (centralized reference), one pairwise DLB2C exchange (the decentralized
//! inner loop), the baselines, and the lower-bound computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lb_core::baselines::{ect_in_order, lpt_schedule};
use lb_core::{clb2c, Dlb2cBalance, PairwiseBalancer};
use lb_model::bounds::combined_lower_bound;
use lb_model::prelude::*;
use lb_workloads::initial::random_assignment;
use lb_workloads::two_cluster::paper_two_cluster;
use std::hint::black_box;

fn bench_clb2c(c: &mut Criterion) {
    let mut g = c.benchmark_group("clb2c");
    for &(m1, m2, jobs) in &[(64usize, 32usize, 768usize), (512, 256, 6144)] {
        let inst = paper_two_cluster(m1, m2, jobs, 1);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{m1}+{m2}x{jobs}")),
            &inst,
            |b, inst| b.iter(|| black_box(clb2c(inst).expect("two-cluster"))),
        );
    }
    g.finish();
}

fn bench_pairwise_exchange(c: &mut Criterion) {
    let mut g = c.benchmark_group("dlb2c-pair-exchange");
    for &jobs in &[768usize, 6144] {
        let inst = paper_two_cluster(64, 32, jobs, 2);
        let asg = random_assignment(&inst, 3);
        // One inter-cluster and one intra-cluster exchange per iteration;
        // clone to keep the workload identical across iterations.
        g.bench_with_input(BenchmarkId::from_parameter(jobs), &(), |b, ()| {
            b.iter(|| {
                let mut a = asg.clone();
                Dlb2cBalance.balance(&inst, &mut a, MachineId(0), MachineId(70));
                Dlb2cBalance.balance(&inst, &mut a, MachineId(0), MachineId(1));
                black_box(a.makespan())
            })
        });
    }
    g.finish();
}

fn bench_extended_algorithms(c: &mut Criterion) {
    use lb_core::baselines::d_choices_schedule;
    use lb_core::local_search::{local_search_schedule, LocalSearchLimits};
    let inst = paper_two_cluster(16, 8, 192, 9);
    let mut g = c.benchmark_group("extended");
    g.sample_size(20);
    g.bench_function("local-search-192", |b| {
        b.iter(|| black_box(local_search_schedule(&inst, LocalSearchLimits::default())))
    });
    g.bench_function("d-choices-2-192", |b| {
        b.iter(|| black_box(d_choices_schedule(&inst, 2, 5)))
    });
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let inst = paper_two_cluster(64, 32, 768, 4);
    c.bench_function("ect-list-schedule-768", |b| {
        b.iter(|| black_box(ect_in_order(&inst)))
    });
    c.bench_function("lpt-schedule-768", |b| {
        b.iter(|| black_box(lpt_schedule(&inst)))
    });
    c.bench_function("combined-lower-bound-768", |b| {
        b.iter(|| black_box(combined_lower_bound(&inst)))
    });
}

criterion_group!(
    benches,
    bench_clb2c,
    bench_pairwise_exchange,
    bench_baselines,
    bench_extended_algorithms
);
criterion_main!(benches);
