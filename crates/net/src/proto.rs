//! The transport-independent protocol body.
//!
//! Everything the paper's pairwise-exchange protocol *does* — probe a
//! peer, offer, accept, run the two-phase prepare/commit transfer,
//! retry with capped backoff, recover from every lost message through
//! epoch-guarded timers — lives here as free functions over an
//! [`Agent`] plus a [`ProtoCtx`]. The context supplies what differs
//! between hosts:
//!
//! * the **deterministic simulator** ([`crate::sim::NetSim`]) drives
//!   every agent of the fleet in one process against the virtual-time
//!   event queue and a *shared* assignment, with all randomness on the
//!   run's single RNG stream — byte-identical to the pre-extraction
//!   engine;
//! * a **daemon node** ([`crate::node::NodeRuntime`]) drives one agent
//!   over a real [`crate::transport::Transport`] (TCP sockets, real
//!   clocks), owns only its local job custody, and plans exchanges
//!   against the peer's job snapshot shipped in [`Msg::Accept`].
//!
//! The handlers are strictly **per-agent**: a message or timer only
//! ever mutates the receiving agent; every cross-machine effect goes
//! through [`ProtoCtx::send`] or through the context's state hooks.
//! That property is what lets one body serve both a fleet-in-a-process
//! simulator and a process-per-machine daemon (the holochain
//! "switchboard" pattern: one protocol, swappable networks).
//!
//! # Policy hooks
//!
//! Two deliberate behavioral knobs are context policy, not body logic,
//! because shared-state and distributed custody want different answers:
//!
//! * [`ProtoCtx::unmatched_commit_acks`] — what a target answers to a
//!   `Commit` that matches no pending intent. The simulator re-acks
//!   unconditionally (custody lives in the shared assignment, so a
//!   false positive cannot diverge state). A daemon acks only serials
//!   it *actually applied* and disclaims the rest with `Reject`, so an
//!   initiator never applies its half of an exchange the target threw
//!   away at lease expiry.
//! * [`ProtoCtx::reject_aborts_commit`] — whether a `Reject` that
//!   arrives while awaiting `Ack` aborts the exchange unapplied. Off in
//!   the simulator (preserving the historical interleaving behavior),
//!   on in daemons (it is the disclaim path above).

use crate::agent::{Agent, AgentState, TransferIntent};
use crate::msg::{Envelope, Msg, ReqId, TransferPlan};
use lb_model::prelude::*;

/// Host services the protocol body runs against. See the module docs
/// for the two implementations and the policy hooks.
pub trait ProtoCtx {
    /// Hands a message to the network (the impl decides fate: latency,
    /// loss, framing — the body never assumes delivery).
    fn send(&mut self, from: MachineId, to: MachineId, msg: Msg, req: ReqId);
    /// Arms a timer for `machine` after `delay` ticks, tagged with the
    /// agent epoch that must still be current when it fires.
    fn schedule_timer(&mut self, machine: MachineId, delay: u64, epoch: u64);

    /// Timeout for retry attempt `attempt` (capped exponential backoff).
    fn timeout_for(&self, attempt: u32) -> u64;
    /// How long an accepting target holds its exchange lease.
    fn lease(&self) -> u64;
    /// Retry budget for a request phase. `committed` distinguishes the
    /// commit phase: a daemon stretches it (the target may already have
    /// applied), the simulator keeps one budget for all phases.
    fn retry_budget(&self, committed: bool) -> u32;

    /// Length of the next idle think pause (randomized to break
    /// phase-lock livelock; see [`go_idle`]).
    fn idle_pause(&mut self) -> u64;
    /// Picks the peer for a fresh exchange attempt, or `None` when no
    /// peer is currently available — in which case the context itself
    /// decides whether to re-arm the wake (`epoch` tags it) or wind the
    /// run down.
    fn pick_peer(&mut self, me: MachineId, epoch: u64) -> Option<MachineId>;

    /// This machine's current load (what `ProbeResponse` reports).
    fn local_load(&self, me: MachineId) -> Time;
    /// The job snapshot an accepting target ships in [`Msg::Accept`] so
    /// the initiator can plan the pair. The simulator returns an empty
    /// vector (its planner reads the shared assignment directly); a
    /// daemon returns its local holding.
    fn engage_snapshot(&mut self, me: MachineId) -> Vec<JobId>;
    /// Computes the exchange plan for `(me, peer)`. `peer_jobs` is the
    /// snapshot from the peer's `Accept` (ignored by the simulator).
    fn plan_moves(&mut self, me: MachineId, peer: MachineId, peer_jobs: &[JobId]) -> TransferPlan;
    /// Applies a committed plan on the target side; returns
    /// `(any move applied, moves applied)`. `peer`/`serial` identify
    /// the exchange so a daemon can remember which serials it actually
    /// applied (the memory behind
    /// [`ProtoCtx::unmatched_commit_acks`]).
    fn apply_plan(
        &mut self,
        me: MachineId,
        peer: MachineId,
        serial: u64,
        plan: &TransferPlan,
    ) -> (bool, u64);

    /// Whether a `Commit` matching no pending intent is re-acked
    /// (`true`, the simulator's shared-state answer) or disclaimed with
    /// `Reject` (`false` from a daemon that never applied the serial).
    fn unmatched_commit_acks(&mut self, me: MachineId, from: MachineId, serial: u64) -> bool {
        let _ = (me, from, serial);
        true
    }
    /// Whether a matching `Reject` while awaiting `Ack` aborts the
    /// exchange unapplied (daemon) or is ignored (simulator).
    fn reject_aborts_commit(&self) -> bool {
        false
    }
    /// The initiator's `Ack` arrived: the target has applied `plan`.
    /// Daemons apply their own half of the exchange here; the simulator
    /// already applied everything target-side.
    fn on_commit_acked(&mut self, me: MachineId, plan: &TransferPlan) {
        let _ = (me, plan);
    }
    /// The target disclaimed a committed exchange (see
    /// [`ProtoCtx::reject_aborts_commit`]); nothing was applied on
    /// either side.
    fn on_commit_disclaimed(&mut self, me: MachineId, peer: MachineId, serial: u64) {
        let _ = (me, peer, serial);
    }

    /// A phase timed out (`attempt` retries so far; 0 for a lease
    /// expiry) — observability only.
    fn on_timeout(&mut self, agent: MachineId, peer: MachineId, attempt: u32);
    /// A target applied a commit: the exchange completed.
    fn on_complete(&mut self, initiator: MachineId, target: MachineId, changed: bool, moved: u64);
}

/// Returns the agent to `Idle` and arms its next initiation wake.
///
/// The pause is randomized rather than fixed: with constant latencies a
/// fixed pause makes every agent's probe/offer/reject cycle exactly
/// periodic, and an unlucky initial phase alignment then rejects
/// *every* offer forever (a lockstep livelock the first smoke test
/// actually hit). Randomizing the pause drifts the phases apart, so
/// accept windows always reopen.
pub fn go_idle<C: ProtoCtx>(agent: &mut Agent, me: MachineId, ctx: &mut C) {
    let epoch = agent.transition(AgentState::Idle);
    let pause = ctx.idle_pause();
    ctx.schedule_timer(me, pause, epoch);
}

/// An agent timer fired (its epoch already validated by the driver):
/// the agent's state decides whether this is an initiation wake, a
/// request timeout, or an exchange-lease expiry.
pub fn on_timer<C: ProtoCtx>(agent: &mut Agent, me: MachineId, ctx: &mut C) {
    match agent.state {
        AgentState::Idle => initiate(agent, me, ctx),
        AgentState::AwaitProbe { peer, attempt, .. } => {
            on_request_timeout(agent, me, peer, attempt, Msg::ProbeRequest, ctx);
        }
        AgentState::AwaitAccept { peer, attempt, .. } => {
            on_request_timeout(agent, me, peer, attempt, Msg::Offer, ctx);
        }
        AgentState::AwaitPrepared {
            peer,
            serial,
            attempt,
        } => {
            on_intent_timeout(agent, me, peer, serial, attempt, false, ctx);
        }
        AgentState::AwaitAck {
            peer,
            serial,
            attempt,
        } => {
            on_intent_timeout(agent, me, peer, serial, attempt, true, ctx);
        }
        AgentState::Engaged { peer, .. } => {
            // The initiator went quiet: release the lease so the
            // machine can exchange again, discarding any prepared but
            // never-committed intent — the crash-safety rule that lets
            // an initiator die between Prepare and Commit without
            // stranding custody.
            ctx.on_timeout(me, peer, 0);
            agent.intent = None;
            go_idle(agent, me, ctx);
        }
        AgentState::Offline => {}
    }
}

/// An idle agent's wake fired: probe a peer (if the context can name
/// one).
pub fn initiate<C: ProtoCtx>(agent: &mut Agent, me: MachineId, ctx: &mut C) {
    let Some(peer) = ctx.pick_peer(me, agent.epoch) else {
        return; // the context re-armed the wake or is winding down
    };
    let serial = agent.fresh_serial();
    let req = ReqId { origin: me, serial };
    let epoch = agent.transition(AgentState::AwaitProbe {
        peer,
        serial,
        attempt: 0,
    });
    ctx.send(me, peer, Msg::ProbeRequest, req);
    ctx.schedule_timer(me, ctx.timeout_for(0), epoch);
}

/// A request timed out: retry the phase with a fresh serial under
/// backoff, or give up once the retry budget is spent.
fn on_request_timeout<C: ProtoCtx>(
    agent: &mut Agent,
    me: MachineId,
    peer: MachineId,
    attempt: u32,
    resend: Msg,
    ctx: &mut C,
) {
    ctx.on_timeout(me, peer, attempt);
    if attempt >= ctx.retry_budget(false) {
        go_idle(agent, me, ctx);
        return;
    }
    let next_attempt = attempt + 1;
    let serial = agent.fresh_serial();
    let req = ReqId { origin: me, serial };
    let state = match resend {
        Msg::ProbeRequest => AgentState::AwaitProbe {
            peer,
            serial,
            attempt: next_attempt,
        },
        _ => AgentState::AwaitAccept {
            peer,
            serial,
            attempt: next_attempt,
        },
    };
    let epoch = agent.transition(state);
    ctx.send(me, peer, resend, req);
    ctx.schedule_timer(me, ctx.timeout_for(next_attempt), epoch);
}

/// A `Prepare` or `Commit` went unanswered. Unlike the probe/offer
/// phases these re-send the logged intent under the **same** serial —
/// they continue one exchange, they do not open a new conversation.
/// Once the retry budget is spent the initiator drops the intent and
/// idles: nothing was applied on this side, and the target either never
/// prepared (nothing to undo) or will release its lease (un-committed
/// intent discarded) or has applied the commit (it owns the result) —
/// jobs are conserved in every case.
fn on_intent_timeout<C: ProtoCtx>(
    agent: &mut Agent,
    me: MachineId,
    peer: MachineId,
    serial: u64,
    attempt: u32,
    committed: bool,
    ctx: &mut C,
) {
    ctx.on_timeout(me, peer, attempt);
    if attempt >= ctx.retry_budget(committed) {
        agent.intent = None;
        go_idle(agent, me, ctx);
        return;
    }
    let next_attempt = attempt + 1;
    let resend = if committed {
        Msg::Commit
    } else {
        let Some(intent) = agent.intent_matching(peer, serial) else {
            // Intent lost (cannot normally happen): abandon cleanly.
            go_idle(agent, me, ctx);
            return;
        };
        Msg::Prepare {
            plan: intent.plan.clone(),
        }
    };
    let state = if committed {
        AgentState::AwaitAck {
            peer,
            serial,
            attempt: next_attempt,
        }
    } else {
        AgentState::AwaitPrepared {
            peer,
            serial,
            attempt: next_attempt,
        }
    };
    let epoch = agent.transition(state);
    let req = ReqId { origin: me, serial };
    ctx.send(me, peer, resend, req);
    ctx.schedule_timer(me, ctx.timeout_for(next_attempt), epoch);
}

/// A message was delivered to `me` (the driver has already validated
/// addressing and, for daemons, decoded and sanity-checked the frame).
pub fn on_msg<C: ProtoCtx>(agent: &mut Agent, me: MachineId, env: Envelope, ctx: &mut C) {
    match env.msg {
        Msg::ProbeRequest => {
            // Load queries are stateless: answer whatever we're doing.
            let load = ctx.local_load(me);
            ctx.send(me, env.from, Msg::ProbeResponse { load }, env.req);
        }
        Msg::ProbeResponse { .. } => {
            let AgentState::AwaitProbe { peer, serial, .. } = agent.state else {
                return;
            };
            if env.from != peer || env.req.origin != me || env.req.serial != serial {
                return; // stale or duplicated response
            }
            // The peer answered: propose the exchange. The offer keeps
            // the conversation's ReqId; the retry budget restarts for
            // the new phase.
            let epoch = agent.transition(AgentState::AwaitAccept {
                peer,
                serial,
                attempt: 0,
            });
            ctx.send(me, peer, Msg::Offer, env.req);
            ctx.schedule_timer(me, ctx.timeout_for(0), epoch);
        }
        Msg::Offer => {
            if agent.accepts_offer_from(env.from) {
                // A *new* conversation invalidates any intent left from
                // an older serial with the same peer; a re-offer of the
                // current conversation keeps its prepared intent.
                if agent.intent_matching(env.from, env.req.serial).is_none() {
                    agent.intent = None;
                }
                let jobs = ctx.engage_snapshot(me);
                let epoch = agent.transition(AgentState::Engaged {
                    peer: env.from,
                    serial: env.req.serial,
                });
                ctx.send(me, env.from, Msg::Accept { jobs }, env.req);
                ctx.schedule_timer(me, ctx.lease(), epoch);
            } else {
                ctx.send(me, env.from, Msg::Reject, env.req);
            }
        }
        Msg::Accept { jobs } => {
            let AgentState::AwaitAccept { peer, serial, .. } = agent.state else {
                return;
            };
            if env.from != peer || env.req.origin != me || env.req.serial != serial {
                return; // stale accept; the sender's lease will expire
            }
            // Phase one: compute the plan, log the intent, ship it.
            // Nothing is applied yet on either side. An *empty* plan
            // still runs the full handshake so the completed exchange
            // is counted on the target — quiescence detection counts
            // completed no-op exchanges.
            let plan = ctx.plan_moves(me, peer, &jobs);
            agent.intent = Some(TransferIntent {
                peer,
                serial,
                plan: plan.clone(),
                committed: false,
            });
            let epoch = agent.transition(AgentState::AwaitPrepared {
                peer,
                serial,
                attempt: 0,
            });
            ctx.send(me, peer, Msg::Prepare { plan }, env.req);
            ctx.schedule_timer(me, ctx.timeout_for(0), epoch);
        }
        Msg::Reject => match agent.state {
            AgentState::AwaitAccept { peer, serial, .. }
                if env.from == peer && env.req.origin == me && env.req.serial == serial =>
            {
                go_idle(agent, me, ctx);
            }
            AgentState::AwaitAck { peer, serial, .. }
                if ctx.reject_aborts_commit()
                    && env.from == peer
                    && env.req.origin == me
                    && env.req.serial == serial =>
            {
                // The target disclaimed the serial: it never applied
                // (its lease expired before the commit landed), so the
                // exchange aborts with nothing applied on either side.
                agent.intent = None;
                ctx.on_commit_disclaimed(me, peer, serial);
                go_idle(agent, me, ctx);
            }
            _ => {}
        },
        Msg::Prepare { plan } => {
            // Target side: log the intent and hold it under the lease.
            // Only an engaged target for exactly this conversation
            // prepares; otherwise the lease has expired and the
            // initiator's Prepare retries will too.
            let AgentState::Engaged { peer, serial } = agent.state else {
                return;
            };
            if env.from != peer || env.req.serial != serial {
                return;
            }
            agent.intent = Some(TransferIntent {
                peer,
                serial,
                plan,
                committed: false,
            });
            // Re-arm the lease: the clock protects the *prepared*
            // intent now.
            let epoch = agent.transition(AgentState::Engaged { peer, serial });
            ctx.send(me, peer, Msg::Prepared, env.req);
            ctx.schedule_timer(me, ctx.lease(), epoch);
        }
        Msg::Prepared => {
            let AgentState::AwaitPrepared { peer, serial, .. } = agent.state else {
                return; // duplicate or stale
            };
            if env.from != peer || env.req.origin != me || env.req.serial != serial {
                return;
            }
            // Phase two: the target holds the plan durably — commit.
            // From here on the exchange may have been applied, so the
            // intent is marked committed and only resolves forward.
            if let Some(intent) = agent.intent.as_mut() {
                intent.committed = true;
            }
            let epoch = agent.transition(AgentState::AwaitAck {
                peer,
                serial,
                attempt: 0,
            });
            ctx.send(me, peer, Msg::Commit, env.req);
            ctx.schedule_timer(me, ctx.timeout_for(0), epoch);
        }
        Msg::Commit => {
            // Target side: apply the prepared intent exactly once.
            if agent.intent_matching(env.from, env.req.serial).is_some() {
                let Some(intent) = agent.intent.take() else {
                    return; // unreachable: matched above
                };
                let (changed, jobs_moved) =
                    ctx.apply_plan(me, env.from, env.req.serial, &intent.plan);
                ctx.send(me, env.from, Msg::Ack, env.req);
                go_idle(agent, me, ctx);
                ctx.on_complete(env.from, me, changed, jobs_moved);
            } else if ctx.unmatched_commit_acks(me, env.from, env.req.serial) {
                // No pending intent: this commit was already applied
                // (duplicate / retry after a lost Ack). Re-ack
                // idempotently; never re-apply.
                ctx.send(me, env.from, Msg::Ack, env.req);
            } else {
                // The context cannot vouch the serial was ever applied
                // (daemon whose lease discarded the intent): disclaim,
                // so the initiator aborts instead of applying its half
                // of an exchange that never happened.
                ctx.send(me, env.from, Msg::Reject, env.req);
            }
        }
        Msg::Ack => {
            let AgentState::AwaitAck { peer, serial, .. } = agent.state else {
                return; // stale ack (already resolved)
            };
            if env.from != peer || env.req.origin != me || env.req.serial != serial {
                return;
            }
            // The exchange is fully resolved on the target; apply the
            // initiator's half (daemon contexts) and forget the intent.
            if let Some(intent) = agent.intent.take() {
                ctx.on_commit_acked(me, &intent.plan);
            }
            go_idle(agent, me, ctx);
        }
    }
}
