//! Wire messages: payloads, request correlation, envelopes.
//!
//! Agents correlate every in-flight conversation with a [`ReqId`] —
//! `(origin, serial)` where `serial` is the origin's private counter.
//! A response only acts on the receiver when the receiver is waiting on
//! exactly that id, which is what makes duplicated and late messages
//! harmless: a stale `Accept` after the initiator gave up, or the second
//! copy of a duplicated `ProbeResponse`, matches nothing and is ignored.
//!
//! Job transfers commit in **two phases**. The initiator never applies a
//! plan unilaterally: it sends the explicit move list in
//! [`Msg::Prepare`], the target persists it as a pending intent and
//! answers [`Msg::Prepared`], and only [`Msg::Commit`] makes the target
//! apply the moves (acknowledged with [`Msg::Ack`]). A crash on either
//! side between any two of these messages leaves every job owned by
//! exactly one machine: un-committed intents are discarded when the
//! target's lease expires, and the initiator keeps custody of its jobs
//! until the target has durably committed. `Prepare` and `Commit`
//! retries reuse the *same* serial — they re-send an existing intent,
//! they do not open a new conversation — and a duplicate `Commit` is
//! answered with an idempotent `Ack`.
//!
//! The payload kinds mirror [`lb_distsim::MsgKind`] one-to-one (probes
//! count traffic by that enum without depending on this crate); the
//! mapping is [`Msg::kind`] and `tests` pin it.

use lb_distsim::MsgKind;
use lb_model::prelude::*;

/// Correlates a request with its responses across the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReqId {
    /// The machine that started the conversation (the exchange
    /// initiator).
    pub origin: MachineId,
    /// The origin's private monotone counter. Probe/offer retries use a
    /// fresh serial, so responses to an abandoned attempt cannot be
    /// confused with the retry's; `Prepare`/`Commit` retries reuse the
    /// serial of the intent they re-send.
    pub serial: u64,
}

/// One job movement of a transfer plan: move `job` from `from` to `to`.
///
/// The `from` machine is recorded so a commit can be applied *guarded*:
/// if the job is no longer on `from` when the `Commit` arrives (a
/// reclamation raced the exchange), that move is skipped rather than
/// stealing the job from its new owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobMove {
    /// The job to move.
    pub job: JobId,
    /// The machine expected to own the job at commit time.
    pub from: MachineId,
    /// The destination machine.
    pub to: MachineId,
}

/// The explicit move list of one pairwise exchange, computed by the
/// initiator's balancer and shipped in [`Msg::Prepare`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransferPlan {
    /// The moves, in application order.
    pub moves: Vec<JobMove>,
}

impl TransferPlan {
    /// True when the exchange moves no jobs (the pair was already
    /// balanced). Empty plans still run the full
    /// prepare/commit handshake so both sides agree the exchange
    /// happened — quiescence detection counts on it.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// A message payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// "How loaded are you?" — opens an exchange attempt.
    ProbeRequest,
    /// The queried machine's load at response time (stale by one network
    /// latency when it arrives — the staleness the paper's
    /// instantaneous-gossip model ignores).
    ProbeResponse {
        /// The responder's load when it answered.
        load: Time,
    },
    /// The initiator proposes a pairwise exchange.
    Offer,
    /// The target locks itself to this exchange (it will reject other
    /// offers until the exchange completes or its lease expires).
    Accept {
        /// The target's job holding at accept time, so an initiator that
        /// cannot see the target's state (a daemon over real sockets)
        /// can plan the pair. The simulator leaves it empty — its
        /// planner reads the shared assignment directly.
        jobs: Vec<JobId>,
    },
    /// The target is busy with another exchange; the initiator gives up
    /// this attempt.
    Reject,
    /// Phase one: the initiator ships the balancer's move list. The
    /// target records it as a pending intent and answers
    /// [`Msg::Prepared`] without applying anything.
    Prepare {
        /// The moves this exchange will apply on commit.
        plan: TransferPlan,
    },
    /// The target holds the prepared intent and re-armed its lease; the
    /// initiator may now commit.
    Prepared,
    /// Phase two: apply the prepared intent. The target applies the
    /// guarded moves, releases its lease, and answers [`Msg::Ack`]. A
    /// `Commit` for an already-applied intent is re-acknowledged
    /// idempotently.
    Commit,
    /// The target applied (or had already applied) the commit; the
    /// initiator forgets the intent and goes idle.
    Ack,
}

impl Msg {
    /// The wire-level kind, for probe accounting.
    pub fn kind(&self) -> MsgKind {
        match self {
            Msg::ProbeRequest => MsgKind::ProbeRequest,
            Msg::ProbeResponse { .. } => MsgKind::ProbeResponse,
            Msg::Offer => MsgKind::Offer,
            Msg::Accept { .. } => MsgKind::Accept,
            Msg::Reject => MsgKind::Reject,
            Msg::Prepare { .. } => MsgKind::Prepare,
            Msg::Prepared => MsgKind::Prepared,
            Msg::Commit => MsgKind::Commit,
            Msg::Ack => MsgKind::Ack,
        }
    }
}

/// A message in flight: payload plus addressing and correlation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending machine.
    pub from: MachineId,
    /// Destination machine.
    pub to: MachineId,
    /// The conversation this message belongs to.
    pub req: ReqId,
    /// The payload.
    pub msg: Msg,
    /// Virtual send time (delivery time minus sampled latency).
    pub sent_at: u64,
}

impl TransferPlan {
    /// Validates a plan that crossed a trust boundary (arrived over a
    /// real socket): every id in range and every job mentioned at most
    /// once. The simulator never calls this — its plans are
    /// constructed, not received — but a daemon must, because acting on
    /// a hostile plan would corrupt custody instead of merely wasting
    /// an exchange.
    pub fn validate(&self, num_machines: usize, num_jobs: usize) -> Result<()> {
        let mut seen = vec![false; num_jobs];
        for mv in &self.moves {
            if mv.job.idx() >= num_jobs {
                return Err(LbError::MalformedMessage {
                    reason: format!("plan moves job {} out of range {num_jobs}", mv.job.idx()),
                });
            }
            if mv.from.idx() >= num_machines || mv.to.idx() >= num_machines {
                return Err(LbError::MalformedMessage {
                    reason: format!(
                        "plan move of job {} names machine out of range {num_machines}",
                        mv.job.idx()
                    ),
                });
            }
            if seen[mv.job.idx()] {
                return Err(LbError::MalformedMessage {
                    reason: format!("plan moves job {} twice", mv.job.idx()),
                });
            }
            seen[mv.job.idx()] = true;
        }
        Ok(())
    }
}

impl Envelope {
    /// Validates an envelope that crossed a trust boundary: addressing
    /// in range, sender not talking to itself, and any carried job ids
    /// or plans well-formed. Drivers fed from a wire *count and drop*
    /// envelopes failing this instead of handing them to the protocol
    /// body (see [`crate::proto`]); the deterministic simulator skips
    /// it because it only delivers envelopes it built itself.
    pub fn validate(&self, num_machines: usize, num_jobs: usize) -> Result<()> {
        let bad_machine = |machine: MachineId| LbError::MalformedMessage {
            reason: format!(
                "envelope names machine {} out of range {num_machines}",
                machine.idx()
            ),
        };
        if self.from.idx() >= num_machines {
            return Err(bad_machine(self.from));
        }
        if self.to.idx() >= num_machines {
            return Err(bad_machine(self.to));
        }
        if self.from == self.to {
            return Err(LbError::MalformedMessage {
                reason: format!("machine {} sent to itself", self.from.idx()),
            });
        }
        if self.req.origin.idx() >= num_machines {
            return Err(bad_machine(self.req.origin));
        }
        match &self.msg {
            Msg::Accept { jobs } => {
                for &j in jobs {
                    if j.idx() >= num_jobs {
                        return Err(LbError::MalformedMessage {
                            reason: format!(
                                "accept snapshot names job {} out of range {num_jobs}",
                                j.idx()
                            ),
                        });
                    }
                }
                Ok(())
            }
            Msg::Prepare { plan } => plan.validate(num_machines, num_jobs),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_one_to_one() {
        let msgs = [
            Msg::ProbeRequest,
            Msg::ProbeResponse { load: 3 },
            Msg::Offer,
            Msg::Accept { jobs: Vec::new() },
            Msg::Reject,
            Msg::Prepare {
                plan: TransferPlan::default(),
            },
            Msg::Prepared,
            Msg::Commit,
            Msg::Ack,
        ];
        let mut idxs: Vec<usize> = msgs.iter().map(|m| m.kind().idx()).collect();
        idxs.sort_unstable();
        assert_eq!(idxs, (0..MsgKind::COUNT).collect::<Vec<_>>());
    }

    fn env(msg: Msg) -> Envelope {
        Envelope {
            from: MachineId(0),
            to: MachineId(1),
            req: ReqId {
                origin: MachineId(0),
                serial: 1,
            },
            msg,
            sent_at: 0,
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(env(Msg::ProbeRequest).validate(2, 4).is_ok());
        assert!(env(Msg::Accept {
            jobs: vec![JobId::from_idx(0), JobId::from_idx(3)],
        })
        .validate(2, 4)
        .is_ok());
        let plan = TransferPlan {
            moves: vec![JobMove {
                job: JobId::from_idx(2),
                from: MachineId(0),
                to: MachineId(1),
            }],
        };
        assert!(env(Msg::Prepare { plan }).validate(2, 4).is_ok());
    }

    #[test]
    fn validate_rejects_bad_addressing() {
        let mut e = env(Msg::ProbeRequest);
        e.from = MachineId(9);
        assert!(matches!(
            e.validate(2, 4),
            Err(LbError::MalformedMessage { .. })
        ));
        let mut e = env(Msg::ProbeRequest);
        e.to = e.from;
        assert!(matches!(
            e.validate(2, 4),
            Err(LbError::MalformedMessage { .. })
        ));
        let mut e = env(Msg::ProbeRequest);
        e.req.origin = MachineId(7);
        assert!(matches!(
            e.validate(2, 4),
            Err(LbError::MalformedMessage { .. })
        ));
    }

    #[test]
    fn validate_rejects_out_of_range_snapshot() {
        let e = env(Msg::Accept {
            jobs: vec![JobId::from_idx(99)],
        });
        assert!(matches!(
            e.validate(2, 4),
            Err(LbError::MalformedMessage { .. })
        ));
    }

    #[test]
    fn validate_rejects_hostile_plans() {
        let mv = |job: usize, from: usize, to: usize| JobMove {
            job: JobId::from_idx(job),
            from: MachineId::from_idx(from),
            to: MachineId::from_idx(to),
        };
        // Job out of range.
        let plan = TransferPlan {
            moves: vec![mv(99, 0, 1)],
        };
        assert!(plan.validate(2, 4).is_err());
        // Machine out of range.
        let plan = TransferPlan {
            moves: vec![mv(0, 0, 9)],
        };
        assert!(plan.validate(2, 4).is_err());
        // Duplicate job (would double-apply at commit).
        let plan = TransferPlan {
            moves: vec![mv(1, 0, 1), mv(1, 1, 0)],
        };
        assert!(plan.validate(2, 4).is_err());
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(TransferPlan::default().is_empty());
        let plan = TransferPlan {
            moves: vec![JobMove {
                job: JobId::from_idx(0),
                from: MachineId(0),
                to: MachineId(1),
            }],
        };
        assert!(!plan.is_empty());
    }
}
