//! Wire messages: payloads, request correlation, envelopes.
//!
//! Agents correlate every in-flight conversation with a [`ReqId`] —
//! `(origin, serial)` where `serial` is the origin's private counter.
//! A response only acts on the receiver when the receiver is waiting on
//! exactly that id, which is what makes duplicated and late messages
//! harmless: a stale `Accept` after the initiator gave up, or the second
//! copy of a duplicated `ProbeResponse`, matches nothing and is ignored.
//!
//! Job transfers commit in **two phases**. The initiator never applies a
//! plan unilaterally: it sends the explicit move list in
//! [`Msg::Prepare`], the target persists it as a pending intent and
//! answers [`Msg::Prepared`], and only [`Msg::Commit`] makes the target
//! apply the moves (acknowledged with [`Msg::Ack`]). A crash on either
//! side between any two of these messages leaves every job owned by
//! exactly one machine: un-committed intents are discarded when the
//! target's lease expires, and the initiator keeps custody of its jobs
//! until the target has durably committed. `Prepare` and `Commit`
//! retries reuse the *same* serial — they re-send an existing intent,
//! they do not open a new conversation — and a duplicate `Commit` is
//! answered with an idempotent `Ack`.
//!
//! The payload kinds mirror [`lb_distsim::MsgKind`] one-to-one (probes
//! count traffic by that enum without depending on this crate); the
//! mapping is [`Msg::kind`] and `tests` pin it.

use lb_distsim::MsgKind;
use lb_model::prelude::*;

/// Correlates a request with its responses across the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReqId {
    /// The machine that started the conversation (the exchange
    /// initiator).
    pub origin: MachineId,
    /// The origin's private monotone counter. Probe/offer retries use a
    /// fresh serial, so responses to an abandoned attempt cannot be
    /// confused with the retry's; `Prepare`/`Commit` retries reuse the
    /// serial of the intent they re-send.
    pub serial: u64,
}

/// One job movement of a transfer plan: move `job` from `from` to `to`.
///
/// The `from` machine is recorded so a commit can be applied *guarded*:
/// if the job is no longer on `from` when the `Commit` arrives (a
/// reclamation raced the exchange), that move is skipped rather than
/// stealing the job from its new owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobMove {
    /// The job to move.
    pub job: JobId,
    /// The machine expected to own the job at commit time.
    pub from: MachineId,
    /// The destination machine.
    pub to: MachineId,
}

/// The explicit move list of one pairwise exchange, computed by the
/// initiator's balancer and shipped in [`Msg::Prepare`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransferPlan {
    /// The moves, in application order.
    pub moves: Vec<JobMove>,
}

impl TransferPlan {
    /// True when the exchange moves no jobs (the pair was already
    /// balanced). Empty plans still run the full
    /// prepare/commit handshake so both sides agree the exchange
    /// happened — quiescence detection counts on it.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// A message payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// "How loaded are you?" — opens an exchange attempt.
    ProbeRequest,
    /// The queried machine's load at response time (stale by one network
    /// latency when it arrives — the staleness the paper's
    /// instantaneous-gossip model ignores).
    ProbeResponse {
        /// The responder's load when it answered.
        load: Time,
    },
    /// The initiator proposes a pairwise exchange.
    Offer,
    /// The target locks itself to this exchange (it will reject other
    /// offers until the exchange completes or its lease expires).
    Accept,
    /// The target is busy with another exchange; the initiator gives up
    /// this attempt.
    Reject,
    /// Phase one: the initiator ships the balancer's move list. The
    /// target records it as a pending intent and answers
    /// [`Msg::Prepared`] without applying anything.
    Prepare {
        /// The moves this exchange will apply on commit.
        plan: TransferPlan,
    },
    /// The target holds the prepared intent and re-armed its lease; the
    /// initiator may now commit.
    Prepared,
    /// Phase two: apply the prepared intent. The target applies the
    /// guarded moves, releases its lease, and answers [`Msg::Ack`]. A
    /// `Commit` for an already-applied intent is re-acknowledged
    /// idempotently.
    Commit,
    /// The target applied (or had already applied) the commit; the
    /// initiator forgets the intent and goes idle.
    Ack,
}

impl Msg {
    /// The wire-level kind, for probe accounting.
    pub fn kind(&self) -> MsgKind {
        match self {
            Msg::ProbeRequest => MsgKind::ProbeRequest,
            Msg::ProbeResponse { .. } => MsgKind::ProbeResponse,
            Msg::Offer => MsgKind::Offer,
            Msg::Accept => MsgKind::Accept,
            Msg::Reject => MsgKind::Reject,
            Msg::Prepare { .. } => MsgKind::Prepare,
            Msg::Prepared => MsgKind::Prepared,
            Msg::Commit => MsgKind::Commit,
            Msg::Ack => MsgKind::Ack,
        }
    }
}

/// A message in flight: payload plus addressing and correlation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending machine.
    pub from: MachineId,
    /// Destination machine.
    pub to: MachineId,
    /// The conversation this message belongs to.
    pub req: ReqId,
    /// The payload.
    pub msg: Msg,
    /// Virtual send time (delivery time minus sampled latency).
    pub sent_at: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_one_to_one() {
        let msgs = [
            Msg::ProbeRequest,
            Msg::ProbeResponse { load: 3 },
            Msg::Offer,
            Msg::Accept,
            Msg::Reject,
            Msg::Prepare {
                plan: TransferPlan::default(),
            },
            Msg::Prepared,
            Msg::Commit,
            Msg::Ack,
        ];
        let mut idxs: Vec<usize> = msgs.iter().map(|m| m.kind().idx()).collect();
        idxs.sort_unstable();
        assert_eq!(idxs, (0..MsgKind::COUNT).collect::<Vec<_>>());
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(TransferPlan::default().is_empty());
        let plan = TransferPlan {
            moves: vec![JobMove {
                job: JobId::from_idx(0),
                from: MachineId(0),
                to: MachineId(1),
            }],
        };
        assert!(!plan.is_empty());
    }
}
