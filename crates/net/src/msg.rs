//! Wire messages: payloads, request correlation, envelopes.
//!
//! Agents correlate every in-flight conversation with a [`ReqId`] —
//! `(origin, serial)` where `serial` is the origin's private counter.
//! A response only acts on the receiver when the receiver is waiting on
//! exactly that id, which is what makes duplicated and late messages
//! harmless: a stale `Accept` after the initiator gave up, or the second
//! copy of a duplicated `ProbeResponse`, matches nothing and is ignored.
//!
//! The payload kinds mirror [`lb_distsim::MsgKind`] one-to-one (probes
//! count traffic by that enum without depending on this crate); the
//! mapping is [`Msg::kind`] and `tests` pin it.

use lb_distsim::MsgKind;
use lb_model::prelude::*;

/// Correlates a request with its responses across the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReqId {
    /// The machine that started the conversation (the exchange
    /// initiator).
    pub origin: MachineId,
    /// The origin's private monotone counter. Every retry uses a fresh
    /// serial, so responses to an abandoned attempt cannot be confused
    /// with the retry's.
    pub serial: u64,
}

/// A message payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Msg {
    /// "How loaded are you?" — opens an exchange attempt.
    ProbeRequest,
    /// The queried machine's load at response time (stale by one network
    /// latency when it arrives — the staleness the paper's
    /// instantaneous-gossip model ignores).
    ProbeResponse {
        /// The responder's load when it answered.
        load: Time,
    },
    /// The initiator proposes a pairwise exchange.
    Offer,
    /// The target locks itself to this exchange (it will reject other
    /// offers until the matching [`Msg::Commit`] or its lease expires).
    Accept,
    /// The target is busy with another exchange; the initiator gives up
    /// this attempt.
    Reject,
    /// The initiator applied the exchange and releases the target.
    Commit,
}

impl Msg {
    /// The wire-level kind, for probe accounting.
    pub fn kind(self) -> MsgKind {
        match self {
            Msg::ProbeRequest => MsgKind::ProbeRequest,
            Msg::ProbeResponse { .. } => MsgKind::ProbeResponse,
            Msg::Offer => MsgKind::Offer,
            Msg::Accept => MsgKind::Accept,
            Msg::Reject => MsgKind::Reject,
            Msg::Commit => MsgKind::Commit,
        }
    }
}

/// A message in flight: payload plus addressing and correlation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope {
    /// Sending machine.
    pub from: MachineId,
    /// Destination machine.
    pub to: MachineId,
    /// The conversation this message belongs to.
    pub req: ReqId,
    /// The payload.
    pub msg: Msg,
    /// Virtual send time (delivery time minus sampled latency).
    pub sent_at: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_one_to_one() {
        let msgs = [
            Msg::ProbeRequest,
            Msg::ProbeResponse { load: 3 },
            Msg::Offer,
            Msg::Accept,
            Msg::Reject,
            Msg::Commit,
        ];
        let mut idxs: Vec<usize> = msgs.iter().map(|m| m.kind().idx()).collect();
        idxs.sort_unstable();
        assert_eq!(idxs, (0..MsgKind::COUNT).collect::<Vec<_>>());
    }
}
