//! Fault injection: message loss, duplication, link partitions, churn.
//!
//! A [`FaultPlan`] layers network-level faults on top of the machine-level
//! [`TopologyPlan`] the driver already understands:
//!
//! * **loss** — each message is dropped with `drop_permille / 1000`
//!   probability, decided at *send* time from the run's RNG stream (so
//!   the decision sequence, and with it the whole run, stays
//!   deterministic);
//! * **duplication** — each surviving message is sent twice with
//!   `dup_permille / 1000` probability, the copies taking independent
//!   latency samples (they may arrive out of order);
//! * **partitions** — timed [`LinkPartition`]s sever every link between
//!   two machine groups during a window; cross-partition sends are
//!   dropped at send time;
//! * **churn** — the embedded [`TopologyPlan`], whose event key is
//!   reinterpreted as *virtual time* (the net simulator has a clock,
//!   not rounds). A failing machine's jobs *park* on it under a custody
//!   lease (`NetConfig::job_lease_time`); survivors reclaim them only
//!   after the lease expires. How a rejoin behaves is the plan's
//!   [`CrashSemantics`]: crash-stop machines come back empty,
//!   crash-recovery machines that return within the lease keep their
//!   jobs and re-sync.

use lb_distsim::{TopologyEvent, TopologyPlan};
use lb_model::prelude::*;
use serde::{Deserialize, Serialize};

/// A timed severing of all links between machine groups `a` and `b`.
///
/// Messages between the groups (either direction) sent during
/// `[start, end)` are dropped; traffic within a group is unaffected.
/// Machines in neither group are unaffected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkPartition {
    /// First virtual time at which the partition holds.
    pub start: u64,
    /// First virtual time at which the partition no longer holds.
    pub end: u64,
    /// One side of the cut.
    pub a: Vec<MachineId>,
    /// The other side.
    pub b: Vec<MachineId>,
}

impl LinkPartition {
    /// True when a message `from -> to` sent at time `t` crosses this
    /// partition while it is active.
    pub fn severs(&self, t: u64, from: MachineId, to: MachineId) -> bool {
        if t < self.start || t >= self.end {
            return false;
        }
        (self.a.contains(&from) && self.b.contains(&to))
            || (self.b.contains(&from) && self.a.contains(&to))
    }
}

/// Machine-failure semantics: what a rejoin means for the jobs that
/// were parked on the machine when it failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CrashSemantics {
    /// A failed machine never returns as the same node; a rejoin is a
    /// fresh, empty machine. Jobs still parked at the rejoin are
    /// reclaimed by the *other* online machines.
    #[default]
    Stop,
    /// A failed machine may come back with its state intact: a rejoin
    /// *before* the custody lease expires cancels the reclamation and
    /// keeps the parked jobs (re-sync). After expiry it behaves like
    /// crash-stop.
    Recovery,
}

/// The full fault model of a run. [`FaultPlan::none`] (the default) is a
/// perfect network, under which the simulator reduces to a
/// latency-reordered gossip process.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-message drop probability in permille (0..=1000).
    pub drop_permille: u16,
    /// Per-message duplication probability in permille (0..=1000).
    pub dup_permille: u16,
    /// Timed link partitions.
    pub partitions: Vec<LinkPartition>,
    /// Machine fail/rejoin events keyed by **virtual time**.
    pub topology: TopologyPlan,
    /// What a rejoin means for jobs parked on the failed machine.
    pub crash: CrashSemantics,
}

impl FaultPlan {
    /// A perfect network: no loss, no duplication, no partitions, no
    /// churn.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan that only drops messages, at the given permille rate.
    pub fn with_drop(drop_permille: u16) -> Self {
        Self {
            drop_permille,
            ..Self::default()
        }
    }

    /// True when a `from -> to` message sent at `t` crosses an active
    /// partition.
    pub fn partitioned(&self, t: u64, from: MachineId, to: MachineId) -> bool {
        self.partitions.iter().any(|p| p.severs(t, from, to))
    }

    /// The topology events, validated sorted by time (mirrors the
    /// driver's debug assertion for round-keyed plans).
    pub fn sorted_topology_events(&self) -> &[(u64, TopologyEvent)] {
        debug_assert!(
            self.topology.events.windows(2).all(|w| w[0].0 <= w[1].0),
            "topology events sorted by time"
        );
        &self.topology.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_windowed_and_symmetric() {
        let p = LinkPartition {
            start: 10,
            end: 20,
            a: vec![MachineId(0)],
            b: vec![MachineId(1)],
        };
        assert!(!p.severs(9, MachineId(0), MachineId(1)));
        assert!(p.severs(10, MachineId(0), MachineId(1)));
        assert!(p.severs(19, MachineId(1), MachineId(0)));
        assert!(!p.severs(20, MachineId(0), MachineId(1)));
        // Unrelated machines pass through.
        assert!(!p.severs(15, MachineId(0), MachineId(2)));
    }

    #[test]
    fn default_plan_is_faultless() {
        let f = FaultPlan::none();
        assert_eq!(f.drop_permille, 0);
        assert_eq!(f.dup_permille, 0);
        assert!(!f.partitioned(0, MachineId(0), MachineId(1)));
        assert!(f.sorted_topology_events().is_empty());
    }
}
