//! Per-machine agent state.
//!
//! Each machine runs one [`Agent`]: a small state machine over the
//! two-phase exchange handshake. The states mirror the message flow
//!
//! ```text
//! initiator                         target
//!   Idle --ProbeRequest-->            (any state: replies with load)
//!   AwaitProbe <--ProbeResponse--
//!   AwaitProbe --Offer-->             Idle | Engaged(same initiator)
//!   AwaitAccept <--Accept--           Engaged (lease armed)
//!   (plan computed, intent logged)
//!   AwaitPrepared --Prepare-->        Engaged (intent logged, lease re-armed)
//!   AwaitPrepared <--Prepared--
//!   (intent marked committed)
//!   AwaitAck --Commit-->              Idle (moves applied, intent cleared)
//!   AwaitAck <--Ack--
//!   Idle (intent cleared)
//! ```
//!
//! Every transition bumps the agent's `epoch`, invalidating any timer
//! scheduled for the previous state; the timer that *is* armed depends
//! on the state (think pause when `Idle`, request timeout when awaiting,
//! lease expiry when `Engaged`). All recovery paths — lost probe, lost
//! offer, lost accept, lost prepare, lost commit, dead peer — are
//! timer-driven, so no message needs to be reliable.
//!
//! The [`TransferIntent`] each side logs is what makes a mid-exchange
//! crash safe: the plan is applied *only* by the target, *only* on
//! `Commit`, with each move guarded by its recorded `from` owner. An
//! intent that never commits is discarded (initiator: retries
//! exhausted or crash; target: lease expiry or crash) and every job
//! stays exactly where it was.

use crate::msg::TransferPlan;
use lb_model::prelude::*;

/// What an agent is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentState {
    /// The machine is offline (failed); it ignores everything until a
    /// rejoin event revives it.
    Offline,
    /// Between exchanges; the armed timer is the next initiation wake.
    Idle,
    /// Sent a `ProbeRequest` to `peer`; waiting for its load.
    AwaitProbe {
        /// The probed peer.
        peer: MachineId,
        /// Serial of the outstanding request.
        serial: u64,
        /// Retry attempt (0 = first try).
        attempt: u32,
    },
    /// Sent an `Offer` to `peer`; waiting for `Accept` or `Reject`.
    AwaitAccept {
        /// The offered peer.
        peer: MachineId,
        /// Serial of the outstanding offer.
        serial: u64,
        /// Retry attempt (0 = first try).
        attempt: u32,
    },
    /// Initiator: sent `Prepare` with the move plan; waiting for
    /// `Prepared`. Retries re-send the *same* intent under the same
    /// serial.
    AwaitPrepared {
        /// The exchange target.
        peer: MachineId,
        /// Serial of the exchange (fixed since the probe).
        serial: u64,
        /// Retry attempt (0 = first try).
        attempt: u32,
    },
    /// Initiator: sent `Commit`; waiting for `Ack`. The intent is marked
    /// committed — the target may already have applied it, so a retry
    /// must re-send `Commit` (idempotent at the target), never abandon.
    AwaitAck {
        /// The exchange target.
        peer: MachineId,
        /// Serial of the exchange (fixed since the probe).
        serial: u64,
        /// Retry attempt (0 = first try).
        attempt: u32,
    },
    /// Target: accepted `peer`'s offer and holds the exchange lease
    /// until the commit applies (or the lease expires).
    Engaged {
        /// The exchange initiator this agent is locked to.
        peer: MachineId,
        /// Serial of the accepted offer.
        serial: u64,
    },
}

/// One logged transfer: the durable record each side keeps from the
/// moment a plan exists until the exchange resolves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferIntent {
    /// The other side of the exchange.
    pub peer: MachineId,
    /// The exchange serial (shared by `Prepare`, `Prepared`, `Commit`
    /// and `Ack`).
    pub serial: u64,
    /// The moves to apply at commit.
    pub plan: TransferPlan,
    /// Initiator-side: set once `Prepared` arrived and `Commit` was
    /// sent. From then on the target may have applied the plan, so the
    /// intent may only resolve through `Ack` (or the run's reclamation
    /// machinery) — never by silently un-preparing.
    pub committed: bool,
}

/// One machine's protocol engine state.
#[derive(Debug, Clone)]
pub struct Agent {
    /// Current state.
    pub state: AgentState,
    /// Timer-invalidation counter: a timer fires only when its recorded
    /// epoch still equals this.
    pub epoch: u64,
    /// Next request serial this agent will mint as initiator.
    pub next_serial: u64,
    /// The in-flight transfer this agent has logged, if any (initiator:
    /// from plan computation to `Ack`; target: from `Prepare` to the
    /// commit's application).
    pub intent: Option<TransferIntent>,
}

impl Agent {
    /// A fresh idle agent.
    pub fn new() -> Self {
        Self {
            state: AgentState::Idle,
            epoch: 0,
            next_serial: 0,
            intent: None,
        }
    }

    /// Moves to `state`, invalidating all previously armed timers.
    /// Returns the new epoch, to be recorded in the replacement timer.
    pub fn transition(&mut self, state: AgentState) -> u64 {
        self.state = state;
        self.epoch += 1;
        self.epoch
    }

    /// Mints a fresh request serial.
    pub fn fresh_serial(&mut self) -> u64 {
        let s = self.next_serial;
        self.next_serial += 1;
        s
    }

    /// True when the agent would answer an `Offer` with `Accept`: it is
    /// idle, or already engaged to the *same* initiator (a retried offer
    /// after a lost `Accept` must be re-accepted, not rejected).
    pub fn accepts_offer_from(&self, initiator: MachineId) -> bool {
        match self.state {
            AgentState::Idle => true,
            AgentState::Engaged { peer, .. } => peer == initiator,
            _ => false,
        }
    }

    /// The logged intent, if it matches `(peer, serial)` — the guard
    /// every `Prepare`/`Commit`/`Ack` handler runs before acting.
    pub fn intent_matching(&self, peer: MachineId, serial: u64) -> Option<&TransferIntent> {
        self.intent
            .as_ref()
            .filter(|i| i.peer == peer && i.serial == serial)
    }
}

impl Default for Agent {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_bump_epoch() {
        let mut a = Agent::new();
        let e1 = a.transition(AgentState::Idle);
        let e2 = a.transition(AgentState::Offline);
        assert!(e2 > e1);
        assert_eq!(a.epoch, e2);
    }

    #[test]
    fn serials_are_monotone() {
        let mut a = Agent::new();
        assert_eq!(a.fresh_serial(), 0);
        assert_eq!(a.fresh_serial(), 1);
    }

    #[test]
    fn engaged_target_reaccepts_only_its_initiator() {
        let mut a = Agent::new();
        assert!(a.accepts_offer_from(MachineId(3)));
        a.transition(AgentState::Engaged {
            peer: MachineId(3),
            serial: 0,
        });
        assert!(a.accepts_offer_from(MachineId(3)));
        assert!(!a.accepts_offer_from(MachineId(4)));
    }

    #[test]
    fn intent_guard_matches_peer_and_serial() {
        let mut a = Agent::new();
        assert!(a.intent_matching(MachineId(1), 7).is_none());
        a.intent = Some(TransferIntent {
            peer: MachineId(1),
            serial: 7,
            plan: TransferPlan::default(),
            committed: false,
        });
        assert!(a.intent_matching(MachineId(1), 7).is_some());
        assert!(a.intent_matching(MachineId(1), 8).is_none());
        assert!(a.intent_matching(MachineId(2), 7).is_none());
    }
}
