//! Per-machine agent state.
//!
//! Each machine runs one [`Agent`]: a small state machine over the
//! exchange handshake. The states mirror the message flow
//!
//! ```text
//! initiator                         target
//!   Idle --ProbeRequest-->            (any state: replies with load)
//!   AwaitProbe <--ProbeResponse--
//!   AwaitProbe --Offer-->             Idle | Engaged(same initiator)
//!   AwaitAccept <--Accept--           Engaged (lease armed)
//!   (balance applied)
//!   Idle --Commit-->                  Idle (lease released)
//! ```
//!
//! Every transition bumps the agent's `epoch`, invalidating any timer
//! scheduled for the previous state; the timer that *is* armed depends
//! on the state (think pause when `Idle`, request timeout when awaiting,
//! lease expiry when `Engaged`). All recovery paths — lost probe, lost
//! offer, lost accept, lost commit — are timer-driven, so no message
//! needs to be reliable.

use lb_model::prelude::*;

/// What an agent is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentState {
    /// The machine is offline (failed); it ignores everything until a
    /// rejoin event revives it.
    Offline,
    /// Between exchanges; the armed timer is the next initiation wake.
    Idle,
    /// Sent a `ProbeRequest` to `peer`; waiting for its load.
    AwaitProbe {
        /// The probed peer.
        peer: MachineId,
        /// Serial of the outstanding request.
        serial: u64,
        /// Retry attempt (0 = first try).
        attempt: u32,
    },
    /// Sent an `Offer` to `peer`; waiting for `Accept` or `Reject`.
    AwaitAccept {
        /// The offered peer.
        peer: MachineId,
        /// Serial of the outstanding offer.
        serial: u64,
        /// Retry attempt (0 = first try).
        attempt: u32,
    },
    /// Accepted `peer`'s offer and holds the exchange lease until the
    /// matching `Commit` arrives (or the lease expires).
    Engaged {
        /// The exchange initiator this agent is locked to.
        peer: MachineId,
        /// Serial of the accepted offer.
        serial: u64,
    },
}

/// One machine's protocol engine state.
#[derive(Debug, Clone)]
pub struct Agent {
    /// Current state.
    pub state: AgentState,
    /// Timer-invalidation counter: a timer fires only when its recorded
    /// epoch still equals this.
    pub epoch: u64,
    /// Next request serial this agent will mint as initiator.
    pub next_serial: u64,
}

impl Agent {
    /// A fresh idle agent.
    pub fn new() -> Self {
        Self {
            state: AgentState::Idle,
            epoch: 0,
            next_serial: 0,
        }
    }

    /// Moves to `state`, invalidating all previously armed timers.
    /// Returns the new epoch, to be recorded in the replacement timer.
    pub fn transition(&mut self, state: AgentState) -> u64 {
        self.state = state;
        self.epoch += 1;
        self.epoch
    }

    /// Mints a fresh request serial.
    pub fn fresh_serial(&mut self) -> u64 {
        let s = self.next_serial;
        self.next_serial += 1;
        s
    }

    /// True when the agent would answer an `Offer` with `Accept`: it is
    /// idle, or already engaged to the *same* initiator (a retried offer
    /// after a lost `Accept` must be re-accepted, not rejected).
    pub fn accepts_offer_from(&self, initiator: MachineId) -> bool {
        match self.state {
            AgentState::Idle => true,
            AgentState::Engaged { peer, .. } => peer == initiator,
            _ => false,
        }
    }
}

impl Default for Agent {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_bump_epoch() {
        let mut a = Agent::new();
        let e1 = a.transition(AgentState::Idle);
        let e2 = a.transition(AgentState::Offline);
        assert!(e2 > e1);
        assert_eq!(a.epoch, e2);
    }

    #[test]
    fn serials_are_monotone() {
        let mut a = Agent::new();
        assert_eq!(a.fresh_serial(), 0);
        assert_eq!(a.fresh_serial(), 1);
    }

    #[test]
    fn engaged_target_reaccepts_only_its_initiator() {
        let mut a = Agent::new();
        assert!(a.accepts_offer_from(MachineId(3)));
        a.transition(AgentState::Engaged {
            peer: MachineId(3),
            serial: 0,
        });
        assert!(a.accepts_offer_from(MachineId(3)));
        assert!(!a.accepts_offer_from(MachineId(4)));
    }
}
