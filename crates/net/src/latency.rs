//! Pluggable message-latency models.
//!
//! Latency is sampled per message at send time from the run's single RNG
//! stream, so the model choice changes delivery *order* (and therefore
//! the whole interleaving) while keeping every run deterministic in
//! `(instance, seed, NetConfig)`. Samples are clamped to `>= 1` tick:
//! a message never arrives at its own send instant, which (together
//! with minimum think/timeout delays) rules out zero-delay livelock.

use lb_model::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How long a message takes from send to delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly this many ticks (the degenerate model
    /// the cross-validation tests use to recover the paper's
    /// instantaneous-exchange semantics).
    Constant(u64),
    /// Uniform in `[min, max]` (inclusive), independently per message.
    UniformJitter {
        /// Smallest latency.
        min: u64,
        /// Largest latency (clamped up to `min` if smaller).
        max: u64,
    },
    /// Two-cluster topology: `local` within a machine's cluster, `cross`
    /// between clusters. On instances without the two-cluster structure
    /// every pair counts as local.
    TwoCluster {
        /// Latency within a cluster.
        local: u64,
        /// Latency across the inter-cluster link (the penalty models the
        /// CPU/GPU-enclosure split of the paper's Section II platform).
        cross: u64,
    },
}

impl LatencyModel {
    /// Samples the latency for one `from -> to` message.
    pub fn sample(&self, inst: &Instance, from: MachineId, to: MachineId, rng: &mut StdRng) -> u64 {
        let raw = match *self {
            LatencyModel::Constant(l) => l,
            LatencyModel::UniformJitter { min, max } => {
                let hi = max.max(min);
                rng.gen_range(min..=hi)
            }
            LatencyModel::TwoCluster { local, cross } => {
                if inst.is_two_cluster() && inst.cluster(from) != inst.cluster(to) {
                    cross
                } else {
                    local
                }
            }
        };
        raw.max(1)
    }
}

impl Default for LatencyModel {
    /// A small constant latency — messages are ordered but not free.
    fn default() -> Self {
        LatencyModel::Constant(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant_and_at_least_one() {
        let inst = Instance::uniform(2, vec![1]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let m = LatencyModel::Constant(0);
        for _ in 0..8 {
            assert_eq!(m.sample(&inst, MachineId(0), MachineId(1), &mut rng), 1);
        }
        let m = LatencyModel::Constant(9);
        assert_eq!(m.sample(&inst, MachineId(0), MachineId(1), &mut rng), 9);
    }

    #[test]
    fn jitter_stays_in_range() {
        let inst = Instance::uniform(2, vec![1]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let m = LatencyModel::UniformJitter { min: 2, max: 6 };
        for _ in 0..64 {
            let l = m.sample(&inst, MachineId(0), MachineId(1), &mut rng);
            assert!((2..=6).contains(&l));
        }
    }

    #[test]
    fn two_cluster_penalizes_cross_links() {
        // 1 machine in cluster one, 1 in cluster two.
        let inst = Instance::two_cluster(1, 1, vec![(1, 5), (5, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let m = LatencyModel::TwoCluster {
            local: 2,
            cross: 20,
        };
        assert_eq!(m.sample(&inst, MachineId(0), MachineId(1), &mut rng), 20);
        assert_eq!(m.sample(&inst, MachineId(0), MachineId(0), &mut rng), 2);
    }
}
