//! The wire codec: length-prefixed frames, hand-rolled little-endian
//! encoding.
//!
//! A frame on the socket is a `u32` little-endian payload length
//! followed by exactly that many payload bytes (capped at
//! [`MAX_FRAME_LEN`] so a corrupt or hostile length prefix cannot make
//! a daemon allocate gigabytes). The payload is one [`Frame`]: either a
//! protocol [`Envelope`] (tag 0) or a control message (tag 1) for the
//! coordinator plane. All integers are little-endian; ids are `u32`,
//! times and serials `u64`.
//!
//! The codec is hand-rolled rather than serde/bincode-derived on
//! purpose: the offline build environment has no real serde backend
//! (see `tools/offline-stubs/`), and a protocol whose messages are nine
//! small variants does not need one. What it *does* need — and what the
//! derive would not give us — is strict decoding at the trust boundary:
//! [`decode_frame`] consumes the payload **exactly** (a truncated field
//! or trailing garbage is a [`LbError::MalformedMessage`], never a
//! partial success), so `tests/codec_prop.rs` can round-trip every
//! variant and fuzz the rejection paths.

use crate::msg::{Envelope, JobMove, Msg, ReqId, TransferPlan};
use lb_model::prelude::*;

/// Hard ceiling on a frame payload (16 MiB). Generous — the largest
/// legitimate frame is a `Prepare` plan or a holdings snapshot, linear
/// in the job count — while still bounding what a corrupt length prefix
/// can demand.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Control messages of the coordinator plane (node ⇄ coordinator, plus
/// the connection handshake). They share framing with protocol
/// envelopes but never enter the protocol state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlMsg {
    /// First frame on every outbound connection: who is calling and
    /// which process incarnation. Receivers remember the highest
    /// session per peer and drop frames from older ones
    /// ([`LbError::StaleSession`]) — late bytes of a pre-flap
    /// connection must not reach the protocol after a reconnect.
    Hello {
        /// The connecting machine (or the coordinator id).
        machine: MachineId,
        /// The caller's incarnation number (monotone across restarts).
        session: u64,
    },
    /// Periodic node → coordinator heartbeat with counters for
    /// stability detection and throughput reporting.
    Report {
        /// Completed exchanges at this node (target side).
        exchanges: u64,
        /// Completed exchanges that moved at least one job.
        effective: u64,
        /// Jobs received by completed exchanges.
        jobs_moved: u64,
        /// Protocol messages this node has sent.
        msgs_sent: u64,
        /// Consecutive completed exchanges that moved nothing.
        quiet: u64,
        /// The node's current load.
        load: Time,
        /// Number of jobs currently held.
        holdings: u64,
    },
    /// Coordinator → node: report your exact holding (answered with
    /// [`CtrlMsg::Holdings`] once the node is idle, so the snapshot is
    /// not torn by an exchange in flight).
    QueryHoldings {
        /// Correlates the answer with the sweep that asked.
        token: u64,
    },
    /// Node → coordinator: the exact holding, for conservation checks
    /// and orphan sweeps.
    Holdings {
        /// The sweep token being answered.
        token: u64,
        /// Every job this node currently holds.
        jobs: Vec<JobId>,
    },
    /// Coordinator → nodes: a peer is gone for good. Nodes abort any
    /// conversation with it (applying nothing) and stop picking it.
    PeerDead {
        /// The dead machine.
        machine: MachineId,
    },
    /// Coordinator → node: take custody of these orphaned jobs (the
    /// re-homing half of a custody sweep).
    Adopt {
        /// The jobs to adopt.
        jobs: Vec<JobId>,
    },
    /// Coordinator → node: unfreeze after a custody sweep (a node
    /// freezes — stops initiating and accepting — from the moment it
    /// answers [`CtrlMsg::Holdings`] until this arrives, so sweep
    /// snapshots cannot be torn by concurrent exchanges).
    Resume,
    /// Coordinator → node: stop exchanging and answer with
    /// [`CtrlMsg::Goodbye`].
    Shutdown,
    /// Node → coordinator: final word of a graceful shutdown — the
    /// node's entire holding, parked under the coordinator's lease
    /// table until reassigned.
    Goodbye {
        /// Every job the node held at shutdown.
        jobs: Vec<JobId>,
    },
}

/// Anything that travels in one wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A protocol message for the exchange state machine.
    Proto(Envelope),
    /// A control-plane message.
    Ctrl {
        /// Sending machine (or coordinator id).
        from: MachineId,
        /// Destination machine (or coordinator id).
        to: MachineId,
        /// The control payload.
        msg: CtrlMsg,
    },
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_jobs(buf: &mut Vec<u8>, jobs: &[JobId]) {
    put_u32(buf, jobs.len() as u32);
    for j in jobs {
        put_u32(buf, j.0);
    }
}

/// A strict little-endian reader over a frame payload. Every read is
/// bounds-checked; [`Reader::finish`] fails unless the payload was
/// consumed exactly.
struct Reader<'d> {
    data: &'d [u8],
    pos: usize,
}

impl<'d> Reader<'d> {
    fn new(data: &'d [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn truncated() -> LbError {
        LbError::MalformedMessage {
            reason: "truncated frame".into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'d [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(Self::truncated)?;
        if end > self.data.len() {
            return Err(Self::truncated());
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn jobs(&mut self) -> Result<Vec<JobId>> {
        let n = self.u32()? as usize;
        // The count must be coverable by the remaining bytes before any
        // allocation happens — a hostile count of u32::MAX must not
        // reserve 16 GiB.
        if n.checked_mul(4)
            .is_none_or(|b| b > self.data.len() - self.pos)
        {
            return Err(Self::truncated());
        }
        (0..n).map(|_| Ok(JobId(self.u32()?))).collect()
    }

    fn finish(self) -> Result<()> {
        if self.pos != self.data.len() {
            return Err(LbError::MalformedMessage {
                reason: format!(
                    "trailing garbage: {} bytes after payload",
                    self.data.len() - self.pos
                ),
            });
        }
        Ok(())
    }
}

fn encode_msg(buf: &mut Vec<u8>, msg: &Msg) {
    match msg {
        Msg::ProbeRequest => buf.push(0),
        Msg::ProbeResponse { load } => {
            buf.push(1);
            put_u64(buf, *load);
        }
        Msg::Offer => buf.push(2),
        Msg::Accept { jobs } => {
            buf.push(3);
            put_jobs(buf, jobs);
        }
        Msg::Reject => buf.push(4),
        Msg::Prepare { plan } => {
            buf.push(5);
            put_u32(buf, plan.moves.len() as u32);
            for mv in &plan.moves {
                put_u32(buf, mv.job.0);
                put_u32(buf, mv.from.0);
                put_u32(buf, mv.to.0);
            }
        }
        Msg::Prepared => buf.push(6),
        Msg::Commit => buf.push(7),
        Msg::Ack => buf.push(8),
    }
}

fn decode_msg(r: &mut Reader<'_>) -> Result<Msg> {
    Ok(match r.u8()? {
        0 => Msg::ProbeRequest,
        1 => Msg::ProbeResponse { load: r.u64()? },
        2 => Msg::Offer,
        3 => Msg::Accept { jobs: r.jobs()? },
        4 => Msg::Reject,
        5 => {
            let n = r.u32()? as usize;
            if n.checked_mul(12).is_none_or(|b| b > r.data.len() - r.pos) {
                return Err(Reader::truncated());
            }
            let moves = (0..n)
                .map(|_| {
                    Ok(JobMove {
                        job: JobId(r.u32()?),
                        from: MachineId(r.u32()?),
                        to: MachineId(r.u32()?),
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            Msg::Prepare {
                plan: TransferPlan { moves },
            }
        }
        6 => Msg::Prepared,
        7 => Msg::Commit,
        8 => Msg::Ack,
        k => {
            return Err(LbError::MalformedMessage {
                reason: format!("unknown message kind {k}"),
            })
        }
    })
}

fn encode_ctrl(buf: &mut Vec<u8>, msg: &CtrlMsg) {
    match msg {
        CtrlMsg::Hello { machine, session } => {
            buf.push(0);
            put_u32(buf, machine.0);
            put_u64(buf, *session);
        }
        CtrlMsg::Report {
            exchanges,
            effective,
            jobs_moved,
            msgs_sent,
            quiet,
            load,
            holdings,
        } => {
            buf.push(1);
            put_u64(buf, *exchanges);
            put_u64(buf, *effective);
            put_u64(buf, *jobs_moved);
            put_u64(buf, *msgs_sent);
            put_u64(buf, *quiet);
            put_u64(buf, *load);
            put_u64(buf, *holdings);
        }
        CtrlMsg::QueryHoldings { token } => {
            buf.push(2);
            put_u64(buf, *token);
        }
        CtrlMsg::Holdings { token, jobs } => {
            buf.push(3);
            put_u64(buf, *token);
            put_jobs(buf, jobs);
        }
        CtrlMsg::PeerDead { machine } => {
            buf.push(4);
            put_u32(buf, machine.0);
        }
        CtrlMsg::Adopt { jobs } => {
            buf.push(5);
            put_jobs(buf, jobs);
        }
        CtrlMsg::Shutdown => buf.push(6),
        CtrlMsg::Goodbye { jobs } => {
            buf.push(7);
            put_jobs(buf, jobs);
        }
        CtrlMsg::Resume => buf.push(8),
    }
}

fn decode_ctrl(r: &mut Reader<'_>) -> Result<CtrlMsg> {
    Ok(match r.u8()? {
        0 => CtrlMsg::Hello {
            machine: MachineId(r.u32()?),
            session: r.u64()?,
        },
        1 => CtrlMsg::Report {
            exchanges: r.u64()?,
            effective: r.u64()?,
            jobs_moved: r.u64()?,
            msgs_sent: r.u64()?,
            quiet: r.u64()?,
            load: r.u64()?,
            holdings: r.u64()?,
        },
        2 => CtrlMsg::QueryHoldings { token: r.u64()? },
        3 => CtrlMsg::Holdings {
            token: r.u64()?,
            jobs: r.jobs()?,
        },
        4 => CtrlMsg::PeerDead {
            machine: MachineId(r.u32()?),
        },
        5 => CtrlMsg::Adopt { jobs: r.jobs()? },
        6 => CtrlMsg::Shutdown,
        7 => CtrlMsg::Goodbye { jobs: r.jobs()? },
        8 => CtrlMsg::Resume,
        k => {
            return Err(LbError::MalformedMessage {
                reason: format!("unknown control kind {k}"),
            })
        }
    })
}

/// Encodes one frame payload (without the length prefix — transports
/// add it when writing to a socket).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    match frame {
        Frame::Proto(env) => {
            buf.push(0);
            put_u32(&mut buf, env.from.0);
            put_u32(&mut buf, env.to.0);
            put_u32(&mut buf, env.req.origin.0);
            put_u64(&mut buf, env.req.serial);
            put_u64(&mut buf, env.sent_at);
            encode_msg(&mut buf, &env.msg);
        }
        Frame::Ctrl { from, to, msg } => {
            buf.push(1);
            put_u32(&mut buf, from.0);
            put_u32(&mut buf, to.0);
            encode_ctrl(&mut buf, msg);
        }
    }
    buf
}

/// Decodes one frame payload strictly: every field bounds-checked, the
/// buffer consumed exactly. Anything else is a
/// [`LbError::MalformedMessage`].
pub fn decode_frame(data: &[u8]) -> Result<Frame> {
    let mut r = Reader::new(data);
    let frame = match r.u8()? {
        0 => {
            let from = MachineId(r.u32()?);
            let to = MachineId(r.u32()?);
            let origin = MachineId(r.u32()?);
            let serial = r.u64()?;
            let sent_at = r.u64()?;
            let msg = decode_msg(&mut r)?;
            Frame::Proto(Envelope {
                from,
                to,
                req: ReqId { origin, serial },
                msg,
                sent_at,
            })
        }
        1 => {
            let from = MachineId(r.u32()?);
            let to = MachineId(r.u32()?);
            let msg = decode_ctrl(&mut r)?;
            Frame::Ctrl { from, to, msg }
        }
        t => {
            return Err(LbError::MalformedMessage {
                reason: format!("unknown frame tag {t}"),
            })
        }
    };
    r.finish()?;
    Ok(frame)
}

/// Writes `frame` to `w` as one length-prefixed wire frame.
pub fn write_frame<W: std::io::Write>(w: &mut W, frame: &Frame) -> std::io::Result<()> {
    let payload = encode_frame(frame);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)
}

/// Reads one length-prefixed frame from `r`. `Ok(None)` is a clean EOF
/// at a frame boundary; an EOF inside a frame, an oversized length
/// prefix, or a payload that fails [`decode_frame`] is an error.
pub fn read_frame<R: std::io::Read>(r: &mut R) -> std::io::Result<Option<Frame>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame length",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME_LEN}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    decode_frame(&payload)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let bytes = encode_frame(&frame);
        assert_eq!(decode_frame(&bytes).unwrap(), frame);
    }

    #[test]
    fn proto_round_trips() {
        let env = Envelope {
            from: MachineId(2),
            to: MachineId(5),
            req: ReqId {
                origin: MachineId(2),
                serial: 77,
            },
            msg: Msg::Prepare {
                plan: TransferPlan {
                    moves: vec![JobMove {
                        job: JobId(9),
                        from: MachineId(2),
                        to: MachineId(5),
                    }],
                },
            },
            sent_at: 123_456,
        };
        round_trip(Frame::Proto(env));
    }

    #[test]
    fn ctrl_round_trips() {
        round_trip(Frame::Ctrl {
            from: MachineId(4),
            to: MachineId(0),
            msg: CtrlMsg::Holdings {
                token: 3,
                jobs: vec![JobId(1), JobId(8)],
            },
        });
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode_frame(&Frame::Proto(Envelope {
            from: MachineId(0),
            to: MachineId(1),
            req: ReqId {
                origin: MachineId(0),
                serial: 0,
            },
            msg: Msg::Ack,
            sent_at: 0,
        }));
        bytes.push(0xAB);
        assert!(decode_frame(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode_frame(&Frame::Ctrl {
            from: MachineId(0),
            to: MachineId(1),
            msg: CtrlMsg::Hello {
                machine: MachineId(0),
                session: 9,
            },
        });
        for cut in 0..bytes.len() {
            assert!(decode_frame(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_count_rejected_before_allocation() {
        // A Holdings frame claiming u32::MAX jobs with a 4-byte body.
        let mut bytes = vec![1u8]; // ctrl
        bytes.extend_from_slice(&0u32.to_le_bytes()); // from
        bytes.extend_from_slice(&1u32.to_le_bytes()); // to
        bytes.push(3); // Holdings
        bytes.extend_from_slice(&0u64.to_le_bytes()); // token
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // count
        bytes.extend_from_slice(&7u32.to_le_bytes()); // one lone job
        assert!(decode_frame(&bytes).is_err());
    }
}
