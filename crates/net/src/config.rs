//! Configuration of a network run.

use crate::fault::FaultPlan;
use crate::latency::LatencyModel;
use serde::{Deserialize, Serialize};

/// All knobs of a network simulation. A run is a pure function of
/// `(instance, initial assignment, NetConfig)` — the seed lives here so
/// the whole tuple is one value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Message latency model.
    pub latency: LatencyModel,
    /// Loss / duplication / partition / churn plan.
    pub faults: FaultPlan,
    /// Base request timeout in ticks (clamped to `>= 1`). Attempt `a`
    /// waits `min(timeout << a, backoff_cap)` — capped exponential
    /// backoff.
    pub timeout: u64,
    /// Retries per request phase after the first attempt; retry `a` uses
    /// a fresh [`crate::msg::ReqId`] serial so stale responses miss.
    pub max_retries: u32,
    /// Upper bound on a backed-off timeout.
    pub backoff_cap: u64,
    /// Idle pause between an agent finishing one exchange attempt and
    /// initiating the next (clamped to `>= 1`; the initial wake of each
    /// machine is jittered inside `[1, think_time]` to de-synchronize
    /// the fleet).
    pub think_time: u64,
    /// How long an accepting target holds its exchange lease before
    /// concluding the initiator gave up and releasing itself (any
    /// un-committed prepared intent is discarded with it).
    pub lease_time: u64,
    /// Custody lease on a failed machine's jobs: how long after the
    /// failure they stay parked on it before survivors reclaim them. A
    /// crash-recovery machine that rejoins within the lease keeps its
    /// jobs (see [`crate::fault::CrashSemantics`]).
    pub job_lease_time: u64,
    /// Run the [`lb_distsim::InvariantProbe`] after every applied event
    /// (job conservation, single custody, clock monotonicity, load-index
    /// consistency). Off by default; cheap enough for tests and the
    /// chaos harness. The probe is registered after the standard set so
    /// enabling it never perturbs existing probe accounting.
    pub check_invariants: bool,
    /// Stop after this many consecutive *completed* exchanges that moved
    /// no job (0 disables the stop). Counting completed exchanges —
    /// rather than wall ticks — makes the criterion robust to loss:
    /// dropped conversations don't advance it.
    pub quiescence_window: u64,
    /// Hard virtual-time budget (livelock guard).
    pub max_time: u64,
    /// Hard message budget (livelock guard; counts send attempts).
    pub max_msgs: u64,
    /// Budget of completed exchanges (the net analogue of `max_rounds`).
    pub max_exchanges: u64,
    /// Makespan series cadence in completed exchanges (0 = first and
    /// last sample only), as in the round-driven engine.
    pub record_every: u64,
    /// Base seed; the run draws from stream 0 (see
    /// [`lb_distsim::stream_rng`]).
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            latency: LatencyModel::default(),
            faults: FaultPlan::none(),
            timeout: 32,
            max_retries: 3,
            backoff_cap: 256,
            think_time: 8,
            lease_time: 128,
            job_lease_time: 512,
            check_invariants: false,
            quiescence_window: 256,
            max_time: 4_000_000,
            max_msgs: 4_000_000,
            max_exchanges: u64::MAX,
            record_every: 0,
            seed: 0,
        }
    }
}

impl NetConfig {
    /// The timeout for retry attempt `attempt` (0 = first try):
    /// `min(timeout << attempt, backoff_cap)`, at least 1 tick.
    pub fn timeout_for(&self, attempt: u32) -> u64 {
        let base = self.timeout.max(1);
        // `checked_shl` only guards the shift amount, not bit overflow,
        // so go through saturating multiplication instead.
        let backed_off = if attempt >= 64 {
            u64::MAX
        } else {
            base.saturating_mul(1u64 << attempt)
        };
        backed_off.min(self.backoff_cap.max(base)).max(1)
    }

    /// Think-time clamped to at least one tick.
    pub fn think(&self) -> u64 {
        self.think_time.max(1)
    }

    /// Lease clamped to at least one tick.
    pub fn lease(&self) -> u64 {
        self.lease_time.max(1)
    }

    /// Job-custody lease clamped to at least one tick.
    pub fn job_lease(&self) -> u64 {
        self.job_lease_time.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let cfg = NetConfig {
            timeout: 10,
            backoff_cap: 35,
            ..NetConfig::default()
        };
        assert_eq!(cfg.timeout_for(0), 10);
        assert_eq!(cfg.timeout_for(1), 20);
        assert_eq!(cfg.timeout_for(2), 35);
        assert_eq!(cfg.timeout_for(3), 35);
        assert_eq!(cfg.timeout_for(63), 35);
    }

    #[test]
    fn zero_knobs_are_clamped_not_livelocked() {
        let cfg = NetConfig {
            timeout: 0,
            think_time: 0,
            lease_time: 0,
            job_lease_time: 0,
            backoff_cap: 0,
            ..NetConfig::default()
        };
        assert!(cfg.timeout_for(0) >= 1);
        assert!(cfg.think() >= 1);
        assert!(cfg.lease() >= 1);
        assert!(cfg.job_lease() >= 1);
    }
}
