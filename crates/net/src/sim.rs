//! The event-driven network simulator.
//!
//! [`NetSim`] runs one [`Agent`] per machine against the
//! [`EventQueue`]: agents exchange [`Envelope`]s through a network that
//! delays ([`crate::latency::LatencyModel`]), loses, duplicates, and
//! partitions them ([`crate::fault::FaultPlan`]), and recover from every
//! loss through epoch-guarded timers with capped exponential backoff.
//!
//! The protocol carried over the messages is the paper's gossip
//! dynamic: an initiator probes a random peer's load, offers an
//! exchange, and on `Accept` applies the configured
//! [`PairwiseBalancer`] to the pair — `Dlb2cBalance` gives the
//! message-passing port of DLB2C (Algorithm 7), `EctPairBalance` the
//! OJTB-style port (Algorithm 3). A *completed* exchange (an `Accept`
//! that arrived) is the net analogue of a driver round: it advances
//! `SimCore::round`, so the round-keyed probes (`SeriesProbe`,
//! `QuiescenceProbe`, CSV series) work unchanged.
//!
//! # Determinism
//!
//! A run is a pure function of `(instance, initial assignment,
//! NetConfig)`:
//!
//! * the queue pops in `(time, seq)` order — ties resolve by push order,
//!   never by pointer identity or hash order;
//! * every random decision (peer choice, latency sample, drop /
//!   duplication rolls, initial wake jitter, churn scatter) draws from
//!   the run's single RNG stream (stream 0 of the seed) in event order;
//! * drop and partition outcomes are decided at *send* time, so a
//!   message's fate is sealed before any concurrent event can reorder
//!   the stream.
//!
//! `tests/net_determinism.rs` asserts trace-digest equality across
//! repeated runs and across rayon thread-pool sizes.

use crate::agent::{Agent, AgentState};
use crate::config::NetConfig;
use crate::event::{Event, EventQueue};
use crate::msg::{Envelope, Msg, ReqId};
use lb_core::{balance_counting_moves, PairwiseBalancer};
use lb_distsim::probe::{NetMsgProbe, NetMsgStats, SeriesProbe};
use lb_distsim::protocol::scatter_assigned_jobs;
use lb_distsim::{ProbeHub, RunOutcome, SimCore, SimEvent, StopReason, TopologyEvent};
use lb_model::prelude::*;
use rand::Rng;
use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;

/// Result of a network run (see [`run_net`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetRun {
    /// Final makespan over all machines.
    pub final_makespan: Time,
    /// Completed exchanges (`Accept`s that arrived) — the net round
    /// count.
    pub exchanges: u64,
    /// Completed exchanges that moved at least one job.
    pub effective_exchanges: u64,
    /// Total jobs moved by completed exchanges (churn scatters not
    /// included).
    pub jobs_moved: u64,
    /// Message accounting (sent / dropped / timeouts, per kind).
    pub msg: NetMsgStats,
    /// Virtual time at which the run ended.
    pub end_time: u64,
    /// Why the run ended.
    pub outcome: RunOutcome,
    /// `(completed exchanges, makespan)` series at the configured
    /// cadence.
    pub makespan_series: Vec<(u64, Time)>,
    /// Order-sensitive digest of every processed event; equal digests
    /// mean identical runs (the determinism tests compare these).
    pub trace_digest: u64,
}

impl NetRun {
    /// Whether the run settled (stopped by quiescence rather than a
    /// budget).
    pub fn settled(&self) -> bool {
        self.outcome == RunOutcome::Quiescent
    }
}

/// What [`NetSim::run`] measured (the probe-independent core of a
/// [`NetRun`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetSummary {
    /// Why the run ended.
    pub outcome: RunOutcome,
    /// Virtual time at which the run ended.
    pub end_time: u64,
    /// Completed exchanges.
    pub exchanges: u64,
    /// Completed exchanges that moved at least one job.
    pub effective_exchanges: u64,
    /// Jobs moved by completed exchanges.
    pub jobs_moved: u64,
    /// Final makespan over all machines.
    pub final_makespan: Time,
    /// Order-sensitive digest of every processed event.
    pub trace_digest: u64,
}

/// The simulator: composable with any [`ProbeHub`] (see [`run_net`] for
/// the batteries-included entry point).
pub struct NetSim<'a, 'b> {
    core: SimCore<'a>,
    balancer: &'b dyn PairwiseBalancer,
    cfg: &'b NetConfig,
    queue: EventQueue,
    agents: Vec<Agent>,
    now: u64,
    next_topo: usize,
    msgs_sent: u64,
    exchanges: u64,
    effective: u64,
    jobs_moved_total: u64,
    quiet: u64,
    pending_stop: Option<RunOutcome>,
    hasher: DefaultHasher,
}

impl<'a, 'b> NetSim<'a, 'b> {
    /// A simulator over `asg`, balancing with `balancer` under `cfg`.
    pub fn new(
        inst: &'a Instance,
        asg: &'a mut Assignment,
        balancer: &'b dyn PairwiseBalancer,
        cfg: &'b NetConfig,
    ) -> Self {
        let m = inst.num_machines();
        Self {
            core: SimCore::new(inst, asg, cfg.seed),
            balancer,
            cfg,
            queue: EventQueue::new(),
            agents: vec![Agent::new(); m],
            now: 0,
            next_topo: 0,
            msgs_sent: 0,
            exchanges: 0,
            effective: 0,
            jobs_moved_total: 0,
            quiet: 0,
            pending_stop: None,
            hasher: DefaultHasher::new(),
        }
    }

    /// Runs the simulation to completion, reporting through `probes`.
    ///
    /// Errors when the fault plan's churn cannot be absorbed
    /// ([`LbError::NoOnlineMachines`]).
    pub fn run(&mut self, probes: &mut ProbeHub) -> Result<NetSummary> {
        probes.on_start(&self.core);
        // Initial wakes, jittered inside [1, think] to de-synchronize
        // the fleet (machine index order, so the draws are reproducible).
        let think = self.cfg.think();
        for i in 0..self.core.inst.num_machines() {
            let machine = MachineId::from_idx(i);
            if self.core.topology.is_online(machine) {
                let delay = self.core.rng.gen_range(1..=think);
                self.schedule_timer(machine, delay, self.agents[i].epoch);
            }
        }
        let mut outcome = RunOutcome::Quiescent; // queue drained = nothing to do
        while let Some((t, ev)) = self.queue.pop() {
            if t > self.cfg.max_time {
                outcome = RunOutcome::BudgetExhausted;
                break;
            }
            self.apply_topology_up_to(t, probes)?;
            self.now = self.now.max(t);
            self.digest_event(t, &ev);
            match ev {
                Event::Timer { machine, epoch } => {
                    if epoch == self.agents[machine.idx()].epoch {
                        self.handle_timer(machine, probes);
                    }
                }
                Event::Deliver(env) => {
                    if !self.core.topology.is_online(env.to) {
                        probes.emit(
                            &self.core,
                            &SimEvent::MsgDropped {
                                from: env.from,
                                to: env.to,
                                kind: env.msg.kind(),
                            },
                        );
                    } else {
                        self.handle_msg(env, probes);
                    }
                }
            }
            if self.msgs_sent >= self.cfg.max_msgs {
                self.pending_stop.get_or_insert(RunOutcome::BudgetExhausted);
            }
            if let Some(stop) = self.pending_stop.take() {
                outcome = stop;
                break;
            }
        }
        // Late churn events still apply (mirrors `drive_with_plan`).
        self.apply_topology_up_to(u64::MAX, probes)?;
        probes.on_finish(&self.core);
        self.hasher.write_u64(self.exchanges);
        self.hasher.write_u64(self.msgs_sent);
        Ok(NetSummary {
            outcome,
            end_time: self.now,
            exchanges: self.exchanges,
            effective_exchanges: self.effective,
            jobs_moved: self.jobs_moved_total,
            final_makespan: self.core.makespan(),
            trace_digest: self.hasher.finish(),
        })
    }

    /// Messages handed to the network so far (send attempts, duplicates
    /// included).
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent
    }

    fn digest_event(&mut self, t: u64, ev: &Event) {
        self.hasher.write_u64(t);
        match ev {
            Event::Timer { machine, epoch } => {
                self.hasher.write_u8(0);
                self.hasher.write_u64(machine.idx() as u64);
                self.hasher.write_u64(*epoch);
            }
            Event::Deliver(env) => {
                self.hasher.write_u8(1);
                self.hasher.write_u64(env.from.idx() as u64);
                self.hasher.write_u64(env.to.idx() as u64);
                self.hasher.write_u64(env.req.serial);
                self.hasher.write_u8(env.msg.kind().idx() as u8);
            }
        }
    }

    fn apply_topology_up_to(&mut self, t: u64, probes: &mut ProbeHub) -> Result<()> {
        let events = self.cfg.faults.sorted_topology_events();
        while self.next_topo < events.len() && events[self.next_topo].0 <= t {
            let (te, ev) = events[self.next_topo];
            self.next_topo += 1;
            let jobs_scattered = match ev {
                TopologyEvent::Fail(machine) => {
                    self.core.set_online(machine, false);
                    self.agents[machine.idx()].transition(AgentState::Offline);
                    scatter_assigned_jobs(&mut self.core, machine)?
                }
                TopologyEvent::Rejoin(machine) => {
                    self.core.set_online(machine, true);
                    let epoch = self.agents[machine.idx()].transition(AgentState::Idle);
                    let base = te.max(self.now);
                    let think = self.cfg.think();
                    self.queue
                        .push(base + think, Event::Timer { machine, epoch });
                    0
                }
            };
            probes.emit(
                &self.core,
                &SimEvent::Topology {
                    event: ev,
                    jobs_scattered,
                },
            );
        }
        Ok(())
    }

    fn schedule_timer(&mut self, machine: MachineId, delay: u64, epoch: u64) {
        self.queue
            .push(self.now + delay.max(1), Event::Timer { machine, epoch });
    }

    /// Returns the agent to `Idle` and arms its next initiation wake.
    ///
    /// The pause is drawn uniformly from `[1, think]` rather than fixed:
    /// with constant latencies a fixed pause makes every agent's
    /// probe/offer/reject cycle exactly periodic, and an unlucky initial
    /// phase alignment then rejects *every* offer forever (a lockstep
    /// livelock the first smoke test actually hit). Randomizing the
    /// pause drifts the phases apart, so accept windows always reopen.
    fn go_idle(&mut self, machine: MachineId) {
        let epoch = self.agents[machine.idx()].transition(AgentState::Idle);
        let pause = self.core.rng.gen_range(1..=self.cfg.think());
        self.schedule_timer(machine, pause, epoch);
    }

    fn handle_timer(&mut self, machine: MachineId, probes: &mut ProbeHub) {
        match self.agents[machine.idx()].state {
            AgentState::Idle => self.initiate(machine, probes),
            AgentState::AwaitProbe { peer, attempt, .. } => {
                self.on_request_timeout(machine, peer, attempt, Msg::ProbeRequest, probes);
            }
            AgentState::AwaitAccept { peer, attempt, .. } => {
                self.on_request_timeout(machine, peer, attempt, Msg::Offer, probes);
            }
            AgentState::Engaged { peer, .. } => {
                // The initiator's Commit never arrived: release the lease
                // so the machine can exchange again.
                probes.emit(
                    &self.core,
                    &SimEvent::ExchangeTimedOut {
                        agent: machine,
                        peer,
                        attempt: 0,
                    },
                );
                self.go_idle(machine);
            }
            AgentState::Offline => {}
        }
    }

    /// A request timed out: retry the phase with a fresh serial under
    /// backoff, or give up once the retry budget is spent.
    fn on_request_timeout(
        &mut self,
        machine: MachineId,
        peer: MachineId,
        attempt: u32,
        resend: Msg,
        probes: &mut ProbeHub,
    ) {
        probes.emit(
            &self.core,
            &SimEvent::ExchangeTimedOut {
                agent: machine,
                peer,
                attempt,
            },
        );
        if attempt >= self.cfg.max_retries {
            self.go_idle(machine);
            return;
        }
        let next_attempt = attempt + 1;
        let serial = self.agents[machine.idx()].fresh_serial();
        let req = ReqId {
            origin: machine,
            serial,
        };
        let state = match resend {
            Msg::ProbeRequest => AgentState::AwaitProbe {
                peer,
                serial,
                attempt: next_attempt,
            },
            _ => AgentState::AwaitAccept {
                peer,
                serial,
                attempt: next_attempt,
            },
        };
        let epoch = self.agents[machine.idx()].transition(state);
        self.send(machine, peer, resend, req, probes);
        self.schedule_timer(machine, self.cfg.timeout_for(next_attempt), epoch);
    }

    /// An idle agent's wake fired: probe a random online peer.
    fn initiate(&mut self, machine: MachineId, probes: &mut ProbeHub) {
        if self.core.topology.num_online() < 2 {
            // Nobody to talk to. If churn may still revive someone, keep
            // waking; otherwise the process is over.
            let events = self.cfg.faults.sorted_topology_events();
            if self.next_topo >= events.len() {
                self.pending_stop.get_or_insert(RunOutcome::Quiescent);
            } else {
                let epoch = self.agents[machine.idx()].epoch;
                self.schedule_timer(machine, self.cfg.think(), epoch);
            }
            return;
        }
        let peers: Vec<MachineId> = self
            .core
            .topology
            .online_iter()
            .filter(|&p| p != machine)
            .collect();
        let peer = peers[self.core.rng.gen_range(0..peers.len())];
        let serial = self.agents[machine.idx()].fresh_serial();
        let req = ReqId {
            origin: machine,
            serial,
        };
        let epoch = self.agents[machine.idx()].transition(AgentState::AwaitProbe {
            peer,
            serial,
            attempt: 0,
        });
        self.send(machine, peer, Msg::ProbeRequest, req, probes);
        self.schedule_timer(machine, self.cfg.timeout_for(0), epoch);
    }

    fn handle_msg(&mut self, env: Envelope, probes: &mut ProbeHub) {
        let me = env.to;
        match env.msg {
            Msg::ProbeRequest => {
                // Load queries are stateless: answer whatever we're doing.
                let load = self.core.asg.load(me);
                self.send(me, env.from, Msg::ProbeResponse { load }, env.req, probes);
            }
            Msg::ProbeResponse { .. } => {
                let AgentState::AwaitProbe { peer, serial, .. } = self.agents[me.idx()].state
                else {
                    return;
                };
                if env.from != peer || env.req.origin != me || env.req.serial != serial {
                    return; // stale or duplicated response
                }
                // The peer answered: propose the exchange. The offer
                // keeps the conversation's ReqId; the retry budget
                // restarts for the new phase.
                let epoch = self.agents[me.idx()].transition(AgentState::AwaitAccept {
                    peer,
                    serial,
                    attempt: 0,
                });
                self.send(me, peer, Msg::Offer, env.req, probes);
                self.schedule_timer(me, self.cfg.timeout_for(0), epoch);
            }
            Msg::Offer => {
                if self.agents[me.idx()].accepts_offer_from(env.from) {
                    let epoch = self.agents[me.idx()].transition(AgentState::Engaged {
                        peer: env.from,
                        serial: env.req.serial,
                    });
                    self.send(me, env.from, Msg::Accept, env.req, probes);
                    self.schedule_timer(me, self.cfg.lease(), epoch);
                } else {
                    self.send(me, env.from, Msg::Reject, env.req, probes);
                }
            }
            Msg::Accept => {
                let AgentState::AwaitAccept { peer, serial, .. } = self.agents[me.idx()].state
                else {
                    return;
                };
                if env.from != peer || env.req.origin != me || env.req.serial != serial {
                    return; // stale accept; the sender's lease will expire
                }
                let (changed, jobs_moved) =
                    balance_counting_moves(self.core.inst, self.core.asg, self.balancer, me, peer);
                probes.emit(
                    &self.core,
                    &SimEvent::Exchange {
                        a: me,
                        b: peer,
                        changed,
                        jobs_moved,
                    },
                );
                self.core.round += 1;
                self.exchanges += 1;
                if changed {
                    self.effective += 1;
                    self.jobs_moved_total += jobs_moved;
                    self.quiet = 0;
                } else {
                    self.quiet += 1;
                }
                self.send(me, peer, Msg::Commit, env.req, probes);
                self.go_idle(me);
                if let Some(stop) = probes.after_round(&self.core) {
                    self.pending_stop.get_or_insert(stop.into());
                }
                if self.cfg.quiescence_window > 0 && self.quiet >= self.cfg.quiescence_window {
                    self.pending_stop
                        .get_or_insert(StopReason::Quiescent.into());
                }
                if self.exchanges >= self.cfg.max_exchanges {
                    self.pending_stop.get_or_insert(RunOutcome::BudgetExhausted);
                }
            }
            Msg::Reject => {
                let AgentState::AwaitAccept { peer, serial, .. } = self.agents[me.idx()].state
                else {
                    return;
                };
                if env.from == peer && env.req.origin == me && env.req.serial == serial {
                    self.go_idle(me);
                }
            }
            Msg::Commit => {
                let AgentState::Engaged { peer, serial } = self.agents[me.idx()].state else {
                    return;
                };
                if env.from == peer && env.req.serial == serial {
                    self.go_idle(me);
                }
            }
        }
    }

    /// Hands a message to the network. The message's fate (partition
    /// cut, random drop, duplication) is decided here, at send time,
    /// from the run's RNG stream; surviving copies are scheduled for
    /// delivery after a sampled latency.
    fn send(
        &mut self,
        from: MachineId,
        to: MachineId,
        msg: Msg,
        req: ReqId,
        probes: &mut ProbeHub,
    ) {
        let kind = msg.kind();
        self.msgs_sent += 1;
        probes.emit(&self.core, &SimEvent::MsgSent { from, to, kind });
        let cut = self.cfg.faults.partitioned(self.now, from, to);
        let dropped = cut || self.roll(self.cfg.faults.drop_permille);
        if dropped {
            probes.emit(&self.core, &SimEvent::MsgDropped { from, to, kind });
            return;
        }
        let copies = if self.roll(self.cfg.faults.dup_permille) {
            2
        } else {
            1
        };
        for copy in 0..copies {
            if copy > 0 {
                // The duplicate is its own network-level send.
                self.msgs_sent += 1;
                probes.emit(&self.core, &SimEvent::MsgSent { from, to, kind });
            }
            let lat = self
                .cfg
                .latency
                .sample(self.core.inst, from, to, &mut self.core.rng);
            self.queue.push(
                self.now + lat,
                Event::Deliver(Envelope {
                    from,
                    to,
                    req,
                    msg,
                    sent_at: self.now,
                }),
            );
        }
    }

    /// Bernoulli roll at `permille / 1000`; never touches the RNG when
    /// the probability is zero.
    fn roll(&mut self, permille: u16) -> bool {
        permille > 0 && self.core.rng.gen_range(0..1000) < u32::from(permille)
    }
}

/// Runs the message-passing gossip protocol to completion and collects
/// the standard result set.
///
/// The convenience entry point mirroring `run_gossip`: assembles the
/// series and message probes, drives [`NetSim`], and packages a
/// [`NetRun`]. Embedders wanting custom observation build a [`NetSim`]
/// and pass their own [`ProbeHub`].
pub fn run_net(
    inst: &Instance,
    asg: &mut Assignment,
    balancer: &dyn PairwiseBalancer,
    cfg: &NetConfig,
) -> Result<NetRun> {
    let mut series = SeriesProbe::new(cfg.record_every);
    let mut msgs = NetMsgProbe::new();
    let summary = {
        let mut hub = ProbeHub::new();
        hub.push(&mut series).push(&mut msgs);
        let mut sim = NetSim::new(inst, asg, balancer, cfg);
        sim.run(&mut hub)?
    };
    Ok(NetRun {
        final_makespan: summary.final_makespan,
        exchanges: summary.exchanges,
        effective_exchanges: summary.effective_exchanges,
        jobs_moved: summary.jobs_moved,
        msg: msgs.stats,
        end_time: summary.end_time,
        outcome: summary.outcome,
        makespan_series: series.series,
        trace_digest: summary.trace_digest,
    })
}

/// Runs `replications` independent network experiments in parallel on
/// `threads` workers (0 = rayon default), in replication order.
///
/// The network analogue of [`lb_distsim::replicate`]: replication `r`
/// builds its start state from `make_start(r)` and seeds the run with
/// `cfg.seed + r` (the workspace stream convention), so results are
/// reproducible from one base seed and identical for any thread count.
pub fn replicate_net<F>(
    cfg: &NetConfig,
    balancer: &(dyn PairwiseBalancer + Sync),
    replications: u64,
    threads: usize,
    make_start: F,
) -> Vec<Result<NetRun>>
where
    F: Fn(u64) -> (Instance, Assignment) + Sync,
{
    lb_distsim::fan_out_threads(replications, threads, |r| {
        let (inst, mut asg) = make_start(r);
        let run_cfg = NetConfig {
            seed: cfg.seed.wrapping_add(r),
            ..cfg.clone()
        };
        run_net(&inst, &mut asg, balancer, &run_cfg)
    })
}
