//! The event-driven network simulator.
//!
//! [`NetSim`] runs one [`Agent`] per machine against the
//! [`EventQueue`]: agents exchange [`Envelope`]s through a network that
//! delays ([`crate::latency::LatencyModel`]), loses, duplicates, and
//! partitions them ([`crate::fault::FaultPlan`]), and recover from every
//! loss through epoch-guarded timers with capped exponential backoff.
//!
//! The protocol carried over the messages is the paper's gossip
//! dynamic: an initiator probes a random peer's load, offers an
//! exchange, and on `Accept` runs the configured [`PairwiseBalancer`]
//! on the pair — `Dlb2cBalance` gives the message-passing port of DLB2C
//! (Algorithm 7), `EctPairBalance` the OJTB-style port (Algorithm 3).
//!
//! # Two-phase job custody
//!
//! The balancer's move list is **not** applied where it is computed.
//! The initiator logs it as a [`TransferIntent`] and ships it in
//! `Prepare`; the target logs the intent, answers `Prepared`, and
//! applies the moves only when the initiator's `Commit` arrives —
//! each move guarded by its recorded owner, so a move whose job was
//! reclaimed in the meantime (or whose destination died) is skipped
//! instead of stealing the job back. A crash at *any* point of the
//! handshake leaves every job owned by exactly one machine:
//! un-committed intents die with the target's lease, and an initiator
//! that gives up before `Prepared` has applied nothing.
//!
//! A *completed* exchange (a `Commit` the target applied) is the net
//! analogue of a driver round: it advances `SimCore::round`, so the
//! round-keyed probes (`SeriesProbe`, `QuiescenceProbe`, CSV series)
//! work unchanged.
//!
//! Machine failures park the dead machine's jobs on it under a custody
//! lease ([`NetConfig::job_lease_time`]); online survivors reclaim
//! whatever is still parked when the lease expires. What a rejoin means
//! is the plan's [`crate::fault::CrashSemantics`]: a crash-recovery
//! machine returning within the lease keeps its jobs (`RejoinSynced`),
//! a crash-stop machine returns empty and its jobs are reclaimed by the
//! *other* survivors at the rejoin.
//!
//! # Determinism
//!
//! A run is a pure function of `(instance, initial assignment,
//! NetConfig)`:
//!
//! * the queue pops in `(time, seq)` order — ties resolve by push order,
//!   never by pointer identity or hash order;
//! * every random decision (peer choice, latency sample, drop /
//!   duplication rolls, initial wake jitter, reclamation scatter) draws
//!   from the run's single RNG stream (stream 0 of the seed) in event
//!   order;
//! * drop and partition outcomes are decided at *send* time, so a
//!   message's fate is sealed before any concurrent event can reorder
//!   the stream.
//!
//! `tests/net_determinism.rs` asserts trace-digest equality across
//! repeated runs and across rayon thread-pool sizes.

use crate::agent::{Agent, AgentState, TransferIntent};
use crate::config::NetConfig;
use crate::event::{Event, EventQueue};
use crate::fault::CrashSemantics;
use crate::msg::{Envelope, JobMove, Msg, ReqId, TransferPlan};
use lb_core::PairwiseBalancer;
use lb_distsim::probe::{NetMsgProbe, NetMsgStats, SeriesProbe};
use lb_distsim::{
    InvariantProbe, ProbeHub, RunOutcome, SimCore, SimEvent, StopReason, TopologyEvent,
};
use lb_model::prelude::*;
use rand::Rng;
use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;

/// Result of a network run (see [`run_net`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetRun {
    /// Final makespan over all machines.
    pub final_makespan: Time,
    /// Completed exchanges (`Commit`s the target applied) — the net
    /// round count.
    pub exchanges: u64,
    /// Completed exchanges that moved at least one job.
    pub effective_exchanges: u64,
    /// Total jobs moved by completed exchanges (custody reclamations not
    /// included).
    pub jobs_moved: u64,
    /// Message accounting (sent / dropped / timeouts, per kind).
    pub msg: NetMsgStats,
    /// Virtual time at which the run ended.
    pub end_time: u64,
    /// Why the run ended.
    pub outcome: RunOutcome,
    /// `(completed exchanges, makespan)` series at the configured
    /// cadence.
    pub makespan_series: Vec<(u64, Time)>,
    /// Order-sensitive digest of every processed event; equal digests
    /// mean identical runs (the determinism tests compare these).
    pub trace_digest: u64,
    /// Jobs that sat on a machine at the moment it failed.
    pub jobs_at_risk: u64,
    /// Jobs re-homed to survivors by custody-lease expiry or crash-stop
    /// rejoins.
    pub jobs_reclaimed: u64,
    /// Jobs kept by crash-recovery machines that rejoined within their
    /// custody lease.
    pub jobs_resynced: u64,
    /// Invariant violations, when [`NetConfig::check_invariants`] was
    /// set (empty otherwise, and hopefully also with it set).
    pub invariant_violations: Vec<String>,
}

impl NetRun {
    /// Whether the run settled (stopped by quiescence rather than a
    /// budget).
    pub fn settled(&self) -> bool {
        self.outcome == RunOutcome::Quiescent
    }
}

/// What [`NetSim::run`] measured (the probe-independent core of a
/// [`NetRun`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetSummary {
    /// Why the run ended.
    pub outcome: RunOutcome,
    /// Virtual time at which the run ended.
    pub end_time: u64,
    /// Completed exchanges.
    pub exchanges: u64,
    /// Completed exchanges that moved at least one job.
    pub effective_exchanges: u64,
    /// Jobs moved by completed exchanges.
    pub jobs_moved: u64,
    /// Final makespan over all machines.
    pub final_makespan: Time,
    /// Order-sensitive digest of every processed event.
    pub trace_digest: u64,
    /// Jobs parked on machines when they failed.
    pub jobs_at_risk: u64,
    /// Jobs re-homed to survivors by the custody machinery.
    pub jobs_reclaimed: u64,
    /// Jobs kept through crash-recovery re-syncs.
    pub jobs_resynced: u64,
}

/// The simulator: composable with any [`ProbeHub`] (see [`run_net`] for
/// the batteries-included entry point).
pub struct NetSim<'a, 'b> {
    core: SimCore<'a>,
    balancer: &'b dyn PairwiseBalancer,
    cfg: &'b NetConfig,
    queue: EventQueue,
    agents: Vec<Agent>,
    now: u64,
    next_topo: usize,
    /// Custody leases of failed machines: `(machine, expiry time)`.
    /// Jobs stay parked on the dead machine until the expiry fires (or a
    /// rejoin resolves the entry first).
    reclaims: Vec<(MachineId, u64)>,
    msgs_sent: u64,
    exchanges: u64,
    effective: u64,
    jobs_moved_total: u64,
    jobs_at_risk: u64,
    jobs_reclaimed: u64,
    jobs_resynced: u64,
    quiet: u64,
    pending_stop: Option<RunOutcome>,
    hasher: DefaultHasher,
}

impl<'a, 'b> NetSim<'a, 'b> {
    /// A simulator over `asg`, balancing with `balancer` under `cfg`.
    pub fn new(
        inst: &'a Instance,
        asg: &'a mut Assignment,
        balancer: &'b dyn PairwiseBalancer,
        cfg: &'b NetConfig,
    ) -> Self {
        let m = inst.num_machines();
        Self {
            core: SimCore::new(inst, asg, cfg.seed),
            balancer,
            cfg,
            queue: EventQueue::new(),
            agents: vec![Agent::new(); m],
            now: 0,
            next_topo: 0,
            reclaims: Vec::new(),
            msgs_sent: 0,
            exchanges: 0,
            effective: 0,
            jobs_moved_total: 0,
            jobs_at_risk: 0,
            jobs_reclaimed: 0,
            jobs_resynced: 0,
            quiet: 0,
            pending_stop: None,
            hasher: DefaultHasher::new(),
        }
    }

    /// Runs the simulation to completion, reporting through `probes`.
    ///
    /// Errors when the fault plan's churn cannot be absorbed
    /// ([`LbError::NoOnlineMachines`]: jobs await reclamation but no
    /// machine will ever be online again).
    pub fn run(&mut self, probes: &mut ProbeHub) -> Result<NetSummary> {
        probes.on_start(&self.core);
        // Initial wakes, jittered inside [1, think] to de-synchronize
        // the fleet (machine index order, so the draws are reproducible).
        let think = self.cfg.think();
        for i in 0..self.core.inst.num_machines() {
            let machine = MachineId::from_idx(i);
            if self.core.topology.is_online(machine) {
                let delay = self.core.rng.gen_range(1..=think);
                self.schedule_timer(machine, delay, self.agents[i].epoch);
            }
        }
        let mut outcome = RunOutcome::Quiescent; // queue drained = nothing to do
        while let Some((t, ev)) = self.queue.pop() {
            if t > self.cfg.max_time {
                outcome = RunOutcome::BudgetExhausted;
                break;
            }
            self.apply_topology_up_to(t, probes)?;
            self.now = self.now.max(t);
            self.digest_event(t, &ev);
            match ev {
                Event::Timer { machine, epoch } => {
                    if epoch == self.agents[machine.idx()].epoch {
                        self.handle_timer(machine, probes);
                    }
                }
                Event::Deliver(env) => {
                    if !self.core.topology.is_online(env.to) {
                        probes.emit(
                            &self.core,
                            &SimEvent::MsgDropped {
                                from: env.from,
                                to: env.to,
                                kind: env.msg.kind(),
                            },
                        );
                    } else {
                        self.handle_msg(env, probes);
                    }
                }
            }
            if self.msgs_sent >= self.cfg.max_msgs {
                self.pending_stop.get_or_insert(RunOutcome::BudgetExhausted);
            }
            if let Some(stop) = self.pending_stop.take() {
                outcome = stop;
                break;
            }
        }
        // Late churn events and pending reclamations still apply
        // (mirrors `drive_with_plan`).
        self.apply_topology_up_to(u64::MAX, probes)?;
        probes.on_finish(&self.core);
        self.hasher.write_u64(self.exchanges);
        self.hasher.write_u64(self.msgs_sent);
        Ok(NetSummary {
            outcome,
            end_time: self.now,
            exchanges: self.exchanges,
            effective_exchanges: self.effective,
            jobs_moved: self.jobs_moved_total,
            final_makespan: self.core.makespan(),
            trace_digest: self.hasher.finish(),
            jobs_at_risk: self.jobs_at_risk,
            jobs_reclaimed: self.jobs_reclaimed,
            jobs_resynced: self.jobs_resynced,
        })
    }

    /// Messages handed to the network so far (send attempts, duplicates
    /// included).
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent
    }

    fn digest_event(&mut self, t: u64, ev: &Event) {
        self.hasher.write_u64(t);
        match ev {
            Event::Timer { machine, epoch } => {
                self.hasher.write_u8(0);
                self.hasher.write_u64(machine.idx() as u64);
                self.hasher.write_u64(*epoch);
            }
            Event::Deliver(env) => {
                self.hasher.write_u8(1);
                self.hasher.write_u64(env.from.idx() as u64);
                self.hasher.write_u64(env.to.idx() as u64);
                self.hasher.write_u64(env.req.serial);
                self.hasher.write_u8(env.msg.kind().idx() as u8);
            }
        }
    }

    /// Applies topology events and due custody reclamations with time
    /// key `<= t`, in merged time order (topology first on ties, so a
    /// rejoin at the lease's expiry instant still re-syncs).
    fn apply_topology_up_to(&mut self, t: u64, probes: &mut ProbeHub) -> Result<()> {
        loop {
            let events = self.cfg.faults.sorted_topology_events();
            let next_te = (self.next_topo < events.len())
                .then(|| events[self.next_topo].0)
                .filter(|&te| te <= t);
            let next_rc = self
                .reclaims
                .iter()
                .enumerate()
                .filter(|(_, &(_, due))| due <= t)
                .min_by_key(|(_, &(_, due))| due)
                .map(|(i, &(_, due))| (i, due));
            match (next_te, next_rc) {
                (None, None) => return Ok(()),
                (Some(te), Some((_, due))) if te <= due => self.apply_one_topo(te, probes)?,
                (Some(te), None) => self.apply_one_topo(te, probes)?,
                (None, Some((i, _))) | (Some(_), Some((i, _))) => self.reclaim_one(i, probes)?,
            }
        }
    }

    fn apply_one_topo(&mut self, te: u64, probes: &mut ProbeHub) -> Result<()> {
        let (_, ev) = self.cfg.faults.sorted_topology_events()[self.next_topo];
        self.next_topo += 1;
        let jobs_scattered = match ev {
            TopologyEvent::Fail(machine) => {
                self.core.set_online(machine, false);
                let agent = &mut self.agents[machine.idx()];
                agent.transition(AgentState::Offline);
                // The crash loses the in-flight exchange (a logged but
                // un-committed intent applies nothing anywhere); the
                // machine's *jobs* stay parked on it under the custody
                // lease instead of teleporting to survivors.
                agent.intent = None;
                self.jobs_at_risk += self.core.asg.num_jobs_on(machine) as u64;
                self.reclaims.retain(|&(m, _)| m != machine);
                self.reclaims
                    .push((machine, te.saturating_add(self.cfg.job_lease())));
                0
            }
            TopologyEvent::Rejoin(machine) => {
                self.core.set_online(machine, true);
                let agent = &mut self.agents[machine.idx()];
                let epoch = agent.transition(AgentState::Idle);
                agent.intent = None;
                let base = te.max(self.now);
                let think = self.cfg.think();
                self.queue
                    .push(base + think, Event::Timer { machine, epoch });
                self.resolve_rejoin_custody(machine, probes)?
            }
        };
        probes.emit(
            &self.core,
            &SimEvent::Topology {
                event: ev,
                jobs_scattered,
            },
        );
        Ok(())
    }

    /// A machine rejoined while (possibly) holding a custody lease.
    /// Resolves the lease per the plan's [`CrashSemantics`]; returns the
    /// jobs re-homed off the machine, for the `Topology` event.
    fn resolve_rejoin_custody(&mut self, machine: MachineId, probes: &mut ProbeHub) -> Result<u64> {
        let Some(pos) = self.reclaims.iter().position(|&(m, _)| m == machine) else {
            return Ok(0); // lease already resolved; the machine rejoins empty-handed
        };
        self.reclaims.remove(pos);
        let parked = self.core.asg.num_jobs_on(machine) as u64;
        match self.cfg.faults.crash {
            CrashSemantics::Recovery => {
                // Came back with state intact, inside the lease: keep
                // the jobs and re-sync.
                self.jobs_resynced += parked;
                probes.emit(
                    &self.core,
                    &SimEvent::RejoinSynced {
                        machine,
                        jobs: parked,
                    },
                );
                Ok(0)
            }
            CrashSemantics::Stop => {
                // A crash-stop rejoin is a fresh empty node: whatever is
                // still parked moves to the *other* online machines.
                let targets: Vec<MachineId> = self
                    .core
                    .topology
                    .online_iter()
                    .filter(|&m| m != machine)
                    .collect();
                if targets.is_empty() {
                    // Sole survivor: there is no other replica to
                    // reclaim to, so the node keeps the only copy
                    // (conservation beats semantics purity here).
                    self.jobs_resynced += parked;
                    probes.emit(
                        &self.core,
                        &SimEvent::RejoinSynced {
                            machine,
                            jobs: parked,
                        },
                    );
                    return Ok(0);
                }
                let moved = self.scatter_jobs(machine, &targets);
                self.jobs_reclaimed += moved;
                Ok(moved)
            }
        }
    }

    /// Reclaims entry `i` of the lease table (its expiry is due): the
    /// jobs still parked on the dead machine scatter to online
    /// survivors. With no survivor the entry is deferred until the next
    /// topology event can revive one — or the run errors if none ever
    /// will.
    fn reclaim_one(&mut self, i: usize, probes: &mut ProbeHub) -> Result<()> {
        let (machine, _) = self.reclaims[i];
        if self.core.topology.is_online(machine) {
            // A rejoin resolved this lease already (defensive; rejoins
            // remove their entry).
            self.reclaims.remove(i);
            return Ok(());
        }
        let targets: Vec<MachineId> = self.core.topology.online_iter().collect();
        if targets.is_empty() {
            let events = self.cfg.faults.sorted_topology_events();
            if self.next_topo >= events.len() {
                if self.core.asg.num_jobs_on(machine) == 0 {
                    self.reclaims.remove(i);
                    return Ok(());
                }
                return Err(LbError::NoOnlineMachines);
            }
            // Defer to the next topology event (a rejoin may provide a
            // survivor); the merged loop processes that event first.
            self.reclaims[i].1 = events[self.next_topo].0;
            return Ok(());
        }
        self.reclaims.remove(i);
        let jobs = self.scatter_jobs(machine, &targets);
        self.jobs_reclaimed += jobs;
        probes.emit(&self.core, &SimEvent::Reclaimed { machine, jobs });
        Ok(())
    }

    /// Moves every job on `machine` to a uniformly random member of
    /// `targets` (one draw per job, in job-list order). Returns the
    /// number moved.
    fn scatter_jobs(&mut self, machine: MachineId, targets: &[MachineId]) -> u64 {
        // Draw destinations in job-list order (the RNG stream is part of
        // the determinism contract), then commit the wave through the
        // adaptive applier — sequential replay below its threshold,
        // machine-batched above, identical bytes either way.
        let batch: MigrationBatch = self
            .core
            .asg
            .jobs_on(machine)
            .to_vec()
            .into_iter()
            .map(|j| (j, targets[self.core.rng.gen_range(0..targets.len())]))
            .collect();
        let moved = batch.len() as u64;
        self.core.asg.apply_migrations(self.core.inst, &batch);
        moved
    }

    fn schedule_timer(&mut self, machine: MachineId, delay: u64, epoch: u64) {
        self.queue
            .push(self.now + delay.max(1), Event::Timer { machine, epoch });
    }

    /// Returns the agent to `Idle` and arms its next initiation wake.
    ///
    /// The pause is drawn uniformly from `[1, think]` rather than fixed:
    /// with constant latencies a fixed pause makes every agent's
    /// probe/offer/reject cycle exactly periodic, and an unlucky initial
    /// phase alignment then rejects *every* offer forever (a lockstep
    /// livelock the first smoke test actually hit). Randomizing the
    /// pause drifts the phases apart, so accept windows always reopen.
    fn go_idle(&mut self, machine: MachineId) {
        let epoch = self.agents[machine.idx()].transition(AgentState::Idle);
        let pause = self.core.rng.gen_range(1..=self.cfg.think());
        self.schedule_timer(machine, pause, epoch);
    }

    fn handle_timer(&mut self, machine: MachineId, probes: &mut ProbeHub) {
        match self.agents[machine.idx()].state {
            AgentState::Idle => self.initiate(machine, probes),
            AgentState::AwaitProbe { peer, attempt, .. } => {
                self.on_request_timeout(machine, peer, attempt, Msg::ProbeRequest, probes);
            }
            AgentState::AwaitAccept { peer, attempt, .. } => {
                self.on_request_timeout(machine, peer, attempt, Msg::Offer, probes);
            }
            AgentState::AwaitPrepared {
                peer,
                serial,
                attempt,
            } => {
                self.on_intent_timeout(machine, peer, serial, attempt, false, probes);
            }
            AgentState::AwaitAck {
                peer,
                serial,
                attempt,
            } => {
                self.on_intent_timeout(machine, peer, serial, attempt, true, probes);
            }
            AgentState::Engaged { peer, .. } => {
                // The initiator went quiet: release the lease so the
                // machine can exchange again, discarding any prepared
                // but never-committed intent — the crash-safety rule
                // that lets an initiator die between Prepare and Commit
                // without stranding custody.
                probes.emit(
                    &self.core,
                    &SimEvent::ExchangeTimedOut {
                        agent: machine,
                        peer,
                        attempt: 0,
                    },
                );
                self.agents[machine.idx()].intent = None;
                self.go_idle(machine);
            }
            AgentState::Offline => {}
        }
    }

    /// A request timed out: retry the phase with a fresh serial under
    /// backoff, or give up once the retry budget is spent.
    fn on_request_timeout(
        &mut self,
        machine: MachineId,
        peer: MachineId,
        attempt: u32,
        resend: Msg,
        probes: &mut ProbeHub,
    ) {
        probes.emit(
            &self.core,
            &SimEvent::ExchangeTimedOut {
                agent: machine,
                peer,
                attempt,
            },
        );
        if attempt >= self.cfg.max_retries {
            self.go_idle(machine);
            return;
        }
        let next_attempt = attempt + 1;
        let serial = self.agents[machine.idx()].fresh_serial();
        let req = ReqId {
            origin: machine,
            serial,
        };
        let state = match resend {
            Msg::ProbeRequest => AgentState::AwaitProbe {
                peer,
                serial,
                attempt: next_attempt,
            },
            _ => AgentState::AwaitAccept {
                peer,
                serial,
                attempt: next_attempt,
            },
        };
        let epoch = self.agents[machine.idx()].transition(state);
        self.send(machine, peer, resend, req, probes);
        self.schedule_timer(machine, self.cfg.timeout_for(next_attempt), epoch);
    }

    /// A `Prepare` or `Commit` went unanswered. Unlike the probe/offer
    /// phases these re-send the logged intent under the **same** serial
    /// — they continue one exchange, they do not open a new
    /// conversation. Once the retry budget is spent the initiator drops
    /// the intent and idles: nothing was applied on this side, and the
    /// target either never prepared (nothing to undo) or will release
    /// its lease (un-committed intent discarded) or has applied the
    /// commit (it owns the result) — jobs are conserved in every case.
    fn on_intent_timeout(
        &mut self,
        machine: MachineId,
        peer: MachineId,
        serial: u64,
        attempt: u32,
        committed: bool,
        probes: &mut ProbeHub,
    ) {
        probes.emit(
            &self.core,
            &SimEvent::ExchangeTimedOut {
                agent: machine,
                peer,
                attempt,
            },
        );
        let agent = &mut self.agents[machine.idx()];
        if attempt >= self.cfg.max_retries {
            agent.intent = None;
            self.go_idle(machine);
            return;
        }
        let next_attempt = attempt + 1;
        let resend = if committed {
            Msg::Commit
        } else {
            let Some(intent) = agent.intent_matching(peer, serial) else {
                // Intent lost (cannot normally happen): abandon cleanly.
                self.go_idle(machine);
                return;
            };
            Msg::Prepare {
                plan: intent.plan.clone(),
            }
        };
        let state = if committed {
            AgentState::AwaitAck {
                peer,
                serial,
                attempt: next_attempt,
            }
        } else {
            AgentState::AwaitPrepared {
                peer,
                serial,
                attempt: next_attempt,
            }
        };
        let epoch = self.agents[machine.idx()].transition(state);
        let req = ReqId {
            origin: machine,
            serial,
        };
        self.send(machine, peer, resend, req, probes);
        self.schedule_timer(machine, self.cfg.timeout_for(next_attempt), epoch);
    }

    /// An idle agent's wake fired: probe a random online peer.
    fn initiate(&mut self, machine: MachineId, probes: &mut ProbeHub) {
        if self.core.topology.num_online() < 2 {
            // Nobody to talk to. If churn may still revive someone, keep
            // waking; otherwise the process is over (pending custody
            // reclamations flush after the loop).
            let events = self.cfg.faults.sorted_topology_events();
            if self.next_topo >= events.len() {
                self.pending_stop.get_or_insert(RunOutcome::Quiescent);
            } else {
                let epoch = self.agents[machine.idx()].epoch;
                self.schedule_timer(machine, self.cfg.think(), epoch);
            }
            return;
        }
        let peers: Vec<MachineId> = self
            .core
            .topology
            .online_iter()
            .filter(|&p| p != machine)
            .collect();
        let peer = peers[self.core.rng.gen_range(0..peers.len())];
        let serial = self.agents[machine.idx()].fresh_serial();
        let req = ReqId {
            origin: machine,
            serial,
        };
        let epoch = self.agents[machine.idx()].transition(AgentState::AwaitProbe {
            peer,
            serial,
            attempt: 0,
        });
        self.send(machine, peer, Msg::ProbeRequest, req, probes);
        self.schedule_timer(machine, self.cfg.timeout_for(0), epoch);
    }

    /// Runs the balancer on the pair **without applying anything**:
    /// snapshots both job lists, lets the balancer rewrite the pair,
    /// diffs, then reverts every move. The returned plan is what
    /// `Prepare` ships and what the target applies at commit.
    fn plan_pair_moves(&mut self, a: MachineId, b: MachineId) -> TransferPlan {
        let before_a: Vec<JobId> = self.core.asg.jobs_on(a).to_vec();
        let before_b: Vec<JobId> = self.core.asg.jobs_on(b).to_vec();
        let changed = self.balancer.balance(self.core.inst, self.core.asg, a, b);
        if !changed {
            return TransferPlan::default();
        }
        let mut moves = Vec::new();
        for &j in self.core.asg.jobs_on(b) {
            if before_a.contains(&j) {
                moves.push(JobMove {
                    job: j,
                    from: a,
                    to: b,
                });
            }
        }
        for &j in self.core.asg.jobs_on(a) {
            if before_b.contains(&j) {
                moves.push(JobMove {
                    job: j,
                    from: b,
                    to: a,
                });
            }
        }
        // Revert: custody only changes when the target commits.
        let revert: MigrationBatch = moves.iter().map(|mv| (mv.job, mv.from)).collect();
        self.core.asg.apply_migrations(self.core.inst, &revert);
        TransferPlan { moves }
    }

    /// Applies a committed plan, move by move, each move guarded: a job
    /// no longer owned by its recorded `from` (reclaimed while the
    /// handshake was in flight) is skipped, as is a move whose
    /// destination is offline (jobs never move *onto* a dead machine —
    /// dead machines only drain, which keeps the one-shot reclamation at
    /// lease expiry airtight). Returns `(any move applied, moves
    /// applied)`.
    fn apply_plan(&mut self, plan: &TransferPlan) -> (bool, u64) {
        // Every job appears at most once per plan (the two legs of an
        // exchange are disjoint job sets), so the guards are independent
        // of each other and can all be evaluated against the pre-commit
        // state before the surviving moves commit as one wave.
        let batch: MigrationBatch = plan
            .moves
            .iter()
            .filter(|mv| {
                self.core.asg.machine_of(mv.job) == mv.from && self.core.topology.is_online(mv.to)
            })
            .map(|mv| (mv.job, mv.to))
            .collect();
        let moved = batch.len() as u64;
        self.core.asg.apply_migrations(self.core.inst, &batch);
        (moved > 0, moved)
    }

    /// The target applied a commit (or an exchange completed without
    /// one): account the completed exchange and run the round-keyed stop
    /// checks.
    fn complete_exchange(
        &mut self,
        initiator: MachineId,
        target: MachineId,
        changed: bool,
        jobs_moved: u64,
        probes: &mut ProbeHub,
    ) {
        probes.emit(
            &self.core,
            &SimEvent::Exchange {
                a: initiator,
                b: target,
                changed,
                jobs_moved,
            },
        );
        self.core.round += 1;
        self.exchanges += 1;
        if changed {
            self.effective += 1;
            self.jobs_moved_total += jobs_moved;
            self.quiet = 0;
        } else {
            self.quiet += 1;
        }
        if let Some(stop) = probes.after_round(&self.core) {
            self.pending_stop.get_or_insert(stop.into());
        }
        if self.cfg.quiescence_window > 0 && self.quiet >= self.cfg.quiescence_window {
            self.pending_stop
                .get_or_insert(StopReason::Quiescent.into());
        }
        if self.exchanges >= self.cfg.max_exchanges {
            self.pending_stop.get_or_insert(RunOutcome::BudgetExhausted);
        }
    }

    fn handle_msg(&mut self, env: Envelope, probes: &mut ProbeHub) {
        let me = env.to;
        match env.msg {
            Msg::ProbeRequest => {
                // Load queries are stateless: answer whatever we're doing.
                let load = self.core.asg.load(me);
                self.send(me, env.from, Msg::ProbeResponse { load }, env.req, probes);
            }
            Msg::ProbeResponse { .. } => {
                let AgentState::AwaitProbe { peer, serial, .. } = self.agents[me.idx()].state
                else {
                    return;
                };
                if env.from != peer || env.req.origin != me || env.req.serial != serial {
                    return; // stale or duplicated response
                }
                // The peer answered: propose the exchange. The offer
                // keeps the conversation's ReqId; the retry budget
                // restarts for the new phase.
                let epoch = self.agents[me.idx()].transition(AgentState::AwaitAccept {
                    peer,
                    serial,
                    attempt: 0,
                });
                self.send(me, peer, Msg::Offer, env.req, probes);
                self.schedule_timer(me, self.cfg.timeout_for(0), epoch);
            }
            Msg::Offer => {
                if self.agents[me.idx()].accepts_offer_from(env.from) {
                    let agent = &mut self.agents[me.idx()];
                    // A *new* conversation invalidates any intent left
                    // from an older serial with the same peer; a
                    // re-offer of the current conversation keeps its
                    // prepared intent.
                    if agent.intent_matching(env.from, env.req.serial).is_none() {
                        agent.intent = None;
                    }
                    let epoch = agent.transition(AgentState::Engaged {
                        peer: env.from,
                        serial: env.req.serial,
                    });
                    self.send(me, env.from, Msg::Accept, env.req, probes);
                    self.schedule_timer(me, self.cfg.lease(), epoch);
                } else {
                    self.send(me, env.from, Msg::Reject, env.req, probes);
                }
            }
            Msg::Accept => {
                let AgentState::AwaitAccept { peer, serial, .. } = self.agents[me.idx()].state
                else {
                    return;
                };
                if env.from != peer || env.req.origin != me || env.req.serial != serial {
                    return; // stale accept; the sender's lease will expire
                }
                // Phase one: compute the plan, log the intent, ship it.
                // Nothing is applied yet on either side. An *empty* plan
                // still runs the full handshake so the completed
                // exchange is counted on the target — quiescence
                // detection counts completed no-op exchanges.
                let plan = self.plan_pair_moves(me, peer);
                self.agents[me.idx()].intent = Some(TransferIntent {
                    peer,
                    serial,
                    plan: plan.clone(),
                    committed: false,
                });
                let epoch = self.agents[me.idx()].transition(AgentState::AwaitPrepared {
                    peer,
                    serial,
                    attempt: 0,
                });
                self.send(me, peer, Msg::Prepare { plan }, env.req, probes);
                self.schedule_timer(me, self.cfg.timeout_for(0), epoch);
            }
            Msg::Reject => {
                let AgentState::AwaitAccept { peer, serial, .. } = self.agents[me.idx()].state
                else {
                    return;
                };
                if env.from == peer && env.req.origin == me && env.req.serial == serial {
                    self.go_idle(me);
                }
            }
            Msg::Prepare { plan } => {
                // Target side: log the intent and hold it under the
                // lease. Only an engaged target for exactly this
                // conversation prepares; otherwise the lease has expired
                // and the initiator's Prepare retries will too.
                let AgentState::Engaged { peer, serial } = self.agents[me.idx()].state else {
                    return;
                };
                if env.from != peer || env.req.serial != serial {
                    return;
                }
                let agent = &mut self.agents[me.idx()];
                agent.intent = Some(TransferIntent {
                    peer,
                    serial,
                    plan,
                    committed: false,
                });
                // Re-arm the lease: the clock protects the *prepared*
                // intent now.
                let epoch = agent.transition(AgentState::Engaged { peer, serial });
                self.send(me, peer, Msg::Prepared, env.req, probes);
                self.schedule_timer(me, self.cfg.lease(), epoch);
            }
            Msg::Prepared => {
                let AgentState::AwaitPrepared { peer, serial, .. } = self.agents[me.idx()].state
                else {
                    return; // duplicate or stale
                };
                if env.from != peer || env.req.origin != me || env.req.serial != serial {
                    return;
                }
                // Phase two: the target holds the plan durably — commit.
                // From here on the exchange may have been applied, so the
                // intent is marked committed and only resolves forward.
                if let Some(intent) = self.agents[me.idx()].intent.as_mut() {
                    intent.committed = true;
                }
                let epoch = self.agents[me.idx()].transition(AgentState::AwaitAck {
                    peer,
                    serial,
                    attempt: 0,
                });
                self.send(me, peer, Msg::Commit, env.req, probes);
                self.schedule_timer(me, self.cfg.timeout_for(0), epoch);
            }
            Msg::Commit => {
                // Target side: apply the prepared intent exactly once.
                if self.agents[me.idx()]
                    .intent_matching(env.from, env.req.serial)
                    .is_some()
                {
                    let plan = self.agents[me.idx()]
                        .intent
                        .take()
                        .expect("matched above")
                        .plan;
                    let (changed, jobs_moved) = self.apply_plan(&plan);
                    self.send(me, env.from, Msg::Ack, env.req, probes);
                    self.go_idle(me);
                    self.complete_exchange(env.from, me, changed, jobs_moved, probes);
                } else {
                    // No pending intent: this commit was already applied
                    // (duplicate / retry after a lost Ack) or its lease
                    // expired. Re-ack idempotently; never re-apply.
                    self.send(me, env.from, Msg::Ack, env.req, probes);
                }
            }
            Msg::Ack => {
                let AgentState::AwaitAck { peer, serial, .. } = self.agents[me.idx()].state else {
                    return; // stale ack (already resolved)
                };
                if env.from != peer || env.req.origin != me || env.req.serial != serial {
                    return;
                }
                // The exchange is fully resolved on the target; forget
                // the intent.
                self.agents[me.idx()].intent = None;
                self.go_idle(me);
            }
        }
    }

    /// Hands a message to the network. The message's fate (partition
    /// cut, random drop, duplication) is decided here, at send time,
    /// from the run's RNG stream; surviving copies are scheduled for
    /// delivery after a sampled latency.
    fn send(
        &mut self,
        from: MachineId,
        to: MachineId,
        msg: Msg,
        req: ReqId,
        probes: &mut ProbeHub,
    ) {
        let kind = msg.kind();
        self.msgs_sent += 1;
        probes.emit(&self.core, &SimEvent::MsgSent { from, to, kind });
        let cut = self.cfg.faults.partitioned(self.now, from, to);
        let dropped = cut || self.roll(self.cfg.faults.drop_permille);
        if dropped {
            probes.emit(&self.core, &SimEvent::MsgDropped { from, to, kind });
            return;
        }
        let copies = if self.roll(self.cfg.faults.dup_permille) {
            2
        } else {
            1
        };
        for copy in 0..copies {
            if copy > 0 {
                // The duplicate is its own network-level send.
                self.msgs_sent += 1;
                probes.emit(&self.core, &SimEvent::MsgSent { from, to, kind });
            }
            let lat = self
                .cfg
                .latency
                .sample(self.core.inst, from, to, &mut self.core.rng);
            self.queue.push(
                self.now + lat,
                Event::Deliver(Envelope {
                    from,
                    to,
                    req,
                    msg: msg.clone(),
                    sent_at: self.now,
                }),
            );
        }
    }

    /// Bernoulli roll at `permille / 1000`; never touches the RNG when
    /// the probability is zero.
    fn roll(&mut self, permille: u16) -> bool {
        permille > 0 && self.core.rng.gen_range(0..1000) < u32::from(permille)
    }
}

/// Runs the message-passing gossip protocol to completion and collects
/// the standard result set.
///
/// The convenience entry point mirroring `run_gossip`: assembles the
/// series and message probes (plus the invariant checker when
/// [`NetConfig::check_invariants`] is set — registered last, so probe
/// accounting is identical with it off), drives [`NetSim`], and
/// packages a [`NetRun`]. Embedders wanting custom observation build a
/// [`NetSim`] and pass their own [`ProbeHub`].
pub fn run_net(
    inst: &Instance,
    asg: &mut Assignment,
    balancer: &dyn PairwiseBalancer,
    cfg: &NetConfig,
) -> Result<NetRun> {
    let mut series = SeriesProbe::new(cfg.record_every);
    let mut msgs = NetMsgProbe::new();
    let mut invariants = InvariantProbe::fail_fast();
    let summary = {
        let mut hub = ProbeHub::new();
        hub.push(&mut series).push(&mut msgs);
        if cfg.check_invariants {
            hub.push(&mut invariants);
        }
        let mut sim = NetSim::new(inst, asg, balancer, cfg);
        sim.run(&mut hub)?
    };
    Ok(NetRun {
        final_makespan: summary.final_makespan,
        exchanges: summary.exchanges,
        effective_exchanges: summary.effective_exchanges,
        jobs_moved: summary.jobs_moved,
        msg: msgs.stats,
        end_time: summary.end_time,
        outcome: summary.outcome,
        makespan_series: series.series,
        trace_digest: summary.trace_digest,
        jobs_at_risk: summary.jobs_at_risk,
        jobs_reclaimed: summary.jobs_reclaimed,
        jobs_resynced: summary.jobs_resynced,
        invariant_violations: invariants.reports(),
    })
}

/// Runs `replications` independent network experiments in parallel on
/// `threads` workers (0 = rayon default), in replication order.
///
/// The network analogue of [`lb_distsim::replicate`]: replication `r`
/// builds its start state from `make_start(r)` and seeds the run with
/// `cfg.seed + r` (the workspace stream convention), so results are
/// reproducible from one base seed and identical for any thread count.
pub fn replicate_net<F>(
    cfg: &NetConfig,
    balancer: &(dyn PairwiseBalancer + Sync),
    replications: u64,
    threads: usize,
    make_start: F,
) -> Vec<Result<NetRun>>
where
    F: Fn(u64) -> (Instance, Assignment) + Sync,
{
    lb_distsim::fan_out_threads(replications, threads, |r| {
        let (inst, mut asg) = make_start(r);
        let run_cfg = NetConfig {
            seed: cfg.seed.wrapping_add(r),
            ..cfg.clone()
        };
        run_net(&inst, &mut asg, balancer, &run_cfg)
    })
}
