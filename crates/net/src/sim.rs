//! The event-driven network simulator.
//!
//! [`NetSim`] runs one [`Agent`] per machine against the
//! [`EventQueue`]: agents exchange [`Envelope`]s through a network that
//! delays ([`crate::latency::LatencyModel`]), loses, duplicates, and
//! partitions them ([`crate::fault::FaultPlan`]), and recover from every
//! loss through epoch-guarded timers with capped exponential backoff.
//!
//! The protocol carried over the messages is the paper's gossip
//! dynamic: an initiator probes a random peer's load, offers an
//! exchange, and on `Accept` runs the configured [`PairwiseBalancer`]
//! on the pair — `Dlb2cBalance` gives the message-passing port of DLB2C
//! (Algorithm 7), `EctPairBalance` the OJTB-style port (Algorithm 3).
//!
//! The protocol *body* — every probe/offer/accept/prepare/commit
//! handler, the retry and lease machinery — lives in [`crate::proto`]
//! and is shared verbatim with the real-socket daemon; this module
//! supplies the deterministic host: the event queue, the virtual
//! clock, the fault injection at send time, and the shared-assignment
//! implementation of [`ProtoCtx`].
//!
//! # Two-phase job custody
//!
//! The balancer's move list is **not** applied where it is computed.
//! The initiator logs it as a [`TransferIntent`] and ships it in
//! `Prepare`; the target logs the intent, answers `Prepared`, and
//! applies the moves only when the initiator's `Commit` arrives —
//! each move guarded by its recorded owner, so a move whose job was
//! reclaimed in the meantime (or whose destination died) is skipped
//! instead of stealing the job back. A crash at *any* point of the
//! handshake leaves every job owned by exactly one machine:
//! un-committed intents die with the target's lease, and an initiator
//! that gives up before `Prepared` has applied nothing.
//!
//! A *completed* exchange (a `Commit` the target applied) is the net
//! analogue of a driver round: it advances `SimCore::round`, so the
//! round-keyed probes (`SeriesProbe`, `QuiescenceProbe`, CSV series)
//! work unchanged.
//!
//! Machine failures park the dead machine's jobs on it under a custody
//! lease ([`NetConfig::job_lease_time`]); online survivors reclaim
//! whatever is still parked when the lease expires. What a rejoin means
//! is the plan's [`crate::fault::CrashSemantics`]: a crash-recovery
//! machine returning within the lease keeps its jobs (`RejoinSynced`),
//! a crash-stop machine returns empty and its jobs are reclaimed by the
//! *other* survivors at the rejoin.
//!
//! # Determinism
//!
//! A run is a pure function of `(instance, initial assignment,
//! NetConfig)`:
//!
//! * the queue pops in `(time, seq)` order — ties resolve by push order,
//!   never by pointer identity or hash order;
//! * every random decision (peer choice, latency sample, drop /
//!   duplication rolls, initial wake jitter, reclamation scatter) draws
//!   from the run's single RNG stream (stream 0 of the seed) in event
//!   order;
//! * drop and partition outcomes are decided at *send* time, so a
//!   message's fate is sealed before any concurrent event can reorder
//!   the stream.
//!
//! `tests/net_determinism.rs` asserts trace-digest equality across
//! repeated runs and across rayon thread-pool sizes.

use crate::agent::{Agent, AgentState};
use crate::config::NetConfig;
use crate::event::{Event, EventQueue};
use crate::fault::CrashSemantics;
use crate::msg::{Envelope, JobMove, Msg, ReqId, TransferPlan};
use crate::proto::{self, ProtoCtx};
use lb_core::PairwiseBalancer;
use lb_distsim::probe::{NetMsgProbe, NetMsgStats, SeriesProbe};
use lb_distsim::{
    InvariantProbe, ProbeHub, RunOutcome, SimCore, SimEvent, StopReason, TopologyEvent,
};
use lb_model::prelude::*;
use rand::Rng;
use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;

/// Result of a network run (see [`run_net`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetRun {
    /// Final makespan over all machines.
    pub final_makespan: Time,
    /// Completed exchanges (`Commit`s the target applied) — the net
    /// round count.
    pub exchanges: u64,
    /// Completed exchanges that moved at least one job.
    pub effective_exchanges: u64,
    /// Total jobs moved by completed exchanges (custody reclamations not
    /// included).
    pub jobs_moved: u64,
    /// Message accounting (sent / dropped / timeouts, per kind).
    pub msg: NetMsgStats,
    /// Virtual time at which the run ended.
    pub end_time: u64,
    /// Why the run ended.
    pub outcome: RunOutcome,
    /// `(completed exchanges, makespan)` series at the configured
    /// cadence.
    pub makespan_series: Vec<(u64, Time)>,
    /// Order-sensitive digest of every processed event; equal digests
    /// mean identical runs (the determinism tests compare these).
    pub trace_digest: u64,
    /// Jobs that sat on a machine at the moment it failed.
    pub jobs_at_risk: u64,
    /// Jobs re-homed to survivors by custody-lease expiry or crash-stop
    /// rejoins.
    pub jobs_reclaimed: u64,
    /// Jobs kept by crash-recovery machines that rejoined within their
    /// custody lease.
    pub jobs_resynced: u64,
    /// Invariant violations, when [`NetConfig::check_invariants`] was
    /// set (empty otherwise, and hopefully also with it set).
    pub invariant_violations: Vec<String>,
}

impl NetRun {
    /// Whether the run settled (stopped by quiescence rather than a
    /// budget).
    pub fn settled(&self) -> bool {
        self.outcome == RunOutcome::Quiescent
    }
}

/// What [`NetSim::run`] measured (the probe-independent core of a
/// [`NetRun`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetSummary {
    /// Why the run ended.
    pub outcome: RunOutcome,
    /// Virtual time at which the run ended.
    pub end_time: u64,
    /// Completed exchanges.
    pub exchanges: u64,
    /// Completed exchanges that moved at least one job.
    pub effective_exchanges: u64,
    /// Jobs moved by completed exchanges.
    pub jobs_moved: u64,
    /// Final makespan over all machines.
    pub final_makespan: Time,
    /// Order-sensitive digest of every processed event.
    pub trace_digest: u64,
    /// Jobs parked on machines when they failed.
    pub jobs_at_risk: u64,
    /// Jobs re-homed to survivors by the custody machinery.
    pub jobs_reclaimed: u64,
    /// Jobs kept through crash-recovery re-syncs.
    pub jobs_resynced: u64,
}

/// Everything of the simulator *except* the agents: the virtual host
/// the protocol body runs against. Split out so the run loop can lend a
/// single agent to [`crate::proto`] (`&mut Agent`) while the context
/// ([`SimCtx`]) borrows the rest of the simulator mutably.
struct SimInner<'a, 'b> {
    core: SimCore<'a>,
    balancer: &'b dyn PairwiseBalancer,
    cfg: &'b NetConfig,
    queue: EventQueue,
    now: u64,
    next_topo: usize,
    /// Custody leases of failed machines: `(machine, expiry time)`.
    /// Jobs stay parked on the dead machine until the expiry fires (or a
    /// rejoin resolves the entry first).
    reclaims: Vec<(MachineId, u64)>,
    msgs_sent: u64,
    exchanges: u64,
    effective: u64,
    jobs_moved_total: u64,
    jobs_at_risk: u64,
    jobs_reclaimed: u64,
    jobs_resynced: u64,
    quiet: u64,
    pending_stop: Option<RunOutcome>,
    hasher: DefaultHasher,
}

/// The simulator: composable with any [`ProbeHub`] (see [`run_net`] for
/// the batteries-included entry point).
pub struct NetSim<'a, 'b> {
    agents: Vec<Agent>,
    inner: SimInner<'a, 'b>,
}

impl<'a, 'b> NetSim<'a, 'b> {
    /// A simulator over `asg`, balancing with `balancer` under `cfg`.
    pub fn new(
        inst: &'a Instance,
        asg: &'a mut Assignment,
        balancer: &'b dyn PairwiseBalancer,
        cfg: &'b NetConfig,
    ) -> Self {
        let m = inst.num_machines();
        Self {
            agents: vec![Agent::new(); m],
            inner: SimInner {
                core: SimCore::new(inst, asg, cfg.seed),
                balancer,
                cfg,
                queue: EventQueue::new(),
                now: 0,
                next_topo: 0,
                reclaims: Vec::new(),
                msgs_sent: 0,
                exchanges: 0,
                effective: 0,
                jobs_moved_total: 0,
                jobs_at_risk: 0,
                jobs_reclaimed: 0,
                jobs_resynced: 0,
                quiet: 0,
                pending_stop: None,
                hasher: DefaultHasher::new(),
            },
        }
    }

    /// Runs the simulation to completion, reporting through `probes`.
    ///
    /// Errors when the fault plan's churn cannot be absorbed
    /// ([`LbError::NoOnlineMachines`]: jobs await reclamation but no
    /// machine will ever be online again).
    pub fn run(&mut self, probes: &mut ProbeHub) -> Result<NetSummary> {
        let inner = &mut self.inner;
        probes.on_start(&inner.core);
        // Initial wakes, jittered inside [1, think] to de-synchronize
        // the fleet (machine index order, so the draws are reproducible).
        let think = inner.cfg.think();
        for i in 0..inner.core.inst.num_machines() {
            let machine = MachineId::from_idx(i);
            if inner.core.topology.is_online(machine) {
                let delay = inner.core.rng.gen_range(1..=think);
                inner.schedule_timer(machine, delay, self.agents[i].epoch);
            }
        }
        let mut outcome = RunOutcome::Quiescent; // queue drained = nothing to do
        while let Some((t, ev)) = self.inner.queue.pop() {
            if t > self.inner.cfg.max_time {
                outcome = RunOutcome::BudgetExhausted;
                break;
            }
            self.apply_topology_up_to(t, probes)?;
            self.inner.now = self.inner.now.max(t);
            self.inner.digest_event(t, &ev);
            match ev {
                Event::Timer { machine, epoch } => {
                    if epoch == self.agents[machine.idx()].epoch {
                        self.dispatch(machine, probes, |agent, ctx| {
                            proto::on_timer(agent, machine, ctx);
                        });
                    }
                }
                Event::Deliver(env) => {
                    if !self.inner.core.topology.is_online(env.to) {
                        probes.emit(
                            &self.inner.core,
                            &SimEvent::MsgDropped {
                                from: env.from,
                                to: env.to,
                                kind: env.msg.kind(),
                            },
                        );
                    } else {
                        let me = env.to;
                        self.dispatch(me, probes, |agent, ctx| {
                            proto::on_msg(agent, me, env, ctx);
                        });
                    }
                }
            }
            if self.inner.msgs_sent >= self.inner.cfg.max_msgs {
                self.inner
                    .pending_stop
                    .get_or_insert(RunOutcome::BudgetExhausted);
            }
            if let Some(stop) = self.inner.pending_stop.take() {
                outcome = stop;
                break;
            }
        }
        // Late churn events and pending reclamations still apply
        // (mirrors `drive_with_plan`).
        self.apply_topology_up_to(u64::MAX, probes)?;
        let inner = &mut self.inner;
        probes.on_finish(&inner.core);
        inner.hasher.write_u64(inner.exchanges);
        inner.hasher.write_u64(inner.msgs_sent);
        Ok(NetSummary {
            outcome,
            end_time: inner.now,
            exchanges: inner.exchanges,
            effective_exchanges: inner.effective,
            jobs_moved: inner.jobs_moved_total,
            final_makespan: inner.core.makespan(),
            trace_digest: inner.hasher.finish(),
            jobs_at_risk: inner.jobs_at_risk,
            jobs_reclaimed: inner.jobs_reclaimed,
            jobs_resynced: inner.jobs_resynced,
        })
    }

    /// Messages handed to the network so far (send attempts, duplicates
    /// included).
    pub fn msgs_sent(&self) -> u64 {
        self.inner.msgs_sent
    }

    /// Lends agent `machine` to a protocol handler alongside a
    /// [`SimCtx`] over the rest of the simulator. The agent is taken out
    /// of the vector for the duration (handlers only ever touch the
    /// receiving agent, so the hole is never observed) and put back
    /// afterwards.
    fn dispatch<F>(&mut self, machine: MachineId, probes: &mut ProbeHub, f: F)
    where
        F: FnOnce(&mut Agent, &mut SimCtx<'_, '_, 'a, 'b>),
    {
        let mut agent = std::mem::take(&mut self.agents[machine.idx()]);
        {
            let mut ctx = SimCtx {
                sim: &mut self.inner,
                probes,
            };
            f(&mut agent, &mut ctx);
        }
        self.agents[machine.idx()] = agent;
    }

    /// Applies topology events and due custody reclamations with time
    /// key `<= t`, in merged time order (topology first on ties, so a
    /// rejoin at the lease's expiry instant still re-syncs).
    fn apply_topology_up_to(&mut self, t: u64, probes: &mut ProbeHub) -> Result<()> {
        loop {
            let events = self.inner.cfg.faults.sorted_topology_events();
            let next_te = (self.inner.next_topo < events.len())
                .then(|| events[self.inner.next_topo].0)
                .filter(|&te| te <= t);
            let next_rc = self
                .inner
                .reclaims
                .iter()
                .enumerate()
                .filter(|(_, &(_, due))| due <= t)
                .min_by_key(|(_, &(_, due))| due)
                .map(|(i, &(_, due))| (i, due));
            match (next_te, next_rc) {
                (None, None) => return Ok(()),
                (Some(te), Some((_, due))) if te <= due => self.apply_one_topo(te, probes)?,
                (Some(te), None) => self.apply_one_topo(te, probes)?,
                (None, Some((i, _))) | (Some(_), Some((i, _))) => {
                    self.inner.reclaim_one(i, probes)?
                }
            }
        }
    }

    fn apply_one_topo(&mut self, te: u64, probes: &mut ProbeHub) -> Result<()> {
        let inner = &mut self.inner;
        let (_, ev) = inner.cfg.faults.sorted_topology_events()[inner.next_topo];
        inner.next_topo += 1;
        let jobs_scattered = match ev {
            TopologyEvent::Fail(machine) => {
                inner.core.set_online(machine, false);
                let agent = &mut self.agents[machine.idx()];
                agent.transition(AgentState::Offline);
                // The crash loses the in-flight exchange (a logged but
                // un-committed intent applies nothing anywhere); the
                // machine's *jobs* stay parked on it under the custody
                // lease instead of teleporting to survivors.
                agent.intent = None;
                inner.jobs_at_risk += inner.core.asg.num_jobs_on(machine) as u64;
                inner.reclaims.retain(|&(m, _)| m != machine);
                inner
                    .reclaims
                    .push((machine, te.saturating_add(inner.cfg.job_lease())));
                0
            }
            TopologyEvent::Rejoin(machine) => {
                inner.core.set_online(machine, true);
                let agent = &mut self.agents[machine.idx()];
                let epoch = agent.transition(AgentState::Idle);
                agent.intent = None;
                let base = te.max(inner.now);
                let think = inner.cfg.think();
                inner
                    .queue
                    .push(base + think, Event::Timer { machine, epoch });
                inner.resolve_rejoin_custody(machine, probes)?
            }
        };
        probes.emit(
            &inner.core,
            &SimEvent::Topology {
                event: ev,
                jobs_scattered,
            },
        );
        Ok(())
    }
}

impl<'a, 'b> SimInner<'a, 'b> {
    /// A machine rejoined while (possibly) holding a custody lease.
    /// Resolves the lease per the plan's [`CrashSemantics`]; returns the
    /// jobs re-homed off the machine, for the `Topology` event.
    fn resolve_rejoin_custody(&mut self, machine: MachineId, probes: &mut ProbeHub) -> Result<u64> {
        let Some(pos) = self.reclaims.iter().position(|&(m, _)| m == machine) else {
            return Ok(0); // lease already resolved; the machine rejoins empty-handed
        };
        self.reclaims.remove(pos);
        let parked = self.core.asg.num_jobs_on(machine) as u64;
        match self.cfg.faults.crash {
            CrashSemantics::Recovery => {
                // Came back with state intact, inside the lease: keep
                // the jobs and re-sync.
                self.jobs_resynced += parked;
                probes.emit(
                    &self.core,
                    &SimEvent::RejoinSynced {
                        machine,
                        jobs: parked,
                    },
                );
                Ok(0)
            }
            CrashSemantics::Stop => {
                // A crash-stop rejoin is a fresh empty node: whatever is
                // still parked moves to the *other* online machines.
                let targets: Vec<MachineId> = self
                    .core
                    .topology
                    .online_iter()
                    .filter(|&m| m != machine)
                    .collect();
                if targets.is_empty() {
                    // Sole survivor: there is no other replica to
                    // reclaim to, so the node keeps the only copy
                    // (conservation beats semantics purity here).
                    self.jobs_resynced += parked;
                    probes.emit(
                        &self.core,
                        &SimEvent::RejoinSynced {
                            machine,
                            jobs: parked,
                        },
                    );
                    return Ok(0);
                }
                let moved = self.scatter_jobs(machine, &targets);
                self.jobs_reclaimed += moved;
                Ok(moved)
            }
        }
    }

    /// Reclaims entry `i` of the lease table (its expiry is due): the
    /// jobs still parked on the dead machine scatter to online
    /// survivors. With no survivor the entry is deferred until the next
    /// topology event can revive one — or the run errors if none ever
    /// will.
    fn reclaim_one(&mut self, i: usize, probes: &mut ProbeHub) -> Result<()> {
        let (machine, _) = self.reclaims[i];
        if self.core.topology.is_online(machine) {
            // A rejoin resolved this lease already (defensive; rejoins
            // remove their entry).
            self.reclaims.remove(i);
            return Ok(());
        }
        let targets: Vec<MachineId> = self.core.topology.online_iter().collect();
        if targets.is_empty() {
            let events = self.cfg.faults.sorted_topology_events();
            if self.next_topo >= events.len() {
                if self.core.asg.num_jobs_on(machine) == 0 {
                    self.reclaims.remove(i);
                    return Ok(());
                }
                return Err(LbError::NoOnlineMachines);
            }
            // Defer to the next topology event (a rejoin may provide a
            // survivor); the merged loop processes that event first.
            self.reclaims[i].1 = events[self.next_topo].0;
            return Ok(());
        }
        self.reclaims.remove(i);
        let jobs = self.scatter_jobs(machine, &targets);
        self.jobs_reclaimed += jobs;
        probes.emit(&self.core, &SimEvent::Reclaimed { machine, jobs });
        Ok(())
    }

    /// Moves every job on `machine` to a uniformly random member of
    /// `targets` (one draw per job, in job-list order). Returns the
    /// number moved.
    fn scatter_jobs(&mut self, machine: MachineId, targets: &[MachineId]) -> u64 {
        // Draw destinations in job-list order (the RNG stream is part of
        // the determinism contract), then commit the wave through the
        // adaptive applier — sequential replay below its threshold,
        // machine-batched above, identical bytes either way.
        let batch: MigrationBatch = self
            .core
            .asg
            .jobs_on(machine)
            .to_vec()
            .into_iter()
            .map(|j| (j, targets[self.core.rng.gen_range(0..targets.len())]))
            .collect();
        let moved = batch.len() as u64;
        self.core.asg.apply_migrations(self.core.inst, &batch);
        moved
    }

    fn schedule_timer(&mut self, machine: MachineId, delay: u64, epoch: u64) {
        self.queue
            .push(self.now + delay.max(1), Event::Timer { machine, epoch });
    }

    fn digest_event(&mut self, t: u64, ev: &Event) {
        self.hasher.write_u64(t);
        match ev {
            Event::Timer { machine, epoch } => {
                self.hasher.write_u8(0);
                self.hasher.write_u64(machine.idx() as u64);
                self.hasher.write_u64(*epoch);
            }
            Event::Deliver(env) => {
                self.hasher.write_u8(1);
                self.hasher.write_u64(env.from.idx() as u64);
                self.hasher.write_u64(env.to.idx() as u64);
                self.hasher.write_u64(env.req.serial);
                self.hasher.write_u8(env.msg.kind().idx() as u8);
            }
        }
    }

    /// Hands a message to the network. The message's fate (partition
    /// cut, random drop, duplication) is decided here, at send time,
    /// from the run's RNG stream; surviving copies are scheduled for
    /// delivery after a sampled latency.
    fn send(
        &mut self,
        from: MachineId,
        to: MachineId,
        msg: Msg,
        req: ReqId,
        probes: &mut ProbeHub,
    ) {
        let kind = msg.kind();
        self.msgs_sent += 1;
        probes.emit(&self.core, &SimEvent::MsgSent { from, to, kind });
        let cut = self.cfg.faults.partitioned(self.now, from, to);
        let dropped = cut || self.roll(self.cfg.faults.drop_permille);
        if dropped {
            probes.emit(&self.core, &SimEvent::MsgDropped { from, to, kind });
            return;
        }
        let copies = if self.roll(self.cfg.faults.dup_permille) {
            2
        } else {
            1
        };
        for copy in 0..copies {
            if copy > 0 {
                // The duplicate is its own network-level send.
                self.msgs_sent += 1;
                probes.emit(&self.core, &SimEvent::MsgSent { from, to, kind });
            }
            let lat = self
                .cfg
                .latency
                .sample(self.core.inst, from, to, &mut self.core.rng);
            self.queue.push(
                self.now + lat,
                Event::Deliver(Envelope {
                    from,
                    to,
                    req,
                    msg: msg.clone(),
                    sent_at: self.now,
                }),
            );
        }
    }

    /// Bernoulli roll at `permille / 1000`; never touches the RNG when
    /// the probability is zero.
    fn roll(&mut self, permille: u16) -> bool {
        permille > 0 && self.core.rng.gen_range(0..1000) < u32::from(permille)
    }
}

/// The simulator's [`ProtoCtx`]: virtual clock, shared assignment,
/// single RNG stream. Every policy answer here reproduces the
/// pre-extraction engine bit for bit — the RNG draw order (peer pick,
/// send fate, idle jitter) is part of the determinism contract and is
/// pinned by the digest tests.
struct SimCtx<'c, 'p, 'a, 'b> {
    sim: &'c mut SimInner<'a, 'b>,
    probes: &'c mut ProbeHub<'p>,
}

impl ProtoCtx for SimCtx<'_, '_, '_, '_> {
    fn send(&mut self, from: MachineId, to: MachineId, msg: Msg, req: ReqId) {
        self.sim.send(from, to, msg, req, self.probes);
    }

    fn schedule_timer(&mut self, machine: MachineId, delay: u64, epoch: u64) {
        self.sim.schedule_timer(machine, delay, epoch);
    }

    fn timeout_for(&self, attempt: u32) -> u64 {
        self.sim.cfg.timeout_for(attempt)
    }

    fn lease(&self) -> u64 {
        self.sim.cfg.lease()
    }

    fn retry_budget(&self, _committed: bool) -> u32 {
        self.sim.cfg.max_retries
    }

    fn idle_pause(&mut self) -> u64 {
        let think = self.sim.cfg.think();
        self.sim.core.rng.gen_range(1..=think)
    }

    fn pick_peer(&mut self, me: MachineId, epoch: u64) -> Option<MachineId> {
        let sim = &mut *self.sim;
        if sim.core.topology.num_online() < 2 {
            // Nobody to talk to. If churn may still revive someone, keep
            // waking; otherwise the process is over (pending custody
            // reclamations flush after the loop).
            let events = sim.cfg.faults.sorted_topology_events();
            if sim.next_topo >= events.len() {
                sim.pending_stop.get_or_insert(RunOutcome::Quiescent);
            } else {
                sim.schedule_timer(me, sim.cfg.think(), epoch);
            }
            return None;
        }
        let peers: Vec<MachineId> = sim
            .core
            .topology
            .online_iter()
            .filter(|&p| p != me)
            .collect();
        Some(peers[sim.core.rng.gen_range(0..peers.len())])
    }

    fn local_load(&self, me: MachineId) -> Time {
        self.sim.core.asg.load(me)
    }

    fn engage_snapshot(&mut self, _me: MachineId) -> Vec<JobId> {
        // The planner reads the shared assignment directly; the Accept
        // carries no snapshot in simulation.
        Vec::new()
    }

    /// Runs the balancer on the pair **without applying anything**:
    /// snapshots both job lists, lets the balancer rewrite the pair,
    /// diffs, then reverts every move. The returned plan is what
    /// `Prepare` ships and what the target applies at commit.
    fn plan_moves(&mut self, a: MachineId, b: MachineId, _peer_jobs: &[JobId]) -> TransferPlan {
        let sim = &mut *self.sim;
        let before_a: Vec<JobId> = sim.core.asg.jobs_on(a).to_vec();
        let before_b: Vec<JobId> = sim.core.asg.jobs_on(b).to_vec();
        let changed = sim.balancer.balance(sim.core.inst, sim.core.asg, a, b);
        if !changed {
            return TransferPlan::default();
        }
        let mut moves = Vec::new();
        for &j in sim.core.asg.jobs_on(b) {
            if before_a.contains(&j) {
                moves.push(JobMove {
                    job: j,
                    from: a,
                    to: b,
                });
            }
        }
        for &j in sim.core.asg.jobs_on(a) {
            if before_b.contains(&j) {
                moves.push(JobMove {
                    job: j,
                    from: b,
                    to: a,
                });
            }
        }
        // Revert: custody only changes when the target commits.
        let revert: MigrationBatch = moves.iter().map(|mv| (mv.job, mv.from)).collect();
        sim.core.asg.apply_migrations(sim.core.inst, &revert);
        TransferPlan { moves }
    }

    /// Applies a committed plan, move by move, each move guarded: a job
    /// no longer owned by its recorded `from` (reclaimed while the
    /// handshake was in flight) is skipped, as is a move whose
    /// destination is offline (jobs never move *onto* a dead machine —
    /// dead machines only drain, which keeps the one-shot reclamation at
    /// lease expiry airtight). Returns `(any move applied, moves
    /// applied)`.
    fn apply_plan(
        &mut self,
        _me: MachineId,
        _peer: MachineId,
        _serial: u64,
        plan: &TransferPlan,
    ) -> (bool, u64) {
        let sim = &mut *self.sim;
        // Every job appears at most once per plan (the two legs of an
        // exchange are disjoint job sets), so the guards are independent
        // of each other and can all be evaluated against the pre-commit
        // state before the surviving moves commit as one wave.
        let batch: MigrationBatch = plan
            .moves
            .iter()
            .filter(|mv| {
                sim.core.asg.machine_of(mv.job) == mv.from && sim.core.topology.is_online(mv.to)
            })
            .map(|mv| (mv.job, mv.to))
            .collect();
        let moved = batch.len() as u64;
        sim.core.asg.apply_migrations(sim.core.inst, &batch);
        (moved > 0, moved)
    }

    fn on_timeout(&mut self, agent: MachineId, peer: MachineId, attempt: u32) {
        self.probes.emit(
            &self.sim.core,
            &SimEvent::ExchangeTimedOut {
                agent,
                peer,
                attempt,
            },
        );
    }

    /// The target applied a commit (or an exchange completed without
    /// one): account the completed exchange and run the round-keyed stop
    /// checks.
    fn on_complete(&mut self, initiator: MachineId, target: MachineId, changed: bool, moved: u64) {
        let sim = &mut *self.sim;
        self.probes.emit(
            &sim.core,
            &SimEvent::Exchange {
                a: initiator,
                b: target,
                changed,
                jobs_moved: moved,
            },
        );
        sim.core.round += 1;
        sim.exchanges += 1;
        if changed {
            sim.effective += 1;
            sim.jobs_moved_total += moved;
            sim.quiet = 0;
        } else {
            sim.quiet += 1;
        }
        if let Some(stop) = self.probes.after_round(&sim.core) {
            sim.pending_stop.get_or_insert(stop.into());
        }
        if sim.cfg.quiescence_window > 0 && sim.quiet >= sim.cfg.quiescence_window {
            sim.pending_stop.get_or_insert(StopReason::Quiescent.into());
        }
        if sim.exchanges >= sim.cfg.max_exchanges {
            sim.pending_stop.get_or_insert(RunOutcome::BudgetExhausted);
        }
    }
}

/// Runs the message-passing gossip protocol to completion and collects
/// the standard result set.
///
/// The convenience entry point mirroring `run_gossip`: assembles the
/// series and message probes (plus the invariant checker when
/// [`NetConfig::check_invariants`] is set — registered last, so probe
/// accounting is identical with it off), drives [`NetSim`], and
/// packages a [`NetRun`]. Embedders wanting custom observation build a
/// [`NetSim`] and pass their own [`ProbeHub`].
pub fn run_net(
    inst: &Instance,
    asg: &mut Assignment,
    balancer: &dyn PairwiseBalancer,
    cfg: &NetConfig,
) -> Result<NetRun> {
    let mut series = SeriesProbe::new(cfg.record_every);
    let mut msgs = NetMsgProbe::new();
    let mut invariants = InvariantProbe::fail_fast();
    let summary = {
        let mut hub = ProbeHub::new();
        hub.push(&mut series).push(&mut msgs);
        if cfg.check_invariants {
            hub.push(&mut invariants);
        }
        let mut sim = NetSim::new(inst, asg, balancer, cfg);
        sim.run(&mut hub)?
    };
    Ok(NetRun {
        final_makespan: summary.final_makespan,
        exchanges: summary.exchanges,
        effective_exchanges: summary.effective_exchanges,
        jobs_moved: summary.jobs_moved,
        msg: msgs.stats,
        end_time: summary.end_time,
        outcome: summary.outcome,
        makespan_series: series.series,
        trace_digest: summary.trace_digest,
        jobs_at_risk: summary.jobs_at_risk,
        jobs_reclaimed: summary.jobs_reclaimed,
        jobs_resynced: summary.jobs_resynced,
        invariant_violations: invariants.reports(),
    })
}

/// Runs `replications` independent network experiments in parallel on
/// `threads` workers (0 = rayon default), in replication order.
///
/// The network analogue of [`lb_distsim::replicate`]: replication `r`
/// builds its start state from `make_start(r)` and seeds the run with
/// `cfg.seed + r` (the workspace stream convention), so results are
/// reproducible from one base seed and identical for any thread count.
pub fn replicate_net<F>(
    cfg: &NetConfig,
    balancer: &(dyn PairwiseBalancer + Sync),
    replications: u64,
    threads: usize,
    make_start: F,
) -> Vec<Result<NetRun>>
where
    F: Fn(u64) -> (Instance, Assignment) + Sync,
{
    lb_distsim::fan_out_threads(replications, threads, |r| {
        let (inst, mut asg) = make_start(r);
        let run_cfg = NetConfig {
            seed: cfg.seed.wrapping_add(r),
            ..cfg.clone()
        };
        run_net(&inst, &mut asg, balancer, &run_cfg)
    })
}
