//! Fleet orchestration: the control-plane coordinator and the harnesses
//! that run a daemon fleet — deterministically in one process, or over
//! real TCP sockets.
//!
//! The **coordinator** is a pure event-driven state machine over a
//! [`Transport`], addressed as machine `m` (one past the instance's
//! machines). It never touches jobs itself; it watches
//! [`CtrlMsg::Report`] heartbeats, detects dead nodes by silence, runs
//! **freeze-the-world custody sweeps** ([`CtrlMsg::QueryHoldings`] /
//! [`CtrlMsg::Holdings`] / [`CtrlMsg::Resume`]), re-homes orphaned jobs
//! with [`CtrlMsg::Adopt`], and winds the run down with
//! [`CtrlMsg::Shutdown`], parking each parting node's custody under the
//! same [`LeaseTable`] the simulator's churn machinery uses.
//!
//! Because the coordinator is transport-generic, the *same* control
//! plane is exercised three ways:
//!
//! * [`run_fleet`] — N [`NodeRuntime`]s and the coordinator over one
//!   [`QueueTransport`] switchboard: fully deterministic, used by the
//!   conformance and chaos tests;
//! * [`run_loopback_fleet`] — N node threads each owning a
//!   [`TcpTransport`](crate::tcp::TcpTransport) on `127.0.0.1`, the
//!   coordinator on its own socket: real frames, real clocks, one
//!   process (the bench harness and `decent-lb daemon --nodes`);
//! * `decent-lb daemon --role …` — one process per machine, the
//!   CI smoke topology.

use crate::codec::CtrlMsg;
use crate::config::NetConfig;
use crate::fault::FaultPlan;
use crate::node::NodeRuntime;
use crate::tcp::{BoundListener, TcpOpts, TcpTransport};
use crate::transport::{FaultyTransport, QueueTransport, Transport, TransportEvent};
use lb_core::PairwiseBalancer;
use lb_distsim::custody::LeaseTable;
use lb_model::prelude::*;

/// Control-plane knobs (clock units are transport ticks: virtual ticks
/// on the deterministic switchboard, milliseconds over TCP).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoordOpts {
    /// A node is stable once its latest report's quiet streak reaches
    /// this; the fleet is stable when every live node is.
    pub stable_quiet: u64,
    /// A node that has not reported for this long is declared dead.
    pub death_timeout: u64,
    /// Coordinator housekeeping cadence (death checks, stability
    /// checks).
    pub heartbeat: u64,
    /// Hard wall on the whole run; exceeding it ends the run with
    /// [`FleetOutcome::timed_out`] set.
    pub max_runtime: u64,
}

impl Default for CoordOpts {
    fn default() -> Self {
        Self {
            stable_quiet: 6,
            death_timeout: 1_000,
            heartbeat: 50,
            max_runtime: 60_000,
        }
    }
}

/// What a fleet run produced (the daemon analogue of
/// [`crate::sim::NetSummary`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// Transport-clock span of the run.
    pub elapsed: u64,
    /// Completed exchanges, summed over the fleet's final reports.
    pub exchanges: u64,
    /// Exchanges that moved at least one job.
    pub effective: u64,
    /// Jobs that changed custody.
    pub jobs_moved: u64,
    /// Protocol messages sent.
    pub msgs_sent: u64,
    /// Exchange throughput over the run (`exchanges / elapsed`, in
    /// exchanges per second when the transport clock is milliseconds).
    pub exchanges_per_sec: f64,
    /// Message throughput over the run.
    pub msgs_per_sec: f64,
    /// Every job was in exactly one custody at every sweep and at the
    /// final parting.
    pub conserved: bool,
    /// Human-readable conservation/custody violations (empty when
    /// `conserved`).
    pub violations: Vec<String>,
    /// Custody sweeps performed.
    pub sweeps: u64,
    /// Nodes declared dead.
    pub deaths: u64,
    /// Jobs re-homed from dead nodes.
    pub adopted: u64,
    /// Machines whose parting custody is parked in the lease table.
    pub parked: usize,
    /// The run hit [`CoordOpts::max_runtime`] (or the deterministic
    /// schedule ran dry) before a clean shutdown.
    pub timed_out: bool,
    /// Per-machine load at the last report (index = machine).
    pub final_loads: Vec<Time>,
}

/// Why a sweep was started — decides what happens when it completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SweepReason {
    /// A node died: adopt orphans, then resume the fleet.
    Death,
    /// The fleet went stable: verify conservation, then shut down.
    Final,
}

/// Coordinator phase.
enum CoordState {
    /// Watching reports.
    Running,
    /// A sweep is collecting holdings; `pending[i]` marks nodes whose
    /// snapshot is still missing.
    Sweeping {
        token: u64,
        reason: SweepReason,
        pending: Vec<bool>,
        holdings: Vec<Option<Vec<JobId>>>,
    },
    /// Shutdown sent; collecting goodbyes.
    Draining,
    /// Every live node parted (or the run timed out).
    Done,
}

/// Last known state of one node, from the coordinator's chair.
#[derive(Debug, Clone, Default)]
struct NodeView {
    alive: bool,
    reported: bool,
    last_report_at: u64,
    exchanges: u64,
    effective: u64,
    jobs_moved: u64,
    msgs_sent: u64,
    quiet: u64,
    load: Time,
    parted: bool,
}

/// The control-plane state machine. Drive it like a node: arm with
/// [`Coordinator::start`], feed every transport event to
/// [`Coordinator::on_event`], stop when [`Coordinator::is_done`].
pub struct Coordinator<'i> {
    me: MachineId,
    inst: &'i Instance,
    opts: CoordOpts,
    job_lease: u64,
    nodes: Vec<NodeView>,
    state: CoordState,
    leases: LeaseTable,
    parked_jobs: Vec<Vec<JobId>>,
    violations: Vec<String>,
    started_at: u64,
    next_token: u64,
    sweeps: u64,
    deaths: u64,
    adopted: u64,
    timed_out: bool,
}

impl<'i> Coordinator<'i> {
    /// A coordinator for `inst`'s fleet. Its own transport address is
    /// `MachineId::from_idx(inst.num_machines())`.
    pub fn new(inst: &'i Instance, cfg: &NetConfig, opts: CoordOpts) -> Self {
        let m = inst.num_machines();
        Self {
            me: MachineId::from_idx(m),
            inst,
            opts,
            job_lease: cfg.job_lease(),
            nodes: vec![
                NodeView {
                    alive: true,
                    ..NodeView::default()
                };
                m
            ],
            state: CoordState::Running,
            leases: LeaseTable::new(),
            parked_jobs: vec![Vec::new(); m],
            violations: Vec::new(),
            started_at: 0,
            next_token: 1,
            sweeps: 0,
            deaths: 0,
            adopted: 0,
            timed_out: false,
        }
    }

    /// The coordinator's transport address.
    pub fn id(&self) -> MachineId {
        self.me
    }

    /// Arms the housekeeping heartbeat; call once before the loop.
    pub fn start<T: Transport>(&mut self, tx: &mut T) {
        self.started_at = tx.now();
        for view in &mut self.nodes {
            view.last_report_at = self.started_at;
        }
        tx.schedule_timer(self.me, self.opts.heartbeat, 0);
    }

    /// Whether the run is over (clean or timed out).
    pub fn is_done(&self) -> bool {
        matches!(self.state, CoordState::Done)
    }

    /// Feeds one transport event through the coordinator.
    pub fn on_event<T: Transport>(&mut self, ev: TransportEvent, tx: &mut T) {
        match ev {
            TransportEvent::Timer { machine, .. } if machine == self.me => {
                self.on_heartbeat(tx);
            }
            TransportEvent::Ctrl { from, to, msg }
                if to == self.me && from.idx() < self.nodes.len() =>
            {
                self.on_ctrl(from, msg, tx);
            }
            _ => {}
        }
    }

    /// Final tally; meaningful once [`Coordinator::is_done`] (or at the
    /// harness's deadline).
    pub fn outcome<T: Transport>(&mut self, tx: &mut T) -> FleetOutcome {
        let elapsed = tx.now().saturating_sub(self.started_at).max(1);
        let exchanges: u64 = self.nodes.iter().map(|n| n.exchanges).sum();
        let msgs_sent: u64 = self.nodes.iter().map(|n| n.msgs_sent).sum();
        let per_sec = |count: u64| count as f64 * 1_000.0 / elapsed as f64;
        FleetOutcome {
            elapsed,
            exchanges,
            effective: self.nodes.iter().map(|n| n.effective).sum(),
            jobs_moved: self.nodes.iter().map(|n| n.jobs_moved).sum(),
            msgs_sent,
            exchanges_per_sec: per_sec(exchanges),
            msgs_per_sec: per_sec(msgs_sent),
            conserved: self.violations.is_empty(),
            violations: self.violations.clone(),
            sweeps: self.sweeps,
            deaths: self.deaths,
            adopted: self.adopted,
            parked: self.leases.len(),
            timed_out: self.timed_out,
            final_loads: self.nodes.iter().map(|n| n.load).collect(),
        }
    }

    /// Marks the run as hitting its deadline (harness-driven).
    pub fn abort_timed_out(&mut self) {
        self.timed_out = true;
        self.state = CoordState::Done;
    }

    fn on_heartbeat<T: Transport>(&mut self, tx: &mut T) {
        let now = tx.now();
        if now.saturating_sub(self.started_at) >= self.opts.max_runtime {
            self.abort_timed_out();
            return;
        }
        self.check_deaths(now, tx);
        if let CoordState::Running = self.state {
            let stable = self
                .nodes
                .iter()
                .filter(|n| n.alive)
                .all(|n| n.reported && n.quiet >= self.opts.stable_quiet);
            let any_alive = self.nodes.iter().any(|n| n.alive);
            if stable && any_alive {
                self.begin_sweep(SweepReason::Final, tx);
            } else if !any_alive {
                // Everyone died: nothing left to balance or to ask.
                self.violations.push("entire fleet died".to_string());
                self.state = CoordState::Done;
            }
        }
        if !self.is_done() {
            tx.schedule_timer(self.me, self.opts.heartbeat, 0);
        }
    }

    fn check_deaths<T: Transport>(&mut self, now: u64, tx: &mut T) {
        let mut newly_dead = Vec::new();
        for (i, view) in self.nodes.iter_mut().enumerate() {
            if view.alive
                && !view.parted
                && now.saturating_sub(view.last_report_at) >= self.opts.death_timeout
            {
                view.alive = false;
                newly_dead.push(MachineId::from_idx(i));
            }
        }
        if newly_dead.is_empty() {
            return;
        }
        self.deaths += newly_dead.len() as u64;
        for &dead in &newly_dead {
            for i in 0..self.nodes.len() {
                if self.nodes[i].alive {
                    tx.send_ctrl(
                        self.me,
                        MachineId::from_idx(i),
                        CtrlMsg::PeerDead { machine: dead },
                    );
                }
            }
        }
        match &mut self.state {
            CoordState::Running => self.begin_sweep(SweepReason::Death, tx),
            CoordState::Sweeping {
                pending, reason, ..
            } => {
                // The sweep was waiting on a node that just died: stop
                // waiting for it, and make sure orphan adoption runs
                // when the sweep lands.
                *reason = SweepReason::Death;
                for &dead in &newly_dead {
                    pending[dead.idx()] = false;
                }
                self.try_finish_sweep(tx);
            }
            CoordState::Draining => {
                // A node died holding its parting custody: its goodbye
                // will never come. Whatever it held is lost to the run;
                // record the hole rather than hang.
                for &dead in &newly_dead {
                    self.violations
                        .push(format!("machine {} died while draining", dead.idx()));
                }
                self.try_finish_drain();
            }
            CoordState::Done => {}
        }
    }

    fn begin_sweep<T: Transport>(&mut self, reason: SweepReason, tx: &mut T) {
        let token = self.next_token;
        self.next_token += 1;
        self.sweeps += 1;
        let mut pending = vec![false; self.nodes.len()];
        for (i, view) in self.nodes.iter().enumerate() {
            if view.alive {
                pending[i] = true;
                tx.send_ctrl(
                    self.me,
                    MachineId::from_idx(i),
                    CtrlMsg::QueryHoldings { token },
                );
            }
        }
        self.state = CoordState::Sweeping {
            token,
            reason,
            pending,
            holdings: vec![None; self.nodes.len()],
        };
        self.try_finish_sweep(tx);
    }

    fn on_ctrl<T: Transport>(&mut self, from: MachineId, msg: CtrlMsg, tx: &mut T) {
        let now = tx.now();
        match msg {
            CtrlMsg::Report {
                exchanges,
                effective,
                jobs_moved,
                msgs_sent,
                quiet,
                load,
                holdings: _,
            } => {
                let view = &mut self.nodes[from.idx()];
                view.reported = true;
                view.last_report_at = now;
                view.exchanges = exchanges;
                view.effective = effective;
                view.jobs_moved = jobs_moved;
                view.msgs_sent = msgs_sent;
                view.quiet = quiet;
                view.load = load;
            }
            CtrlMsg::Holdings { token, jobs } => {
                self.nodes[from.idx()].last_report_at = now;
                if let CoordState::Sweeping {
                    token: want,
                    pending,
                    holdings,
                    ..
                } = &mut self.state
                {
                    if token == *want && pending[from.idx()] {
                        pending[from.idx()] = false;
                        holdings[from.idx()] = Some(jobs);
                        self.try_finish_sweep(tx);
                    }
                }
            }
            CtrlMsg::Goodbye { jobs } => {
                let view = &mut self.nodes[from.idx()];
                if !view.parted {
                    view.parted = true;
                    self.parked_jobs[from.idx()] = jobs;
                    self.leases.park(from, now.saturating_add(self.job_lease));
                    self.try_finish_drain();
                }
            }
            // Node-bound or transport-internal messages; a node never
            // legitimately sends these up.
            CtrlMsg::Hello { .. }
            | CtrlMsg::QueryHoldings { .. }
            | CtrlMsg::PeerDead { .. }
            | CtrlMsg::Adopt { .. }
            | CtrlMsg::Shutdown
            | CtrlMsg::Resume => {}
        }
    }

    /// If the in-flight sweep has every live node's snapshot, audits
    /// custody and either resumes the fleet (death sweep) or starts the
    /// shutdown drain (final sweep).
    fn try_finish_sweep<T: Transport>(&mut self, tx: &mut T) {
        let CoordState::Sweeping {
            reason, pending, ..
        } = &self.state
        else {
            return;
        };
        if pending.iter().any(|&p| p) {
            return;
        }
        let reason = *reason;
        let holdings = std::mem::take(match &mut self.state {
            CoordState::Sweeping { holdings, .. } => holdings,
            _ => unreachable!("matched above"),
        });
        // Custody audit: every job in at most one snapshot; jobs in
        // none are orphans (their holder died mid-run).
        let mut holder: Vec<Option<MachineId>> = vec![None; self.inst.num_jobs()];
        for (i, snap) in holdings.iter().enumerate() {
            let Some(snap) = snap else { continue };
            let machine = MachineId::from_idx(i);
            for &j in snap {
                if j.idx() >= holder.len() {
                    self.violations
                        .push(format!("machine {i} reported unknown job {}", j.idx()));
                    continue;
                }
                if let Some(other) = holder[j.idx()] {
                    self.violations.push(format!(
                        "job {} held by both machine {} and machine {i}",
                        j.idx(),
                        other.idx()
                    ));
                } else {
                    holder[j.idx()] = Some(machine);
                }
            }
        }
        let orphans: Vec<JobId> = holder
            .iter()
            .enumerate()
            .filter(|&(_, h)| h.is_none())
            .map(|(j, _)| JobId::from_idx(j))
            .collect();
        match reason {
            SweepReason::Death => {
                self.adopt(&orphans, tx);
                for (i, view) in self.nodes.iter().enumerate() {
                    if view.alive {
                        tx.send_ctrl(self.me, MachineId::from_idx(i), CtrlMsg::Resume);
                    }
                }
                self.state = CoordState::Running;
            }
            SweepReason::Final => {
                if !orphans.is_empty() {
                    // No death preceded this sweep, so a hole in the
                    // union is real custody loss, not a crash artifact.
                    self.violations.push(format!(
                        "{} jobs in no custody at final sweep (first: job {})",
                        orphans.len(),
                        orphans[0].idx()
                    ));
                }
                for (i, view) in self.nodes.iter().enumerate() {
                    if view.alive {
                        tx.send_ctrl(self.me, MachineId::from_idx(i), CtrlMsg::Shutdown);
                    }
                }
                self.state = CoordState::Draining;
                self.try_finish_drain();
            }
        }
    }

    /// Round-robins `orphans` over the live nodes via [`CtrlMsg::Adopt`].
    fn adopt<T: Transport>(&mut self, orphans: &[JobId], tx: &mut T) {
        if orphans.is_empty() {
            return;
        }
        let alive: Vec<MachineId> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, v)| v.alive)
            .map(|(i, _)| MachineId::from_idx(i))
            .collect();
        if alive.is_empty() {
            self.violations.push(format!(
                "{} orphaned jobs with no live machine to adopt them",
                orphans.len()
            ));
            return;
        }
        self.adopted += orphans.len() as u64;
        let mut batches: Vec<Vec<JobId>> = vec![Vec::new(); alive.len()];
        for (k, &j) in orphans.iter().enumerate() {
            batches[k % alive.len()].push(j);
        }
        for (&machine, jobs) in alive.iter().zip(batches) {
            if !jobs.is_empty() {
                tx.send_ctrl(self.me, machine, CtrlMsg::Adopt { jobs });
            }
        }
    }

    /// If every live node has parted, audits the parked custody and
    /// finishes the run.
    fn try_finish_drain(&mut self) {
        let waiting = self.nodes.iter().any(|v| v.alive && !v.parted);
        if waiting {
            return;
        }
        // Final conservation: the parked snapshots must tile the job
        // universe (minus anything already flagged as lost).
        let mut seen = vec![false; self.inst.num_jobs()];
        let mut dupes = 0u64;
        for jobs in &self.parked_jobs {
            for &j in jobs {
                if j.idx() < seen.len() {
                    if seen[j.idx()] {
                        dupes += 1;
                    }
                    seen[j.idx()] = true;
                }
            }
        }
        if dupes > 0 {
            self.violations
                .push(format!("{dupes} jobs parked under two custodies"));
        }
        let missing = seen.iter().filter(|&&s| !s).count();
        let dead_unparted = self.nodes.iter().any(|v| !v.alive && !v.parted);
        if missing > 0 && !dead_unparted {
            self.violations
                .push(format!("{missing} jobs missing from parked custody"));
        }
        self.state = CoordState::Done;
    }
}

/// Drives one node's event loop until it parts with its custody, the
/// transport goes silent for good, or a deadline passes. Returns `true`
/// on a clean exit (goodbye sent).
///
/// `die_at` abruptly abandons the loop at the given transport time —
/// the in-process stand-in for `SIGKILL` (dropping a
/// [`TcpTransport`](crate::tcp::TcpTransport) slams its sockets shut
/// exactly like a dead process would).
pub fn run_node<T: Transport>(
    node: &mut NodeRuntime<'_>,
    tx: &mut T,
    deadline: u64,
    die_at: Option<u64>,
) -> bool {
    node.start(tx);
    loop {
        if node.is_done() {
            // A clean part flushes the outbound buffers so the parting
            // `Goodbye` is on the wire before the caller (possibly a
            // whole process) exits. Crash paths below skip this: dying
            // abruptly loses buffered frames, as a real SIGKILL would.
            tx.drain();
            return true;
        }
        let now = tx.now();
        if let Some(d) = die_at {
            if now >= d {
                return false;
            }
        }
        if now >= deadline {
            return false;
        }
        match tx.poll() {
            Some((_, ev)) => node.on_event(ev, tx),
            None => {
                if !tx.poll_is_momentary() {
                    return false;
                }
            }
        }
    }
}

/// Initial custody: jobs dealt round-robin over the machines (the same
/// opening hand for every harness, so runs are comparable).
pub fn deal_round_robin(inst: &Instance) -> Vec<Vec<JobId>> {
    let m = inst.num_machines();
    let mut hands = vec![Vec::new(); m];
    for j in 0..inst.num_jobs() {
        hands[j % m].push(JobId::from_idx(j));
    }
    hands
}

/// Runs a whole fleet — N nodes plus the coordinator — over one
/// deterministic [`QueueTransport`] switchboard. Same code paths as the
/// socket harness, reproducible from `cfg.seed`; `plan` (if any) wraps
/// the switchboard in a [`FaultyTransport`].
pub fn run_fleet(
    inst: &Instance,
    balancer: &dyn PairwiseBalancer,
    cfg: &NetConfig,
    opts: CoordOpts,
    plan: Option<FaultPlan>,
) -> FleetOutcome {
    let m = inst.num_machines();
    let coord_id = MachineId::from_idx(m);
    let queue = QueueTransport::new(inst, cfg.latency, cfg.seed.wrapping_add(0x7a17));
    let mut tx = FaultyTransport::new(
        queue,
        plan.unwrap_or_else(FaultPlan::none),
        cfg.seed.wrapping_add(0xfa01),
    );
    let hands = deal_round_robin(inst);
    let mut nodes: Vec<NodeRuntime<'_>> = (0..m)
        .map(|i| {
            NodeRuntime::new(
                MachineId::from_idx(i),
                inst,
                balancer,
                cfg,
                &hands[i],
                coord_id,
            )
        })
        .collect();
    let mut coord = Coordinator::new(inst, cfg, opts);
    for node in &mut nodes {
        node.start(&mut tx);
    }
    coord.start(&mut tx);
    while !coord.is_done() {
        let Some((_, ev)) = tx.poll() else {
            // The deterministic schedule ran dry before the coordinator
            // concluded: a stall, reported as a timeout.
            coord.abort_timed_out();
            break;
        };
        let target = match &ev {
            TransportEvent::Deliver(env) => env.to,
            TransportEvent::Timer { machine, .. } => *machine,
            TransportEvent::Ctrl { to, .. } => *to,
            TransportEvent::PeerUp { machine, .. } | TransportEvent::PeerDown { machine, .. } => {
                *machine
            }
        };
        if target == coord_id {
            coord.on_event(ev, &mut tx);
        } else if target.idx() < m {
            let node = &mut nodes[target.idx()];
            if !node.is_done() {
                node.on_event(ev, &mut tx);
            }
        }
    }
    coord.outcome(&mut tx)
}

/// Knobs for the real-socket loopback harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoopbackOpts {
    /// Control-plane settings.
    pub coord: CoordOpts,
    /// Per-node fault plan injected over the real sockets (chaos mode).
    pub faults: Option<FaultPlanOpt>,
    /// Kill this machine's node thread abruptly at this transport time
    /// (ms), simulating `SIGKILL`.
    pub kill: Option<(MachineId, u64)>,
}

/// A copyable wrapper so [`LoopbackOpts`] stays `Copy` (FaultPlan holds
/// a partition list).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlanOpt {
    /// Drop probability, permille.
    pub drop_permille: u16,
    /// Duplication probability, permille.
    pub dup_permille: u16,
}

/// Runs N nodes, each on its own thread with its own
/// [`TcpTransport`](crate::tcp::TcpTransport) bound to `127.0.0.1:0`,
/// and the coordinator inline — real frames over real sockets, one
/// process. This is the engine behind `decent-lb daemon --nodes`, the
/// daemon bench section, and the socket-side conformance tests.
pub fn run_loopback_fleet(
    inst: &Instance,
    balancer: &(dyn PairwiseBalancer + Sync),
    cfg: &NetConfig,
    opts: LoopbackOpts,
) -> Result<FleetOutcome> {
    let m = inst.num_machines();
    let mut listeners = Vec::with_capacity(m + 1);
    let mut addrs = Vec::with_capacity(m + 1);
    for _ in 0..=m {
        let l = BoundListener::bind("127.0.0.1:0")?;
        addrs.push(l.local_addr());
        listeners.push(l);
    }
    let coord_listener = listeners.pop().expect("coordinator listener");
    let coord_id = MachineId::from_idx(m);
    let hands = deal_round_robin(inst);
    let outcome = std::thread::scope(|scope| {
        for (i, listener) in listeners.into_iter().enumerate() {
            let me = MachineId::from_idx(i);
            let addrs = addrs.clone();
            let hand = hands[i].clone();
            let die_at = match opts.kill {
                Some((victim, at)) if victim == me => Some(at),
                _ => None,
            };
            scope.spawn(move || {
                let tcp = TcpTransport::start(me, listener, addrs, 1, TcpOpts::default());
                let mut node = NodeRuntime::new(me, inst, balancer, cfg, &hand, coord_id);
                let deadline = opts.coord.max_runtime.saturating_add(2_000);
                match opts.faults {
                    Some(f) => {
                        let plan = FaultPlan {
                            drop_permille: f.drop_permille,
                            dup_permille: f.dup_permille,
                            ..FaultPlan::none()
                        };
                        let mut tx =
                            FaultyTransport::new(tcp, plan, cfg.seed.wrapping_add(i as u64));
                        run_node(&mut node, &mut tx, deadline, die_at);
                    }
                    None => {
                        let mut tx = tcp;
                        run_node(&mut node, &mut tx, deadline, die_at);
                    }
                }
            });
        }
        let mut tx = TcpTransport::start(coord_id, coord_listener, addrs, 1, TcpOpts::default());
        let mut coord = Coordinator::new(inst, cfg, opts.coord);
        coord.start(&mut tx);
        while !coord.is_done() {
            if let Some((_, ev)) = tx.poll() {
                coord.on_event(ev, &mut tx);
            }
            // A silent interval is fine over TCP; the heartbeat timer
            // keeps the loop moving and enforces max_runtime.
        }
        tx.drain();
        coord.outcome(&mut tx)
        // Leaving the scope joins the node threads: the coordinator's
        // shutdown (or the deadline backstop) has already released them.
    });
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_core::EctPairBalance;
    use lb_workloads::uniform::paper_uniform;

    fn small_cfg(seed: u64) -> NetConfig {
        NetConfig {
            seed,
            quiescence_window: 16,
            ..NetConfig::default()
        }
    }

    #[test]
    fn deterministic_fleet_converges_and_conserves() {
        let inst = paper_uniform(6, 60, 11);
        let out = run_fleet(
            &inst,
            &EctPairBalance,
            &small_cfg(7),
            CoordOpts {
                max_runtime: 2_000_000,
                ..CoordOpts::default()
            },
            None,
        );
        assert!(!out.timed_out, "fleet stalled: {:?}", out.violations);
        assert!(out.conserved, "violations: {:?}", out.violations);
        assert_eq!(out.parked, 6);
        assert!(out.exchanges > 0);
        assert!(out.sweeps >= 1);
    }

    #[test]
    fn deterministic_fleet_is_reproducible() {
        let inst = paper_uniform(4, 40, 3);
        let opts = CoordOpts {
            max_runtime: 2_000_000,
            ..CoordOpts::default()
        };
        let a = run_fleet(&inst, &EctPairBalance, &small_cfg(9), opts, None);
        let b = run_fleet(&inst, &EctPairBalance, &small_cfg(9), opts, None);
        assert_eq!(a, b);
    }

    #[test]
    fn fleet_survives_message_loss() {
        let inst = paper_uniform(4, 40, 5);
        let plan = FaultPlan {
            drop_permille: 100,
            dup_permille: 50,
            ..FaultPlan::none()
        };
        let out = run_fleet(
            &inst,
            &EctPairBalance,
            &small_cfg(13),
            CoordOpts {
                max_runtime: 4_000_000,
                ..CoordOpts::default()
            },
            Some(plan),
        );
        assert!(!out.timed_out, "fleet stalled: {:?}", out.violations);
        assert!(out.conserved, "violations: {:?}", out.violations);
    }

    #[test]
    fn round_robin_deal_tiles_the_universe() {
        let inst = paper_uniform(5, 33, 2);
        let hands = deal_round_robin(&inst);
        let mut seen = vec![false; 33];
        for hand in &hands {
            for &j in hand {
                assert!(!seen[j.idx()], "job dealt twice");
                seen[j.idx()] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }
}
