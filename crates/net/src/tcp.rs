//! Real-socket transport: length-prefixed TCP with per-peer reconnect
//! supervisors.
//!
//! One [`TcpTransport`] serves one machine (a `decent-lb daemon`
//! process). Connections are **unidirectional**: every machine dials
//! one outbound connection to each peer it sends to, and accepts any
//! number of inbound connections it receives from — no tie-breaking,
//! no connection sharing, and TCP's ordering gives the per-pair FIFO
//! the [`Transport`] contract asks for.
//!
//! Threads (`std::net` + `std::thread`; the container has no async
//! runtime, and a fleet of tens of machines doesn't need one):
//!
//! * an **acceptor** listening for inbound connections, spawning one
//!   reader per connection;
//! * **readers** decoding frames and pushing them to the poll channel,
//!   tagged with the `Hello` identity their connection opened with;
//! * one **supervisor per outbound peer**, owning connect → handshake →
//!   write loop with capped exponential backoff between attempts.
//!
//! # Robustness semantics
//!
//! * A frame handed to a *down* peer is dropped (counted), not queued:
//!   the protocol's timers already own loss recovery, and buffering
//!   against a dead peer would deliver arbitrarily stale probes after
//!   minutes of backoff. Send-into-backoff therefore surfaces exactly
//!   like simulator message loss — as `ExchangeTimedOut` retries.
//! * Every outbound connection opens with [`CtrlMsg::Hello`] carrying
//!   the sender's machine id and **session** (incarnation number). The
//!   receiving side remembers the highest session per peer and rejects
//!   frames from older ones ([`LbError::StaleSession`] accounting): a
//!   restarted peer's first frame retires its previous incarnation, so
//!   two-phase custody never acts on pre-restart state.
//! * A malformed frame (bad decode, bad `Hello`, oversized length)
//!   kills only its connection — the stream can't be resynced — and is
//!   counted; the supervisor on the other side redials. A hostile peer
//!   can waste sockets, not crash the daemon.

use crate::codec::{read_frame, write_frame, CtrlMsg, Frame};
use crate::event::EventQueue;
use crate::msg::Envelope;
use crate::transport::{Transport, TransportEvent};
use lb_model::prelude::*;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for [`TcpTransport`]. The defaults suit localhost
/// loopback; real deployments mostly want a larger backoff cap.
#[derive(Debug, Clone)]
pub struct TcpOpts {
    /// First reconnect delay after a failed dial (milliseconds).
    pub backoff_base_ms: u64,
    /// Reconnect delay ceiling (milliseconds).
    pub backoff_cap_ms: u64,
    /// Dial timeout per connection attempt (milliseconds).
    pub connect_timeout_ms: u64,
    /// How long [`Transport::poll`] waits for traffic before returning
    /// `None` (milliseconds).
    pub poll_wait_ms: u64,
}

impl Default for TcpOpts {
    fn default() -> Self {
        Self {
            backoff_base_ms: 50,
            backoff_cap_ms: 1600,
            connect_timeout_ms: 500,
            poll_wait_ms: 25,
        }
    }
}

/// Delivery-side counters a daemon reports (all monotone).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpStats {
    /// Frames rejected because their connection's session was older
    /// than the newest seen from that peer.
    pub stale_rejected: u64,
    /// Connections killed by undecodable or misaddressed frames.
    pub malformed: u64,
    /// Frames dropped at send time because the peer's supervisor was in
    /// backoff (the TCP analogue of simulator message loss).
    pub send_dropped: u64,
    /// Successful outbound (re)connections.
    pub connects: u64,
}

/// A bound listener, split from transport start-up so a fleet can bind
/// ephemeral ports first, collect every `local_addr`, and only then
/// start transports that know the full address map.
pub struct BoundListener {
    listener: TcpListener,
    addr: SocketAddr,
}

impl BoundListener {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(addr: &str) -> Result<Self> {
        let listener =
            TcpListener::bind(addr).map_err(|e| LbError::Transport(format!("bind {addr}: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| LbError::Transport(format!("local_addr: {e}")))?;
        Ok(Self { listener, addr })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

enum InEvent {
    Frame {
        peer: MachineId,
        session: u64,
        frame: Frame,
    },
    PeerUp(MachineId),
    PeerDown(MachineId),
    Malformed,
}

/// The per-process real-socket transport. See the module docs for the
/// thread and robustness model.
pub struct TcpTransport {
    me: MachineId,
    session: u64,
    start: Instant,
    timers: EventQueue<(MachineId, u64)>,
    rx: Receiver<InEvent>,
    /// Clone handed to every supervisor so their PeerUp/PeerDown land
    /// in the poll channel.
    tx: Sender<InEvent>,
    addrs: Vec<SocketAddr>,
    writers: Vec<Option<Sender<Frame>>>,
    sup_handles: Vec<Option<std::thread::JoinHandle<()>>>,
    latest_session: Vec<u64>,
    stats: TcpStats,
    shutdown: Arc<AtomicBool>,
    opts: TcpOpts,
}

impl TcpTransport {
    /// Starts the transport for machine `me`: `listener` receives the
    /// fleet's inbound traffic, `addrs[i]` is where machine `i` listens
    /// (the address map every process shares), `session` is this
    /// process's incarnation number — anything monotone across restarts
    /// of the same machine id.
    ///
    /// Supervisors dial lazily: a peer's connection is only opened when
    /// something is first sent to it.
    pub fn start(
        me: MachineId,
        listener: BoundListener,
        addrs: Vec<SocketAddr>,
        session: u64,
        opts: TcpOpts,
    ) -> Self {
        let (tx, rx) = std::sync::mpsc::channel();
        let shutdown = Arc::new(AtomicBool::new(false));
        spawn_acceptor(
            listener.listener,
            tx.clone(),
            Arc::clone(&shutdown),
            addrs.len(),
        );
        let mut writers = Vec::new();
        writers.resize_with(addrs.len(), || None);
        let mut sup_handles = Vec::new();
        sup_handles.resize_with(addrs.len(), || None);
        Self {
            me,
            session,
            start: Instant::now(),
            timers: EventQueue::new(),
            rx,
            tx,
            latest_session: vec![0; addrs.len()],
            addrs,
            writers,
            sup_handles,
            stats: TcpStats::default(),
            shutdown,
            opts,
        }
    }

    /// Delivery counters so far.
    pub fn stats(&self) -> TcpStats {
        self.stats
    }

    /// The machine this transport serves.
    pub fn me(&self) -> MachineId {
        self.me
    }

    fn writer_for(&mut self, to: MachineId) -> Option<&Sender<Frame>> {
        let idx = to.idx();
        if idx >= self.addrs.len() {
            return None;
        }
        if self.writers[idx].is_none() {
            let (ftx, frx) = std::sync::mpsc::channel();
            let handle = spawn_supervisor(
                self.me,
                to,
                self.addrs[idx],
                self.session,
                frx,
                self.tx.clone(),
                Arc::clone(&self.shutdown),
                self.opts.clone(),
            );
            self.writers[idx] = Some(ftx);
            self.sup_handles[idx] = Some(handle);
        }
        self.writers[idx].as_ref()
    }

    fn push_frame(&mut self, to: MachineId, frame: Frame) {
        let delivered = match self.writer_for(to) {
            Some(w) => w.send(frame).is_ok(),
            None => false,
        };
        if !delivered {
            self.stats.send_dropped += 1;
        }
    }

    fn translate(&mut self, ev: InEvent) -> Option<TransportEvent> {
        match ev {
            InEvent::Frame {
                peer,
                session,
                frame,
            } => {
                let idx = peer.idx();
                if idx >= self.latest_session.len() {
                    self.stats.malformed += 1;
                    return None;
                }
                if session < self.latest_session[idx] {
                    // An old incarnation's bytes surfacing after a
                    // restart: LbError::StaleSession semantics, counted
                    // and dropped before the protocol can see them.
                    self.stats.stale_rejected += 1;
                    return None;
                }
                self.latest_session[idx] = session;
                match frame {
                    Frame::Proto(env) => {
                        if env.to != self.me {
                            self.stats.malformed += 1;
                            return None;
                        }
                        Some(TransportEvent::Deliver(env))
                    }
                    Frame::Ctrl { from, to, msg } => {
                        if to != self.me {
                            self.stats.malformed += 1;
                            return None;
                        }
                        if matches!(msg, CtrlMsg::Hello { .. }) {
                            // Handshakes are consumed by the reader;
                            // one inside an established stream is just
                            // redundant.
                            return None;
                        }
                        Some(TransportEvent::Ctrl { from, to, msg })
                    }
                }
            }
            InEvent::PeerUp(peer) => {
                self.stats.connects += 1;
                Some(TransportEvent::PeerUp {
                    machine: self.me,
                    peer,
                })
            }
            InEvent::PeerDown(peer) => Some(TransportEvent::PeerDown {
                machine: self.me,
                peer,
            }),
            InEvent::Malformed => {
                self.stats.malformed += 1;
                None
            }
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Transport for TcpTransport {
    fn now(&mut self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn send(&mut self, env: Envelope) {
        let to = env.to;
        self.push_frame(to, Frame::Proto(env));
    }

    fn send_ctrl(&mut self, from: MachineId, to: MachineId, msg: CtrlMsg) {
        self.push_frame(to, Frame::Ctrl { from, to, msg });
    }

    fn schedule_timer(&mut self, machine: MachineId, delay: u64, epoch: u64) {
        let at = self.now() + delay.max(1);
        self.timers.push(at, (machine, epoch));
    }

    fn poll(&mut self) -> Option<(u64, TransportEvent)> {
        loop {
            let now = self.now();
            if let Some(t) = self.timers.next_time() {
                if t <= now {
                    let (t, (machine, epoch)) = self.timers.pop().expect("peeked");
                    return Some((t, TransportEvent::Timer { machine, epoch }));
                }
            }
            let horizon = self
                .timers
                .next_time()
                .map(|t| t.saturating_sub(now))
                .unwrap_or(self.opts.poll_wait_ms)
                .min(self.opts.poll_wait_ms)
                .max(1);
            match self.rx.recv_timeout(Duration::from_millis(horizon)) {
                Ok(ev) => {
                    if let Some(out) = self.translate(ev) {
                        let t = self.now();
                        return Some((t, out));
                    }
                    // Stale/malformed/handshake noise: keep polling
                    // inside this call.
                }
                Err(RecvTimeoutError::Timeout) => {
                    // A timer may have come due during the wait; one
                    // more loop iteration fires it, otherwise hand
                    // control back.
                    if self.timers.next_time().is_some_and(|t| t <= self.now()) {
                        continue;
                    }
                    return None;
                }
                Err(RecvTimeoutError::Disconnected) => return None,
            }
        }
    }

    fn poll_is_momentary(&self) -> bool {
        true
    }

    fn drain(&mut self) {
        // Dropping the senders lets each supervisor finish writing the
        // frames already queued to it (`recv_timeout` keeps yielding
        // buffered frames before reporting `Disconnected`), then exit.
        // Joining makes the flush synchronous — a daemon's parting
        // `Goodbye` is on the wire before the process may exit. A
        // supervisor stuck in backoff returns as soon as it sees the
        // hangup, so a dead peer cannot stall the drain past one poll
        // interval.
        for w in &mut self.writers {
            *w = None;
        }
        for h in &mut self.sup_handles {
            if let Some(h) = h.take() {
                let _ = h.join();
            }
        }
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

fn spawn_acceptor(
    listener: TcpListener,
    tx: Sender<InEvent>,
    shutdown: Arc<AtomicBool>,
    num_ids: usize,
) {
    listener
        .set_nonblocking(true)
        .expect("set_nonblocking on listener");
    std::thread::spawn(move || {
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let tx = tx.clone();
                    std::thread::spawn(move || read_loop(stream, tx, num_ids));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => break,
            }
        }
    });
}

/// Reads frames off one inbound connection until EOF or a framing
/// error. The first frame must be a `Hello`; its identity tags every
/// frame after it.
fn read_loop(stream: TcpStream, tx: Sender<InEvent>, num_ids: usize) {
    stream.set_nonblocking(false).ok();
    let mut reader = BufReader::new(stream);
    let (peer, session) = match read_frame(&mut reader) {
        Ok(Some(Frame::Ctrl {
            msg: CtrlMsg::Hello { machine, session },
            ..
        })) if machine.idx() < num_ids => (machine, session),
        Ok(None) => return, // dialed and hung up; nothing to report
        _ => {
            let _ = tx.send(InEvent::Malformed);
            return;
        }
    };
    loop {
        match read_frame(&mut reader) {
            Ok(Some(frame)) => {
                if tx
                    .send(InEvent::Frame {
                        peer,
                        session,
                        frame,
                    })
                    .is_err()
                {
                    return; // transport gone
                }
            }
            Ok(None) => return, // clean EOF
            Err(_) => {
                let _ = tx.send(InEvent::Malformed);
                return;
            }
        }
    }
}

/// Owns the outbound connection to one peer: dial, handshake, forward
/// frames; on any failure, tear down and redial under capped
/// exponential backoff. Frames arriving while disconnected are drained
/// and discarded — see the module docs for why.
#[allow(clippy::too_many_arguments)]
fn spawn_supervisor(
    me: MachineId,
    peer: MachineId,
    addr: SocketAddr,
    session: u64,
    frames: Receiver<Frame>,
    tx: Sender<InEvent>,
    shutdown: Arc<AtomicBool>,
    opts: TcpOpts,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut attempt: u32 = 0;
        while !shutdown.load(Ordering::SeqCst) {
            let stream = TcpStream::connect_timeout(
                &addr,
                Duration::from_millis(opts.connect_timeout_ms.max(1)),
            );
            let mut stream = match stream {
                Ok(s) => s,
                Err(_) => {
                    let backoff = opts
                        .backoff_base_ms
                        .checked_shl(attempt.min(16))
                        .unwrap_or(u64::MAX)
                        .min(opts.backoff_cap_ms)
                        .max(1);
                    attempt = attempt.saturating_add(1);
                    // Back off, discarding frames addressed to the
                    // unreachable peer as they arrive (their loss is
                    // the protocol's timeout path).
                    let deadline = Instant::now() + Duration::from_millis(backoff);
                    while Instant::now() < deadline {
                        match frames.try_recv() {
                            Ok(_) => {}
                            Err(TryRecvError::Empty) => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(TryRecvError::Disconnected) => return,
                        }
                        if shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                    }
                    continue;
                }
            };
            stream.set_nodelay(true).ok();
            let hello = Frame::Ctrl {
                from: me,
                to: peer,
                msg: CtrlMsg::Hello {
                    machine: me,
                    session,
                },
            };
            if write_frame(&mut stream, &hello).is_err() {
                continue;
            }
            attempt = 0;
            let _ = tx.send(InEvent::PeerUp(peer));
            loop {
                match frames.recv_timeout(Duration::from_millis(200)) {
                    Ok(frame) => {
                        if write_frame(&mut stream, &frame).is_err() {
                            let _ = tx.send(InEvent::PeerDown(peer));
                            break; // redial
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        if shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
        }
    })
}
