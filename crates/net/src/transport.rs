//! The `Transport` abstraction: how frames and timers reach a node.
//!
//! The protocol body ([`crate::proto`]) is already host-agnostic; this
//! trait abstracts the *delivery* layer underneath a daemon node so the
//! same [`crate::node::NodeRuntime`] runs over:
//!
//! * [`QueueTransport`] — the deterministic in-process switchboard:
//!   every machine's traffic through one `(time, seq)`-ordered
//!   [`EventQueue`] with a sampled latency per frame, reproducible from
//!   a seed. This is what the conformance suite and the deterministic
//!   daemon tests drive — the simulator's delivery semantics, exposed
//!   as a transport.
//! * [`crate::tcp::TcpTransport`] — real length-prefixed TCP with
//!   per-peer reconnect supervisors (one per process; the switchboard
//!   collapses to "my traffic only").
//! * [`FaultyTransport`] — a wrapper over either, applying a
//!   [`FaultPlan`]'s drops, duplications, and partitions at send time
//!   from its own seeded RNG, so `decent-lb chaos` can inject identical
//!   fault schedules into virtual and real sockets.
//!
//! A transport is a *switchboard*: `send`/`schedule_timer` take the
//! acting machine explicitly and `poll` returns events tagged for their
//! target. The in-process transports host every machine; a TCP
//! transport hosts one and simply never surfaces events for others.

use crate::codec::CtrlMsg;
use crate::event::EventQueue;
use crate::fault::FaultPlan;
use crate::latency::LatencyModel;
use crate::msg::Envelope;
use lb_model::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What a transport hands back from [`Transport::poll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportEvent {
    /// A protocol message arrived for `env.to`.
    Deliver(Envelope),
    /// A timer armed via [`Transport::schedule_timer`] fired. The
    /// driver checks `epoch` against the agent (or recognizes a control
    /// sentinel) — the transport only keeps time.
    Timer {
        /// The machine whose timer fired.
        machine: MachineId,
        /// The epoch recorded when the timer was armed.
        epoch: u64,
    },
    /// A control-plane message arrived for `to`.
    Ctrl {
        /// The sender.
        from: MachineId,
        /// The destination.
        to: MachineId,
        /// The payload.
        msg: CtrlMsg,
    },
    /// A peer's connection came up (TCP only; the in-process transports
    /// never emit it).
    PeerUp {
        /// The machine observing the connection.
        machine: MachineId,
        /// The peer that connected.
        peer: MachineId,
    },
    /// A peer's connection went down and its supervisor entered backoff
    /// (TCP only).
    PeerDown {
        /// The machine observing the disconnection.
        machine: MachineId,
        /// The peer that disconnected.
        peer: MachineId,
    },
}

/// A frame-and-timer delivery service for protocol drivers.
pub trait Transport {
    /// The transport clock: virtual ticks for the deterministic
    /// transports, elapsed real milliseconds for TCP. Only differences
    /// and orderings of this value are meaningful.
    fn now(&mut self) -> u64;

    /// Hands a protocol envelope to the network. Delivery is *not*
    /// guaranteed — the protocol's timers own recovery — but frames
    /// between one ordered pair that do arrive arrive in send order.
    fn send(&mut self, env: Envelope);

    /// Hands a control-plane message to the network (same ordering
    /// contract as [`Transport::send`]).
    fn send_ctrl(&mut self, from: MachineId, to: MachineId, msg: CtrlMsg);

    /// Arms a timer for `machine` after `delay` clock units, tagged
    /// with `epoch` for the driver's staleness check.
    fn schedule_timer(&mut self, machine: MachineId, delay: u64, epoch: u64);

    /// The next event, or `None` when nothing is ready: for the
    /// deterministic transports that means the schedule ran dry; a real
    /// transport blocks up to a bounded wait and returns `None` on a
    /// quiet interval, so drivers loop.
    fn poll(&mut self) -> Option<(u64, TransportEvent)>;

    /// Whether a `None` from [`Transport::poll`] means "nothing *yet*"
    /// (`true` — a real transport; keep looping) or "nothing *ever
    /// again*" (`false`, the default — a deterministic queue that ran
    /// dry; a driver loop should stop).
    fn poll_is_momentary(&self) -> bool {
        false
    }

    /// Flushes buffered outbound frames before a *clean* exit, blocking
    /// until they are on the wire (bounded by the transport's own write
    /// paths). Deterministic transports deliver synchronously, so the
    /// default is a no-op; a real transport must get its last words out
    /// — a daemon's parting `Goodbye` races process exit otherwise.
    /// Crash paths skip this on purpose: dying abruptly *means* losing
    /// buffered frames.
    fn drain(&mut self) {}
}

/// The deterministic switchboard transport: all machines in one
/// process, one event queue, one RNG stream for latency sampling.
///
/// Events pop in `(time, seq)` order exactly like the simulator's
/// queue, so a fleet of [`crate::node::NodeRuntime`]s over a
/// `QueueTransport` is a reproducible distributed system — the
/// conformance harness runs the same scenarios here and over real
/// sockets.
pub struct QueueTransport<'i> {
    inst: &'i Instance,
    latency: LatencyModel,
    queue: EventQueue<TransportEvent>,
    rng: StdRng,
    now: u64,
}

impl<'i> QueueTransport<'i> {
    /// A switchboard over `inst`'s machines with the given latency
    /// model, seeded deterministically.
    pub fn new(inst: &'i Instance, latency: LatencyModel, seed: u64) -> Self {
        Self {
            inst,
            latency,
            queue: EventQueue::new(),
            rng: StdRng::seed_from_u64(seed),
            now: 0,
        }
    }

    fn deliver_at(&mut self, from: MachineId, to: MachineId) -> u64 {
        let m = self.inst.num_machines();
        let lat = if from.idx() >= m || to.idx() >= m {
            // A control-plane edge: the coordinator's id sits outside
            // the instance, so topology-aware models cannot classify
            // the link. Fixed unit latency, no RNG draw.
            1
        } else {
            self.latency.sample(self.inst, from, to, &mut self.rng)
        };
        self.now + lat
    }
}

impl Transport for QueueTransport<'_> {
    fn now(&mut self) -> u64 {
        self.now
    }

    fn send(&mut self, env: Envelope) {
        let at = self.deliver_at(env.from, env.to);
        self.queue.push(at, TransportEvent::Deliver(env));
    }

    fn send_ctrl(&mut self, from: MachineId, to: MachineId, msg: CtrlMsg) {
        let at = self.deliver_at(from, to);
        self.queue.push(at, TransportEvent::Ctrl { from, to, msg });
    }

    fn schedule_timer(&mut self, machine: MachineId, delay: u64, epoch: u64) {
        self.queue.push(
            self.now + delay.max(1),
            TransportEvent::Timer { machine, epoch },
        );
    }

    fn poll(&mut self) -> Option<(u64, TransportEvent)> {
        let (t, ev) = self.queue.pop()?;
        self.now = self.now.max(t);
        Some((t, ev))
    }
}

/// Fault injection over any transport: drops, duplications, and timed
/// partitions from a [`FaultPlan`], decided at send time from the
/// wrapper's own seeded RNG (so the same plan and seed produce the same
/// fault schedule over the deterministic queue and over live sockets).
///
/// Only *protocol* frames are harmed. The control plane rides through
/// untouched: chaos tests target the exchange protocol's robustness,
/// and the coordinator's custody bookkeeping must stay observable while
/// it does.
pub struct FaultyTransport<T> {
    inner: T,
    plan: FaultPlan,
    rng: StdRng,
    dropped: u64,
    duplicated: u64,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner`, harming sends per `plan` with randomness from
    /// `seed`.
    pub fn new(inner: T, plan: FaultPlan, seed: u64) -> Self {
        Self {
            inner,
            plan,
            rng: StdRng::seed_from_u64(seed),
            dropped: 0,
            duplicated: 0,
        }
    }

    /// Frames discarded by drop rolls or partitions so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Extra copies injected by duplication rolls so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// The wrapped transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    fn roll(&mut self, permille: u16) -> bool {
        permille > 0 && self.rng.gen_range(0..1000) < u32::from(permille)
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn now(&mut self) -> u64 {
        self.inner.now()
    }

    fn send(&mut self, env: Envelope) {
        let now = self.inner.now();
        let cut = self.plan.partitioned(now, env.from, env.to);
        if cut || self.roll(self.plan.drop_permille) {
            self.dropped += 1;
            return;
        }
        if self.roll(self.plan.dup_permille) {
            self.duplicated += 1;
            self.inner.send(env.clone());
        }
        self.inner.send(env);
    }

    fn send_ctrl(&mut self, from: MachineId, to: MachineId, msg: CtrlMsg) {
        self.inner.send_ctrl(from, to, msg);
    }

    fn schedule_timer(&mut self, machine: MachineId, delay: u64, epoch: u64) {
        self.inner.schedule_timer(machine, delay, epoch);
    }

    fn poll(&mut self) -> Option<(u64, TransportEvent)> {
        self.inner.poll()
    }

    fn poll_is_momentary(&self) -> bool {
        self.inner.poll_is_momentary()
    }

    fn drain(&mut self) {
        self.inner.drain()
    }
}
