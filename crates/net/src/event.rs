//! The deterministic discrete-event queue.
//!
//! Every future occurrence in a network simulation — a message delivery,
//! an agent timer — is an [`Event`] scheduled at a virtual time. The
//! queue pops events in `(time, seq)` order, where `seq` is the global
//! push counter: two events at the same virtual instant fire in the
//! order they were scheduled. Since scheduling order is itself fully
//! determined by the run's single RNG stream, a run is a pure function
//! of `(instance, seed, NetConfig)` — the property the determinism tests
//! in `tests/net_determinism.rs` assert across thread counts.

use crate::msg::Envelope;
use lb_model::MachineId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Something scheduled to happen at a virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A message arrives at its destination (which may have gone offline
    /// in the meantime — the simulator then counts a drop).
    Deliver(Envelope),
    /// An agent timer fires: the end of an idle think pause, a request
    /// timeout, or an exchange-lease expiry — the agent's state decides
    /// which. Stale timers are invalidated by the epoch: the agent bumps
    /// its epoch on every state change, so a timer scheduled for an
    /// abandoned state misses and is ignored.
    Timer {
        /// The agent whose timer this is.
        machine: MachineId,
        /// The agent's epoch at scheduling time.
        epoch: u64,
    },
}

/// An event with its schedule key. Ordered by `(time, seq)` so
/// [`BinaryHeap`] pops the earliest event, FIFO within an instant.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Scheduled<E> {
    time: u64,
    seq: u64,
    event: E,
}

impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-heap of events keyed by `(time, seq)`. The payload defaults to
/// [`Event`] (the simulator's schedule); the deterministic
/// [`crate::transport::QueueTransport`] instantiates it with its own
/// event type to carry control frames alongside deliveries.
#[derive(Debug)]
pub struct EventQueue<E: Eq = Event> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    next_seq: u64,
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<E: Eq> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at virtual time `time`. Events at equal times
    /// pop in push order.
    pub fn push(&mut self, time: u64, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { time, seq, event }));
    }

    /// Pops the earliest event as `(time, event)`, or `None` when the
    /// simulation has run dry.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        self.heap.pop().map(|Reverse(s)| (s.time, s.event))
    }

    /// The earliest scheduled time, without popping.
    pub fn next_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(s)| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(m: usize) -> Event {
        Event::Timer {
            machine: MachineId::from_idx(m),
            epoch: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, timer(0));
        q.push(10, timer(1));
        q.push(20, timer(2));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_push_order() {
        let mut q = EventQueue::new();
        for m in 0..5 {
            q.push(7, timer(m));
        }
        let order: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::Timer { machine, .. } => machine.idx(),
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }
}
