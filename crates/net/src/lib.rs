//! Event-driven message-passing network layer for decentralized
//! balancing.
//!
//! The paper's simulator (and the round-driven engine in `lb-distsim`)
//! treats a pairwise exchange as instantaneous and reliable: a round
//! picks a pair, the balancer runs, done. Real gossip runs over a
//! network where load reports go stale in flight, messages are lost or
//! duplicated, links partition, and every request needs a timeout. This
//! crate drops the paper's algorithms into that world:
//!
//! * [`event`] — the deterministic `(time, seq)` discrete-event queue;
//! * [`msg`] — wire messages and request correlation ([`msg::ReqId`]);
//! * [`agent`] — the per-machine exchange state machine
//!   (probe → offer → accept, then a two-phase prepare → commit → ack
//!   transfer with per-agent intent logs and an engagement lease);
//! * [`latency`] — pluggable latency models (constant, uniform jitter,
//!   two-cluster with a cross-cluster penalty);
//! * [`fault`] — loss, duplication, timed link partitions, and churn
//!   layered on the driver's `TopologyPlan`, with crash-stop vs
//!   crash-recovery machine semantics ([`fault::CrashSemantics`]);
//! * [`config`] — all knobs in one [`config::NetConfig`], including
//!   timeout / retry-budget / backoff-cap semantics;
//! * [`sim`] — the simulator itself ([`sim::NetSim`], [`sim::run_net`]).
//!
//! The protocol carried over the messages is the same gossip dynamic the
//! rest of the workspace studies — the pair is balanced by any
//! [`lb_core::PairwiseBalancer`], so `Dlb2cBalance` yields a
//! message-passing DLB2C (Algorithm 7) and `EctPairBalance` an
//! OJTB-style port (Algorithm 3). State and observability are shared
//! with `lb-distsim`: the simulator mutates a `SimCore`, counts a
//! completed exchange as a round, and reports through the same
//! `ProbeHub` / `SimEvent` machinery (plus the message-level events
//! `MsgSent`, `MsgDropped`, `ExchangeTimedOut`), so every existing
//! probe, CSV column, and stats helper works unchanged.
//!
//! Runs are deterministic: a run is a pure function of
//! `(instance, initial assignment, NetConfig)` — see the [`sim`] module
//! docs for the three properties that guarantee it.
//!
//! ```
//! use lb_core::Dlb2cBalance;
//! use lb_model::prelude::*;
//! use lb_net::{run_net, NetConfig};
//!
//! let inst = Instance::two_cluster(2, 2, vec![
//!     (2, 10), (2, 10), (10, 2), (10, 2), (4, 4), (4, 4),
//! ]).unwrap();
//! let mut asg = Assignment::all_on(&inst, MachineId(0));
//! let cfg = NetConfig { seed: 7, ..NetConfig::default() };
//! let run = run_net(&inst, &mut asg, &Dlb2cBalance, &cfg).unwrap();
//! assert!(run.final_makespan <= 2 * lb_model::bounds::combined_lower_bound(&inst));
//! assert!(run.msg.delivered() <= run.msg.sent);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod codec;
pub mod config;
pub mod daemon;
pub mod event;
pub mod fault;
pub mod latency;
pub mod msg;
pub mod node;
pub mod proto;
pub mod sim;
pub mod tcp;
pub mod transport;

pub use agent::{Agent, AgentState, TransferIntent};
pub use codec::{CtrlMsg, Frame};
pub use config::NetConfig;
pub use daemon::{
    deal_round_robin, run_fleet, run_loopback_fleet, run_node, CoordOpts, Coordinator,
    FaultPlanOpt, FleetOutcome, LoopbackOpts,
};
pub use event::{Event, EventQueue};
pub use fault::{CrashSemantics, FaultPlan, LinkPartition};
pub use latency::LatencyModel;
pub use msg::{Envelope, JobMove, Msg, ReqId, TransferPlan};
pub use node::{NodeRuntime, NodeStats, CTRL_EPOCH};
pub use proto::ProtoCtx;
pub use sim::{replicate_net, run_net, NetRun, NetSim, NetSummary};
pub use tcp::{BoundListener, TcpOpts, TcpStats, TcpTransport};
pub use transport::{FaultyTransport, QueueTransport, Transport, TransportEvent};
