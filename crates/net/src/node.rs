//! One daemon node: the protocol body over a real (or deterministic)
//! [`Transport`], with **local** job custody.
//!
//! Where the simulator's agents share one [`lb_model::Assignment`], a
//! [`NodeRuntime`] owns only its holding: the set of jobs currently in
//! its custody. Every machine regenerates the same [`Instance`] from
//! the shared workload flags and seed, so job and machine *identities*
//! are global; job *ownership* moves only through the two-phase
//! exchange or a coordinator custody edict.
//!
//! # Distributed custody (no shared state to hide behind)
//!
//! The simulator can be sloppy about *when* each half of an exchange
//! applies — both halves hit one assignment. A daemon cannot:
//!
//! * the **target** applies its half exactly when it applies `Commit`
//!   (and remembers the serial per peer);
//! * the **initiator** applies its half only when the target's `Ack`
//!   arrives ([`crate::proto::ProtoCtx::on_commit_acked`]);
//! * a target acks an unmatched `Commit` only if it *remembers
//!   applying that serial* — otherwise it answers `Reject`, and the
//!   initiator aborts the exchange unapplied
//!   ([`crate::proto::ProtoCtx::reject_aborts_commit`]). This closes
//!   the two-generals hole where a lease expiry discards a prepared
//!   intent and the initiator would otherwise apply a transfer the
//!   target never made.
//! * commit-phase retries get an effectively unbounded budget: once
//!   `Commit` is sent the exchange must resolve forward (re-ack or
//!   disclaim), and a peer that never answers is resolved by the
//!   coordinator's death machinery instead
//!   ([`CtrlMsg::PeerDead`] aborts the conversation with nothing
//!   applied; the custody sweep re-homes whatever died).
//!
//! Every envelope from the wire is validated
//! ([`crate::msg::Envelope::validate`]) and every plan filtered against
//! known custody before use — a malformed or hostile peer costs
//! counters, never a crash and never a custody violation.
//!
//! # Freeze-on-sweep
//!
//! A conservation check over live traffic would tear: a job legally
//! appears in two holdings between a target's commit-apply and the
//! initiator's ack-apply. Nodes therefore answer
//! [`CtrlMsg::QueryHoldings`] only once fully idle (no conversation,
//! no pending intent) and **freeze** until [`CtrlMsg::Resume`] — so a
//! sweep's snapshots are mutually consistent and the union either
//! covers the universe exactly once or someone truly lost custody.

use crate::agent::{Agent, AgentState};
use crate::codec::CtrlMsg;
use crate::config::NetConfig;
use crate::msg::{Envelope, JobMove, Msg, ReqId, TransferPlan};
use crate::proto::{self, ProtoCtx};
use crate::transport::{Transport, TransportEvent};
use lb_core::PairwiseBalancer;
use lb_model::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Timer-epoch sentinel for the node's control heartbeat (reports,
/// housekeeping). Agent epochs count up from zero and never reach it.
pub const CTRL_EPOCH: u64 = u64::MAX;

/// Counters a node accumulates (what [`CtrlMsg::Report`] ships).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Completed exchanges where this node was the target.
    pub exchanges: u64,
    /// Completed target-side exchanges that moved at least one job.
    pub effective: u64,
    /// Jobs received through completed exchanges (both roles).
    pub jobs_moved: u64,
    /// Protocol messages sent.
    pub msgs_sent: u64,
    /// Consecutive completed exchanges that moved nothing (the node's
    /// local quiescence signal).
    pub quiet: u64,
    /// Envelopes dropped by validation (malformed or hostile).
    pub malformed: u64,
    /// Request/lease timeouts fired.
    pub timeouts: u64,
    /// Commits the target disclaimed (aborted unapplied).
    pub disclaimed: u64,
    /// Jobs adopted through coordinator custody edicts.
    pub adopted: u64,
}

/// What drives a node's [`NodeRuntime::on_event`] loop to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Balancing normally.
    Running,
    /// Answered a custody sweep; waiting for [`CtrlMsg::Resume`].
    Frozen,
    /// [`CtrlMsg::Shutdown`] received; draining the in-flight
    /// conversation before parting with custody.
    Draining,
    /// Goodbye sent; the event loop may exit.
    Done,
}

/// One machine's daemon runtime: agent + local custody + control-plane
/// client, generic over the [`Transport`] underneath.
pub struct NodeRuntime<'i> {
    me: MachineId,
    coordinator: MachineId,
    inst: &'i Instance,
    balancer: &'i dyn PairwiseBalancer,
    cfg: &'i NetConfig,
    report_every: u64,
    agent: Agent,
    /// `holds[j]` — job `j` is in this node's custody.
    holds: Vec<bool>,
    load: Time,
    num_held: u64,
    /// Per peer: the serial of the last commit this node applied as
    /// target (the idempotence memory for duplicate commits).
    last_applied: Vec<Option<u64>>,
    /// Peers the coordinator declared dead.
    dead: Vec<bool>,
    rng: StdRng,
    stats: NodeStats,
    phase: Phase,
    /// A sweep token waiting for the node to go idle before answering.
    pending_query: Option<u64>,
}

impl<'i> NodeRuntime<'i> {
    /// A node for machine `me` holding `initial` jobs. `coordinator` is
    /// the control-plane address (by convention
    /// `MachineId::from_idx(inst.num_machines())`).
    pub fn new(
        me: MachineId,
        inst: &'i Instance,
        balancer: &'i dyn PairwiseBalancer,
        cfg: &'i NetConfig,
        initial: &[JobId],
        coordinator: MachineId,
    ) -> Self {
        let m = inst.num_machines();
        let mut node = Self {
            me,
            coordinator,
            inst,
            balancer,
            cfg,
            report_every: cfg.think().saturating_mul(8).max(8),
            agent: Agent::new(),
            holds: vec![false; inst.num_jobs()],
            load: 0,
            num_held: 0,
            last_applied: vec![None; m],
            dead: vec![false; m],
            rng: StdRng::seed_from_u64(cfg.seed.wrapping_add(me.idx() as u64).wrapping_add(1)),
            stats: NodeStats::default(),
            phase: Phase::Running,
            pending_query: None,
        };
        for &j in initial {
            node.add_job(j);
        }
        node
    }

    /// Arms the initial wake and heartbeat timers; call once before the
    /// event loop.
    pub fn start<T: Transport>(&mut self, tx: &mut T) {
        let think = self.cfg.think();
        let jitter = self.rng.gen_range(1..=think.max(1));
        tx.schedule_timer(self.me, jitter, self.agent.epoch);
        tx.schedule_timer(self.me, self.report_every, CTRL_EPOCH);
    }

    /// Whether the event loop can exit (custody handed off).
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Counter snapshot.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// The node's current holding, ascending.
    pub fn holdings(&self) -> Vec<JobId> {
        self.holds
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h)
            .map(|(j, _)| JobId::from_idx(j))
            .collect()
    }

    /// The node's current load under the instance's cost model.
    pub fn load(&self) -> Time {
        self.load
    }

    fn add_job(&mut self, j: JobId) {
        if !self.holds[j.idx()] {
            self.holds[j.idx()] = true;
            self.num_held += 1;
            self.load = self.load.saturating_add(self.inst.cost(self.me, j));
        }
    }

    fn remove_job(&mut self, j: JobId) {
        if self.holds[j.idx()] {
            self.holds[j.idx()] = false;
            self.num_held -= 1;
            self.load = self.load.saturating_sub(self.inst.cost(self.me, j));
        }
    }

    /// Feeds one transport event through the node. Call from the event
    /// loop with every `poll` result.
    pub fn on_event<T: Transport>(&mut self, ev: TransportEvent, tx: &mut T) {
        match ev {
            TransportEvent::Timer { machine, epoch } => {
                if machine != self.me {
                    return;
                }
                if epoch == CTRL_EPOCH {
                    self.send_report(tx);
                    tx.schedule_timer(self.me, self.report_every, CTRL_EPOCH);
                } else if epoch == self.agent.epoch
                    && matches!(self.phase, Phase::Running | Phase::Draining)
                {
                    self.drive(tx, |agent, ctx| proto::on_timer(agent, ctx.node_id(), ctx));
                }
            }
            TransportEvent::Deliver(env) => {
                if env
                    .validate(self.inst.num_machines(), self.inst.num_jobs())
                    .is_err()
                    || env.to != self.me
                {
                    self.stats.malformed += 1;
                    return;
                }
                if self.dead[env.from.idx()] {
                    // Declared-dead peers are out of the conversation;
                    // the sweep already re-homed their custody, so late
                    // frames must not re-enter the protocol.
                    return;
                }
                self.drive(tx, |agent, ctx| {
                    proto::on_msg(agent, ctx.node_id(), env, ctx)
                });
            }
            TransportEvent::Ctrl { from, msg, .. } => {
                if from != self.coordinator {
                    self.stats.malformed += 1;
                    return;
                }
                self.on_ctrl(msg, tx);
            }
            // Connectivity transitions are the supervisors' business;
            // the protocol's timers already handle an unreachable peer.
            TransportEvent::PeerUp { .. } | TransportEvent::PeerDown { .. } => {}
        }
        self.settle(tx);
    }

    /// Runs a protocol handler with the agent split off and this node
    /// as the [`ProtoCtx`].
    fn drive<T, F>(&mut self, tx: &mut T, f: F)
    where
        T: Transport,
        F: FnOnce(&mut Agent, &mut NodeCtx<'_, 'i, T>),
    {
        let mut agent = std::mem::take(&mut self.agent);
        {
            let mut ctx = NodeCtx { node: self, tx };
            f(&mut agent, &mut ctx);
        }
        self.agent = agent;
    }

    /// Post-event housekeeping: answer a deferred sweep once idle, park
    /// custody once a drain completes.
    fn settle<T: Transport>(&mut self, tx: &mut T) {
        let idle = matches!(self.agent.state, AgentState::Idle) && self.agent.intent.is_none();
        if !idle {
            return;
        }
        if let Some(token) = self.pending_query.take() {
            self.answer_query(token, tx);
        }
        if self.phase == Phase::Draining {
            self.park(tx);
        }
    }

    fn answer_query<T: Transport>(&mut self, token: u64, tx: &mut T) {
        // Freeze first: the snapshot is only trustworthy if no exchange
        // starts or completes here until the coordinator says Resume.
        if self.phase == Phase::Running {
            self.phase = Phase::Frozen;
            self.agent.transition(AgentState::Offline);
        }
        let jobs = self.holdings();
        tx.send_ctrl(self.me, self.coordinator, CtrlMsg::Holdings { token, jobs });
    }

    fn park<T: Transport>(&mut self, tx: &mut T) {
        self.agent.transition(AgentState::Offline);
        self.agent.intent = None;
        let jobs = self.holdings();
        tx.send_ctrl(self.me, self.coordinator, CtrlMsg::Goodbye { jobs });
        self.phase = Phase::Done;
    }

    fn send_report<T: Transport>(&mut self, tx: &mut T) {
        let msg = CtrlMsg::Report {
            exchanges: self.stats.exchanges,
            effective: self.stats.effective,
            jobs_moved: self.stats.jobs_moved,
            msgs_sent: self.stats.msgs_sent,
            quiet: self.stats.quiet,
            load: self.load,
            holdings: self.num_held,
        };
        tx.send_ctrl(self.me, self.coordinator, msg);
    }

    fn on_ctrl<T: Transport>(&mut self, msg: CtrlMsg, tx: &mut T) {
        match msg {
            CtrlMsg::QueryHoldings { token } => {
                let idle =
                    matches!(self.agent.state, AgentState::Idle) && self.agent.intent.is_none();
                if idle || self.phase != Phase::Running {
                    self.answer_query(token, tx);
                } else {
                    self.pending_query = Some(token);
                }
            }
            CtrlMsg::Resume => {
                if self.phase == Phase::Frozen {
                    self.phase = Phase::Running;
                    let epoch = self.agent.transition(AgentState::Idle);
                    let think = self.cfg.think();
                    let pause = self.rng.gen_range(1..=think.max(1));
                    tx.schedule_timer(self.me, pause, epoch);
                }
            }
            CtrlMsg::PeerDead { machine } => {
                if machine.idx() < self.dead.len() {
                    self.dead[machine.idx()] = true;
                }
                // Abort any conversation with the dead peer, applying
                // nothing: whatever custody question the half-open
                // exchange leaves behind is the sweep's to settle.
                let with_dead = match self.agent.state {
                    AgentState::AwaitProbe { peer, .. }
                    | AgentState::AwaitAccept { peer, .. }
                    | AgentState::AwaitPrepared { peer, .. }
                    | AgentState::AwaitAck { peer, .. }
                    | AgentState::Engaged { peer, .. } => peer == machine,
                    _ => false,
                };
                if with_dead && self.phase == Phase::Running {
                    self.agent.intent = None;
                    let epoch = self.agent.transition(AgentState::Idle);
                    let think = self.cfg.think();
                    let pause = self.rng.gen_range(1..=think.max(1));
                    tx.schedule_timer(self.me, pause, epoch);
                }
            }
            CtrlMsg::Adopt { jobs } => {
                for j in jobs {
                    if j.idx() < self.holds.len() && !self.holds[j.idx()] {
                        self.add_job(j);
                        self.stats.adopted += 1;
                    }
                }
            }
            CtrlMsg::Shutdown => match self.phase {
                // A frozen node is idle by construction: part at once.
                Phase::Frozen => self.park(tx),
                // A running node drains its conversation first; the
                // `settle` hook parts it on the next idle moment.
                Phase::Running => self.phase = Phase::Draining,
                Phase::Draining | Phase::Done => {}
            },
            // Hello never surfaces (transport-internal); the rest are
            // node → coordinator messages a node should never receive.
            CtrlMsg::Hello { .. }
            | CtrlMsg::Report { .. }
            | CtrlMsg::Holdings { .. }
            | CtrlMsg::Goodbye { .. } => {
                self.stats.malformed += 1;
            }
        }
    }
}

/// The daemon's [`ProtoCtx`]: local custody, real clocks, distributed
/// two-phase policies (see the module docs).
struct NodeCtx<'a, 'i, T> {
    node: &'a mut NodeRuntime<'i>,
    tx: &'a mut T,
}

impl<T: Transport> NodeCtx<'_, '_, T> {
    fn node_id(&self) -> MachineId {
        self.node.me
    }

    /// Applies the half of `plan` that concerns this node. Both sides
    /// run the same function: moves *into* me add custody, moves *out
    /// of* me release it, everything else is a bystander entry (possible
    /// only in hostile plans — the validation already filtered them).
    fn apply_my_half(&mut self, plan: &TransferPlan) -> u64 {
        let me = self.node.me;
        let mut applied = 0;
        for mv in &plan.moves {
            if mv.to == me && !self.node.holds[mv.job.idx()] {
                self.node.add_job(mv.job);
                applied += 1;
            } else if mv.from == me && mv.to != me && self.node.holds[mv.job.idx()] {
                self.node.remove_job(mv.job);
                applied += 1;
            }
        }
        applied
    }
}

impl<T: Transport> ProtoCtx for NodeCtx<'_, '_, T> {
    fn send(&mut self, from: MachineId, to: MachineId, msg: Msg, req: ReqId) {
        self.node.stats.msgs_sent += 1;
        let sent_at = self.tx.now();
        self.tx.send(Envelope {
            from,
            to,
            req,
            msg,
            sent_at,
        });
    }

    fn schedule_timer(&mut self, machine: MachineId, delay: u64, epoch: u64) {
        self.tx.schedule_timer(machine, delay, epoch);
    }

    fn timeout_for(&self, attempt: u32) -> u64 {
        // NetConfig's backoff shifts by the attempt; clamp so an
        // unbounded commit-phase retry count cannot overflow the shift.
        self.node.cfg.timeout_for(attempt.min(16))
    }

    fn lease(&self) -> u64 {
        self.node.cfg.lease()
    }

    fn retry_budget(&self, committed: bool) -> u32 {
        if committed {
            // A sent Commit must resolve forward (ack or disclaim);
            // only the coordinator's PeerDead breaks the loop.
            u32::MAX - 1
        } else {
            self.node.cfg.max_retries
        }
    }

    fn idle_pause(&mut self) -> u64 {
        let think = self.node.cfg.think();
        self.node.rng.gen_range(1..=think.max(1))
    }

    fn pick_peer(&mut self, me: MachineId, epoch: u64) -> Option<MachineId> {
        if self.node.phase != Phase::Running {
            // Draining or frozen: no new conversations, no re-armed
            // wake — `settle` decides what happens to an idle agent.
            return None;
        }
        let m = self.node.inst.num_machines();
        let peers: Vec<MachineId> = (0..m)
            .map(MachineId::from_idx)
            .filter(|&p| p != me && !self.node.dead[p.idx()])
            .collect();
        if peers.is_empty() {
            let think = self.node.cfg.think();
            self.tx.schedule_timer(me, think, epoch);
            return None;
        }
        Some(peers[self.node.rng.gen_range(0..peers.len())])
    }

    fn local_load(&self, _me: MachineId) -> Time {
        self.node.load
    }

    fn engage_snapshot(&mut self, _me: MachineId) -> Vec<JobId> {
        self.node.holdings()
    }

    /// Plans the pair on a scratch assignment built from the two known
    /// holdings. The plan is clipped to jobs this node or the peer
    /// actually holds — a job neither holds (possible when a third
    /// machine's custody leaks into the scratch dump) must never enter
    /// a plan, because applying it would mint custody out of thin air.
    fn plan_moves(&mut self, me: MachineId, peer: MachineId, peer_jobs: &[JobId]) -> TransferPlan {
        let node = &mut *self.node;
        let m = node.inst.num_machines();
        // Jobs outside both holdings are parked on a machine that is
        // neither side of the pair, so they cannot influence the
        // balancer's view of the pair's loads. With m == 2 there is no
        // third machine; strays then sit on `me`'s scratch slot and the
        // clip below keeps them out of the plan regardless.
        let dump = (0..m)
            .map(MachineId::from_idx)
            .find(|&d| d != me && d != peer)
            .unwrap_or(me);
        let mut scratch = Assignment::all_on(node.inst, dump);
        let mut batch: MigrationBatch = node.holdings().into_iter().map(|j| (j, me)).collect();
        for &j in peer_jobs {
            if !node.holds[j.idx()] {
                batch.push(j, peer);
            }
        }
        scratch.apply_migrations(node.inst, &batch);
        let changed = node.balancer.balance(node.inst, &mut scratch, me, peer);
        if !changed {
            return TransferPlan::default();
        }
        let known = |j: JobId| node.holds[j.idx()] || peer_jobs.contains(&j);
        let mut moves = Vec::new();
        for &j in scratch.jobs_on(peer) {
            if node.holds[j.idx()] && known(j) {
                moves.push(JobMove {
                    job: j,
                    from: me,
                    to: peer,
                });
            }
        }
        for &j in scratch.jobs_on(me) {
            if !node.holds[j.idx()] && peer_jobs.contains(&j) {
                moves.push(JobMove {
                    job: j,
                    from: peer,
                    to: me,
                });
            }
        }
        TransferPlan { moves }
    }

    fn apply_plan(
        &mut self,
        _me: MachineId,
        peer: MachineId,
        serial: u64,
        plan: &TransferPlan,
    ) -> (bool, u64) {
        let applied = self.apply_my_half(plan);
        if peer.idx() < self.node.last_applied.len() {
            self.node.last_applied[peer.idx()] = Some(serial);
        }
        self.node.stats.jobs_moved += applied;
        (applied > 0, applied)
    }

    fn unmatched_commit_acks(&mut self, _me: MachineId, from: MachineId, serial: u64) -> bool {
        from.idx() < self.node.last_applied.len()
            && self.node.last_applied[from.idx()] == Some(serial)
    }

    fn reject_aborts_commit(&self) -> bool {
        true
    }

    fn on_commit_acked(&mut self, _me: MachineId, plan: &TransferPlan) {
        let applied = self.apply_my_half(plan);
        self.node.stats.jobs_moved += applied;
    }

    fn on_commit_disclaimed(&mut self, _me: MachineId, _peer: MachineId, _serial: u64) {
        self.node.stats.disclaimed += 1;
    }

    fn on_timeout(&mut self, _agent: MachineId, _peer: MachineId, _attempt: u32) {
        self.node.stats.timeouts += 1;
    }

    fn on_complete(
        &mut self,
        _initiator: MachineId,
        _target: MachineId,
        changed: bool,
        _moved: u64,
    ) {
        self.node.stats.exchanges += 1;
        if changed {
            self.node.stats.effective += 1;
            self.node.stats.quiet = 0;
        } else {
            self.node.stats.quiet += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use crate::transport::QueueTransport;
    use lb_core::EctPairBalance;
    use lb_workloads::uniform::paper_uniform;

    fn fixture(inst: &Instance) -> (NodeRuntime<'_>, &'static NetConfig) {
        let cfg: &'static NetConfig = Box::leak(Box::new(NetConfig::default()));
        let balancer: &'static EctPairBalance = &EctPairBalance;
        let hand: Vec<JobId> = (0..inst.num_jobs() / 2).map(JobId::from_idx).collect();
        let node = NodeRuntime::new(
            MachineId::from_idx(0),
            inst,
            balancer,
            cfg,
            &hand,
            MachineId::from_idx(inst.num_machines()),
        );
        (node, cfg)
    }

    fn env(from: usize, to: usize, serial: u64, msg: Msg) -> Envelope {
        Envelope {
            from: MachineId::from_idx(from),
            to: MachineId::from_idx(to),
            req: ReqId {
                origin: MachineId::from_idx(from),
                serial,
            },
            msg,
            sent_at: 0,
        }
    }

    #[test]
    fn malformed_frames_are_counted_and_dropped() {
        let inst = paper_uniform(4, 16, 1);
        let (mut node, _) = fixture(&inst);
        let mut tx = QueueTransport::new(&inst, LatencyModel::Constant(1), 0);
        let before = node.holdings();
        // Self-addressed, mis-addressed, and out-of-range-payload
        // frames: all dropped, none panic, custody untouched.
        node.on_event(TransportEvent::Deliver(env(0, 0, 1, Msg::Offer)), &mut tx);
        node.on_event(TransportEvent::Deliver(env(1, 2, 1, Msg::Offer)), &mut tx);
        node.on_event(
            TransportEvent::Deliver(env(
                1,
                0,
                1,
                Msg::Accept {
                    jobs: vec![JobId::from_idx(inst.num_jobs() + 5)],
                },
            )),
            &mut tx,
        );
        assert_eq!(node.stats().malformed, 3);
        assert_eq!(node.holdings(), before);
    }

    #[test]
    fn hostile_plan_moves_never_mint_custody() {
        let inst = paper_uniform(4, 16, 2);
        let (mut node, _) = fixture(&inst);
        let mut tx = QueueTransport::new(&inst, LatencyModel::Constant(1), 0);
        let before = node.holdings();
        // A plan whose moves concern machines 2 and 3 entirely — a
        // correctly-formed frame this node must apply *its half* of,
        // which is empty. Route it through the full Offer -> Prepare ->
        // Commit target path.
        node.on_event(TransportEvent::Deliver(env(1, 0, 7, Msg::Offer)), &mut tx);
        let bystander_plan = TransferPlan {
            moves: vec![JobMove {
                job: JobId::from_idx(15),
                from: MachineId::from_idx(2),
                to: MachineId::from_idx(3),
            }],
        };
        node.on_event(
            TransportEvent::Deliver(env(
                1,
                0,
                7,
                Msg::Prepare {
                    plan: bystander_plan,
                },
            )),
            &mut tx,
        );
        node.on_event(TransportEvent::Deliver(env(1, 0, 7, Msg::Commit)), &mut tx);
        assert_eq!(node.holdings(), before, "bystander moves must not apply");
        assert_eq!(node.stats().exchanges, 1, "the exchange still completes");
        assert_eq!(node.stats().jobs_moved, 0);
    }

    #[test]
    fn unapplied_commit_is_disclaimed_not_acked() {
        let inst = paper_uniform(4, 16, 3);
        let (mut node, _) = fixture(&inst);
        let mut tx = QueueTransport::new(&inst, LatencyModel::Constant(1), 0);
        // A Commit for a serial this node never applied (no intent, no
        // last_applied record): the daemon policy answers Reject.
        node.on_event(TransportEvent::Deliver(env(1, 0, 99, Msg::Commit)), &mut tx);
        let mut reply = None;
        while let Some((_, ev)) = tx.poll() {
            if let TransportEvent::Deliver(e) = ev {
                if e.to == MachineId::from_idx(1) {
                    reply = Some(e.msg.clone());
                }
            }
        }
        assert_eq!(
            reply,
            Some(Msg::Reject),
            "unknown commit must be disclaimed"
        );
    }

    #[test]
    fn duplicate_commit_for_applied_serial_is_reacked() {
        let inst = paper_uniform(4, 16, 4);
        let (mut node, _) = fixture(&inst);
        let mut tx = QueueTransport::new(&inst, LatencyModel::Constant(1), 0);
        // Full target-side exchange so serial 7 lands in last_applied.
        node.on_event(TransportEvent::Deliver(env(1, 0, 7, Msg::Offer)), &mut tx);
        node.on_event(
            TransportEvent::Deliver(env(
                1,
                0,
                7,
                Msg::Prepare {
                    plan: TransferPlan::default(),
                },
            )),
            &mut tx,
        );
        node.on_event(TransportEvent::Deliver(env(1, 0, 7, Msg::Commit)), &mut tx);
        let held = node.holdings();
        // The Ack was lost; the initiator retries the Commit. The node
        // must re-ack idempotently without re-applying.
        node.on_event(TransportEvent::Deliver(env(1, 0, 7, Msg::Commit)), &mut tx);
        assert_eq!(node.holdings(), held);
        let mut acks = 0;
        while let Some((_, ev)) = tx.poll() {
            if let TransportEvent::Deliver(e) = ev {
                if e.to == MachineId::from_idx(1) && e.msg == Msg::Ack {
                    acks += 1;
                }
            }
        }
        assert_eq!(acks, 2, "one ack per commit delivery");
    }
}
