//! Property tests for the wire codec: every frame the daemon can emit
//! must round-trip byte-exactly, and every mangled frame — truncated at
//! any point, or carrying trailing garbage — must be *rejected*, never
//! misparsed and never panicking. The codec is the trust boundary of
//! the real-socket transport: arbitrary bytes come straight off a
//! `TcpStream` into it.

use lb_model::prelude::*;
use lb_net::codec::{decode_frame, encode_frame, CtrlMsg, Frame};
use lb_net::msg::{Envelope, JobMove, Msg, ReqId, TransferPlan};
use proptest::prelude::*;

fn arb_machine() -> impl Strategy<Value = MachineId> {
    (0u32..64).prop_map(MachineId)
}

fn arb_job() -> impl Strategy<Value = JobId> {
    (0u32..4096).prop_map(JobId)
}

fn arb_jobs() -> impl Strategy<Value = Vec<JobId>> {
    proptest::collection::vec(arb_job(), 0..24)
}

fn arb_plan() -> impl Strategy<Value = TransferPlan> {
    proptest::collection::vec(
        (arb_job(), arb_machine(), arb_machine()).prop_map(|(job, from, to)| JobMove {
            job,
            from,
            to,
        }),
        0..16,
    )
    .prop_map(|moves| TransferPlan { moves })
}

/// Every `Msg` variant, including boundary payloads.
fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        Just(Msg::ProbeRequest),
        any::<u64>().prop_map(|load| Msg::ProbeResponse { load }),
        Just(Msg::Offer),
        arb_jobs().prop_map(|jobs| Msg::Accept { jobs }),
        Just(Msg::Reject),
        arb_plan().prop_map(|plan| Msg::Prepare { plan }),
        Just(Msg::Prepared),
        Just(Msg::Commit),
        Just(Msg::Ack),
    ]
}

fn arb_envelope() -> impl Strategy<Value = Envelope> {
    (
        arb_machine(),
        arb_machine(),
        arb_machine(),
        any::<u64>(),
        arb_msg(),
        any::<u64>(),
    )
        .prop_map(|(from, to, origin, serial, msg, sent_at)| Envelope {
            from,
            to,
            req: ReqId { origin, serial },
            msg,
            sent_at,
        })
}

/// Every `CtrlMsg` variant.
fn arb_ctrl() -> impl Strategy<Value = CtrlMsg> {
    prop_oneof![
        (arb_machine(), any::<u64>())
            .prop_map(|(machine, session)| CtrlMsg::Hello { machine, session }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(
                |(exchanges, effective, jobs_moved, msgs_sent, quiet, load, holdings)| {
                    CtrlMsg::Report {
                        exchanges,
                        effective,
                        jobs_moved,
                        msgs_sent,
                        quiet,
                        load,
                        holdings,
                    }
                }
            ),
        any::<u64>().prop_map(|token| CtrlMsg::QueryHoldings { token }),
        (any::<u64>(), arb_jobs()).prop_map(|(token, jobs)| CtrlMsg::Holdings { token, jobs }),
        arb_machine().prop_map(|machine| CtrlMsg::PeerDead { machine }),
        arb_jobs().prop_map(|jobs| CtrlMsg::Adopt { jobs }),
        Just(CtrlMsg::Shutdown),
        arb_jobs().prop_map(|jobs| CtrlMsg::Goodbye { jobs }),
        Just(CtrlMsg::Resume),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        arb_envelope().prop_map(Frame::Proto),
        (arb_machine(), arb_machine(), arb_ctrl()).prop_map(|(from, to, msg)| Frame::Ctrl {
            from,
            to,
            msg
        }),
    ]
}

proptest! {
    /// Encode → decode is the identity for every representable frame.
    #[test]
    fn every_frame_round_trips(frame in arb_frame()) {
        let bytes = encode_frame(&frame);
        let back = decode_frame(&bytes).expect("well-formed frame must decode");
        prop_assert_eq!(frame, back);
    }

    /// Chopping any suffix off a valid frame yields a decode error —
    /// not a short parse, not a panic.
    #[test]
    fn every_truncation_is_rejected(frame in arb_frame(), cut in any::<proptest::sample::Index>()) {
        let bytes = encode_frame(&frame);
        prop_assume!(!bytes.is_empty());
        let keep = cut.index(bytes.len()); // 0 <= keep < len: strictly shorter
        prop_assert!(
            decode_frame(&bytes[..keep]).is_err(),
            "truncated to {keep}/{} bytes but still decoded",
            bytes.len()
        );
    }

    /// Appending any non-empty garbage to a valid frame is rejected:
    /// the length-prefixed framing means a payload must be consumed
    /// exactly.
    #[test]
    fn trailing_garbage_is_rejected(
        frame in arb_frame(),
        garbage in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut bytes = encode_frame(&frame);
        bytes.extend_from_slice(&garbage);
        prop_assert!(decode_frame(&bytes).is_err());
    }

    /// Arbitrary byte soup never panics the decoder (it may, rarely,
    /// parse — one-byte frames like ProbeRequest are legitimately
    /// dense in the space).
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_frame(&bytes);
    }

    /// Framed writer/reader round-trip over an in-memory stream,
    /// including clean-EOF detection after the last frame.
    #[test]
    fn framed_stream_round_trips(frames in proptest::collection::vec(arb_frame(), 0..8)) {
        let mut buf = Vec::new();
        for f in &frames {
            lb_net::codec::write_frame(&mut buf, f).expect("write to Vec");
        }
        let mut r = &buf[..];
        let mut back = Vec::new();
        while let Some(f) = lb_net::codec::read_frame(&mut r).expect("read back") {
            back.push(f);
        }
        prop_assert_eq!(frames, back);
    }
}
