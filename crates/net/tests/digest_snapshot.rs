//! Temporary byte-identity snapshot (pre-refactor baseline).

use lb_core::Dlb2cBalance;
use lb_model::prelude::*;
use lb_net::{run_net, FaultPlan, LatencyModel, NetConfig};

#[test]
fn snapshot_digests() {
    let mut out = String::new();
    for seed in 0..6u64 {
        let inst = lb_workloads::uniform::paper_uniform(12, 120, seed);
        let mut asg = Assignment::all_on(&inst, MachineId(0));
        let cfg = NetConfig {
            seed,
            latency: LatencyModel::UniformJitter { min: 1, max: 9 },
            faults: FaultPlan {
                drop_permille: 120,
                dup_permille: 60,
                ..FaultPlan::none()
            },
            quiescence_window: 64,
            max_msgs: 400_000,
            ..NetConfig::default()
        };
        let run = run_net(&inst, &mut asg, &Dlb2cBalance, &cfg).unwrap();
        out.push_str(&format!(
            "{seed} {} {} {} {} {}\n",
            run.trace_digest, run.exchanges, run.final_makespan, run.msg.sent, run.end_time
        ));
    }
    std::fs::write("/tmp/net_digest_snapshot.txt", &out).unwrap();
    println!("{out}");
}
