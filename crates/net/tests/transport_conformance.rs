//! Transport conformance: the delivery contract every [`Transport`]
//! implementation must honor, asserted against **both** the
//! deterministic [`QueueTransport`] switchboard and the real-socket
//! [`TcpTransport`] — same scenarios, same assertions. The protocol
//! body only stays transport-agnostic as long as these hold:
//!
//! 1. frames between one ordered machine pair that arrive, arrive in
//!    send order;
//! 2. timers fire in deadline order, carrying their recorded epoch;
//! 3. a duplicating fault layer delivers both copies (the protocol must
//!    see real duplicates, not have them coalesced);
//! 4. a partition severs exactly the partitioned pair — third parties
//!    keep talking.

use lb_model::prelude::*;
use lb_net::codec::CtrlMsg;
use lb_net::fault::{FaultPlan, LinkPartition};
use lb_net::msg::{Envelope, Msg, ReqId};
use lb_net::tcp::{BoundListener, TcpOpts, TcpTransport};
use lb_net::transport::{FaultyTransport, QueueTransport, Transport, TransportEvent};
use lb_net::LatencyModel;
use lb_workloads::uniform::paper_uniform;

/// A fleet fabric under test: who hosts each machine's transport is the
/// implementation's business; conformance only speaks send/drain.
trait Fabric {
    /// Sends `env` on behalf of `env.from`.
    fn send(&mut self, env: Envelope);
    /// Arms a timer on `machine`'s transport.
    fn schedule_timer(&mut self, machine: MachineId, delay: u64, epoch: u64);
    /// Collects events destined for `machine` until `want` have arrived
    /// or the fabric gives up (drained queue / real-time deadline).
    fn drain(&mut self, machine: MachineId, want: usize) -> Vec<TransportEvent>;
}

fn event_target(ev: &TransportEvent) -> Option<MachineId> {
    match ev {
        TransportEvent::Deliver(env) => Some(env.to),
        TransportEvent::Timer { machine, .. } => Some(*machine),
        TransportEvent::Ctrl { to, .. } => Some(*to),
        TransportEvent::PeerUp { machine, .. } | TransportEvent::PeerDown { machine, .. } => {
            Some(*machine)
        }
    }
}

/// All machines on one deterministic switchboard (optionally behind a
/// fault layer).
struct QueueFabric<T> {
    tx: T,
    /// Events popped while draining for one machine but destined for
    /// another — kept for that machine's own drain.
    stash: Vec<TransportEvent>,
}

impl<T: Transport> QueueFabric<T> {
    fn new(tx: T) -> Self {
        Self {
            tx,
            stash: Vec::new(),
        }
    }
}

impl<T: Transport> Fabric for QueueFabric<T> {
    fn send(&mut self, env: Envelope) {
        self.tx.send(env);
    }

    fn schedule_timer(&mut self, machine: MachineId, delay: u64, epoch: u64) {
        self.tx.schedule_timer(machine, delay, epoch);
    }

    fn drain(&mut self, machine: MachineId, want: usize) -> Vec<TransportEvent> {
        let mut out = Vec::new();
        let mut keep = Vec::new();
        for ev in self.stash.drain(..) {
            if out.len() < want && event_target(&ev) == Some(machine) {
                out.push(ev);
            } else {
                keep.push(ev);
            }
        }
        self.stash = keep;
        while out.len() < want {
            let Some((_, ev)) = self.tx.poll() else { break };
            if event_target(&ev) == Some(machine) {
                out.push(ev);
            } else {
                self.stash.push(ev);
            }
        }
        out
    }
}

/// One real `TcpTransport` per machine on loopback (optionally each
/// behind a fault layer).
struct TcpFabric<T> {
    transports: Vec<T>,
}

fn tcp_fleet(n: usize) -> TcpFabric<TcpTransport> {
    let mut listeners = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..n {
        let l = BoundListener::bind("127.0.0.1:0").expect("bind loopback");
        addrs.push(l.local_addr());
        listeners.push(l);
    }
    let transports = listeners
        .into_iter()
        .enumerate()
        .map(|(i, l)| {
            TcpTransport::start(
                MachineId::from_idx(i),
                l,
                addrs.clone(),
                1,
                TcpOpts::default(),
            )
        })
        .collect();
    TcpFabric { transports }
}

impl<T: Transport> Fabric for TcpFabric<T> {
    fn send(&mut self, env: Envelope) {
        let from = env.from.idx();
        self.transports[from].send(env);
    }

    fn schedule_timer(&mut self, machine: MachineId, delay: u64, epoch: u64) {
        self.transports[machine.idx()].schedule_timer(machine, delay, epoch);
    }

    fn drain(&mut self, machine: MachineId, want: usize) -> Vec<TransportEvent> {
        let tx = &mut self.transports[machine.idx()];
        let deadline = tx.now() + 3_000;
        let mut out = Vec::new();
        while out.len() < want && tx.now() < deadline {
            if let Some((_, ev)) = tx.poll() {
                // Connection housekeeping is transport-specific noise
                // as far as ordering conformance goes.
                if !matches!(
                    ev,
                    TransportEvent::PeerUp { .. } | TransportEvent::PeerDown { .. }
                ) {
                    out.push(ev);
                }
            }
        }
        out
    }
}

fn probe(from: usize, to: usize, serial: u64) -> Envelope {
    Envelope {
        from: MachineId::from_idx(from),
        to: MachineId::from_idx(to),
        req: ReqId {
            origin: MachineId::from_idx(from),
            serial,
        },
        msg: Msg::ProbeRequest,
        sent_at: 0,
    }
}

fn delivered_serials(events: &[TransportEvent]) -> Vec<u64> {
    events
        .iter()
        .filter_map(|ev| match ev {
            TransportEvent::Deliver(env) => Some(env.req.serial),
            _ => None,
        })
        .collect()
}

// --- Contract 1: per-pair FIFO -------------------------------------

fn check_per_pair_order(fabric: &mut dyn Fabric) {
    // Interleave two directed pairs; each pair's stream must stay
    // ordered independently of the other's.
    for s in 0..40u64 {
        fabric.send(probe(0, 1, s));
        fabric.send(probe(2, 1, 1_000 + s));
    }
    let events = fabric.drain(MachineId::from_idx(1), 80);
    let serials = delivered_serials(&events);
    assert_eq!(
        serials.len(),
        80,
        "all frames must arrive on a clean fabric"
    );
    let from_0: Vec<u64> = serials.iter().copied().filter(|&s| s < 1_000).collect();
    let from_2: Vec<u64> = serials.iter().copied().filter(|&s| s >= 1_000).collect();
    assert_eq!(from_0, (0..40).collect::<Vec<_>>(), "pair 0->1 reordered");
    assert_eq!(
        from_2,
        (1_000..1_040).collect::<Vec<_>>(),
        "pair 2->1 reordered"
    );
}

#[test]
fn queue_delivers_per_pair_in_order() {
    let inst = paper_uniform(3, 6, 0);
    let mut fabric = QueueFabric::new(QueueTransport::new(&inst, LatencyModel::Constant(3), 1));
    check_per_pair_order(&mut fabric);
}

#[test]
fn tcp_delivers_per_pair_in_order() {
    let mut fabric = tcp_fleet(3);
    check_per_pair_order(&mut fabric);
}

// --- Contract 2: timers fire in deadline order with their epoch ----

fn check_timer_order(fabric: &mut dyn Fabric) {
    let m = MachineId::from_idx(0);
    // Armed out of deadline order on purpose.
    fabric.schedule_timer(m, 90, 7);
    fabric.schedule_timer(m, 30, 8);
    fabric.schedule_timer(m, 60, 9);
    let events = fabric.drain(m, 3);
    let fired: Vec<u64> = events
        .iter()
        .filter_map(|ev| match ev {
            TransportEvent::Timer { epoch, .. } => Some(*epoch),
            _ => None,
        })
        .collect();
    assert_eq!(fired, vec![8, 9, 7], "timers must fire in deadline order");
}

#[test]
fn queue_timers_fire_in_deadline_order() {
    let inst = paper_uniform(2, 4, 0);
    let mut fabric = QueueFabric::new(QueueTransport::new(&inst, LatencyModel::Constant(1), 2));
    check_timer_order(&mut fabric);
}

#[test]
fn tcp_timers_fire_in_deadline_order() {
    let mut fabric = tcp_fleet(1);
    check_timer_order(&mut fabric);
}

// --- Contract 3: duplicates are delivered, not coalesced -----------

fn check_duplicates(fabric: &mut dyn Fabric, expected_dupes: u64) {
    for s in 0..10u64 {
        fabric.send(probe(0, 1, s));
    }
    let events = fabric.drain(MachineId::from_idx(1), 20);
    let serials = delivered_serials(&events);
    assert_eq!(
        serials.len(),
        (10 + expected_dupes) as usize,
        "every original and every duplicate must surface"
    );
    for s in 0..10u64 {
        assert_eq!(
            serials.iter().filter(|&&x| x == s).count(),
            2,
            "serial {s} must arrive exactly twice"
        );
    }
}

#[test]
fn queue_surfaces_duplicated_frames() {
    let inst = paper_uniform(2, 4, 0);
    let plan = FaultPlan {
        dup_permille: 1_000,
        ..FaultPlan::none()
    };
    let inner = QueueTransport::new(&inst, LatencyModel::Constant(2), 3);
    let mut fabric = QueueFabric::new(FaultyTransport::new(inner, plan, 4));
    check_duplicates(&mut fabric, 10);
    assert_eq!(fabric.tx.duplicated(), 10);
}

#[test]
fn tcp_surfaces_duplicated_frames() {
    let plan = FaultPlan {
        dup_permille: 1_000,
        ..FaultPlan::none()
    };
    let fleet = tcp_fleet(2);
    let mut transports = fleet.transports.into_iter();
    let sender = FaultyTransport::new(transports.next().expect("sender"), plan, 4);
    // The receiver needs no faults; a FaultPlan::none() wrapper is a
    // no-op and keeps the fabric homogeneous.
    let receiver = FaultyTransport::new(transports.next().expect("receiver"), FaultPlan::none(), 0);
    let mut fabric = TcpFabric {
        transports: vec![sender, receiver],
    };
    check_duplicates(&mut fabric, 10);
    assert_eq!(fabric.transports[0].duplicated(), 10);
}

// --- Contract 4: partitions isolate exactly the severed pair -------

fn check_partition(fabric: &mut dyn Fabric) {
    // 0 -> 1 is severed; 0 -> 2 must keep working.
    for s in 0..10u64 {
        fabric.send(probe(0, 1, s));
        fabric.send(probe(0, 2, 100 + s));
    }
    let blocked = fabric.drain(MachineId::from_idx(1), 10);
    let open = fabric.drain(MachineId::from_idx(2), 10);
    assert_eq!(
        delivered_serials(&blocked),
        Vec::<u64>::new(),
        "partitioned pair must deliver nothing"
    );
    assert_eq!(
        delivered_serials(&open),
        (100..110).collect::<Vec<_>>(),
        "third party must be unaffected, in order"
    );
}

fn severed_0_1() -> FaultPlan {
    FaultPlan {
        partitions: vec![LinkPartition {
            start: 0,
            end: u64::MAX,
            a: vec![MachineId::from_idx(0)],
            b: vec![MachineId::from_idx(1)],
        }],
        ..FaultPlan::none()
    }
}

#[test]
fn queue_partition_isolates_only_the_severed_pair() {
    let inst = paper_uniform(3, 6, 0);
    let inner = QueueTransport::new(&inst, LatencyModel::Constant(2), 5);
    let mut fabric = QueueFabric::new(FaultyTransport::new(inner, severed_0_1(), 6));
    check_partition(&mut fabric);
    assert_eq!(fabric.tx.dropped(), 10);
}

#[test]
fn tcp_partition_isolates_only_the_severed_pair() {
    let fleet = tcp_fleet(3);
    let mut fabric = TcpFabric {
        transports: fleet
            .transports
            .into_iter()
            .map(|t| FaultyTransport::new(t, severed_0_1(), 6))
            .collect(),
    };
    check_partition(&mut fabric);
    assert_eq!(fabric.transports[0].dropped(), 10);
}

// --- TCP-specific robustness: sessions and control frames ----------

#[test]
fn tcp_carries_control_frames_in_order() {
    let mut fleet = tcp_fleet(2);
    let from = MachineId::from_idx(0);
    let to = MachineId::from_idx(1);
    for token in 0..5u64 {
        fleet.transports[0].send_ctrl(from, to, CtrlMsg::QueryHoldings { token });
    }
    let events = fleet.drain(to, 5);
    let tokens: Vec<u64> = events
        .iter()
        .filter_map(|ev| match ev {
            TransportEvent::Ctrl {
                msg: CtrlMsg::QueryHoldings { token },
                ..
            } => Some(*token),
            _ => None,
        })
        .collect();
    assert_eq!(tokens, vec![0, 1, 2, 3, 4]);
}

#[test]
fn tcp_rejects_frames_from_a_stale_session() {
    // Two incarnations of machine 0 talk to machine 1: the newer
    // session's Hello raises the bar, after which the older
    // incarnation's frames must be dropped as stale.
    let l0a = BoundListener::bind("127.0.0.1:0").expect("bind");
    let l0b = BoundListener::bind("127.0.0.1:0").expect("bind");
    let l1 = BoundListener::bind("127.0.0.1:0").expect("bind");
    let addrs_old = vec![l0a.local_addr(), l1.local_addr()];
    let addrs_new = vec![l0b.local_addr(), l1.local_addr()];
    let m0 = MachineId::from_idx(0);
    let m1 = MachineId::from_idx(1);
    let mut old = TcpTransport::start(m0, l0a, addrs_old.clone(), 1, TcpOpts::default());
    let mut new = TcpTransport::start(m0, l0b, addrs_new, 2, TcpOpts::default());
    let mut rx = TcpTransport::start(m1, l1, addrs_old, 1, TcpOpts::default());

    // Newer incarnation speaks first and lands.
    new.send(probe(0, 1, 50));
    let first = rx.poll_deliver_within(3_000);
    assert_eq!(first.as_ref().map(|e| e.req.serial), Some(50));

    // The stale incarnation's traffic is rejected at the session gate.
    old.send(probe(0, 1, 51));
    let second = rx.poll_deliver_within(1_000);
    assert_eq!(second, None, "stale-session frame must not surface");
    assert!(rx.stats().stale_rejected >= 1);
}

/// Test-only helper: polls until a protocol deliver arrives or the
/// window closes.
trait PollDeliver {
    fn poll_deliver_within(&mut self, window_ms: u64) -> Option<Envelope>;
}

impl PollDeliver for TcpTransport {
    fn poll_deliver_within(&mut self, window_ms: u64) -> Option<Envelope> {
        let deadline = self.now() + window_ms;
        while self.now() < deadline {
            if let Some((_, TransportEvent::Deliver(env))) = self.poll() {
                return Some(env);
            }
        }
        None
    }
}
