//! Convergence under message loss, partitions, and churn.
//!
//! The regression gate from the issue: a 30% drop rate on the paper's
//! two-cluster workload must still converge (retries pay for loss, they
//! don't prevent progress), and it must do so within a bounded message
//! budget — loss may multiply traffic by a constant, not change its
//! complexity class.

use lb_core::Dlb2cBalance;
use lb_distsim::{RunOutcome, TopologyEvent, TopologyPlan};
use lb_model::bounds::combined_lower_bound;
use lb_model::prelude::*;
use lb_net::{run_net, FaultPlan, LatencyModel, LinkPartition, NetConfig};
use lb_workloads::initial::random_assignment;
use lb_workloads::two_cluster::paper_two_cluster;

#[test]
fn thirty_percent_drop_still_converges() {
    let inst = paper_two_cluster(6, 3, 90, 4);
    let mut asg = random_assignment(&inst, 5);
    const MSG_BUDGET: u64 = 1_500_000;
    let cfg = NetConfig {
        latency: LatencyModel::UniformJitter { min: 2, max: 8 },
        faults: FaultPlan::with_drop(300),
        max_msgs: MSG_BUDGET,
        max_time: 10_000_000,
        seed: 17,
        ..NetConfig::default()
    };
    let initial = asg.makespan();
    let run = run_net(&inst, &mut asg, &Dlb2cBalance, &cfg).unwrap();
    assert!(
        run.settled(),
        "30% drop must still reach quiescence, got {:?} after {} msgs",
        run.outcome,
        run.msg.sent
    );
    assert!(
        run.msg.sent < MSG_BUDGET,
        "convergence must fit the message budget"
    );
    // The faults were actually exercised, and recovery actually ran.
    assert!(run.msg.dropped > 0, "a 30% drop rate must drop something");
    assert!(
        run.msg.timeouts > 0,
        "lost requests must surface as timeouts"
    );
    // And it still balanced: down from the random start, within the
    // always-valid 2x provable-lower-bound envelope of Theorem 7.
    assert!(run.final_makespan < initial);
    assert!(run.final_makespan <= 2 * combined_lower_bound(&inst));
    asg.validate(&inst).unwrap();
}

#[test]
fn temporary_partition_delays_but_does_not_prevent_convergence() {
    let inst = paper_two_cluster(3, 3, 48, 8);
    let mut asg = random_assignment(&inst, 2);
    // Sever the inter-cluster link for a window at the start: while it
    // holds, cross-cluster offers are lost and only intra-cluster
    // exchanges proceed; after it lifts, the run must still settle.
    let cluster_one: Vec<MachineId> = inst.machines_in(ClusterId::ONE).to_vec();
    let cluster_two: Vec<MachineId> = inst.machines_in(ClusterId::TWO).to_vec();
    let cfg = NetConfig {
        faults: FaultPlan {
            partitions: vec![LinkPartition {
                start: 0,
                end: 3_000,
                a: cluster_one,
                b: cluster_two,
            }],
            ..FaultPlan::none()
        },
        seed: 23,
        ..NetConfig::default()
    };
    let run = run_net(&inst, &mut asg, &Dlb2cBalance, &cfg).unwrap();
    assert!(run.settled(), "got {:?}", run.outcome);
    assert!(run.msg.dropped > 0, "the partition must cut some messages");
    assert!(run.end_time > 3_000, "must outlive the partition window");
    asg.validate(&inst).unwrap();
}

#[test]
fn churn_during_a_lossy_run_is_absorbed() {
    let inst = paper_two_cluster(4, 2, 60, 1);
    let mut asg = random_assignment(&inst, 3);
    let cfg = NetConfig {
        faults: FaultPlan {
            drop_permille: 100,
            topology: TopologyPlan::one_blip(MachineId(0), 2_000, 6_000),
            ..FaultPlan::none()
        },
        seed: 31,
        ..NetConfig::default()
    };
    let run = run_net(&inst, &mut asg, &Dlb2cBalance, &cfg).unwrap();
    assert!(run.settled(), "got {:?}", run.outcome);
    asg.validate(&inst).unwrap();
    let total: usize = inst.machines().map(|m| asg.num_jobs_on(m)).sum();
    assert_eq!(total, 60, "churn must conserve jobs");
}

#[test]
fn killing_every_machine_surfaces_an_error() {
    let inst = paper_two_cluster(1, 1, 10, 0);
    let mut asg = random_assignment(&inst, 0);
    let cfg = NetConfig {
        faults: FaultPlan {
            topology: TopologyPlan {
                events: vec![
                    (100, TopologyEvent::Fail(MachineId(0))),
                    (200, TopologyEvent::Fail(MachineId(1))),
                ],
            },
            ..FaultPlan::none()
        },
        seed: 1,
        ..NetConfig::default()
    };
    let err = run_net(&inst, &mut asg, &Dlb2cBalance, &cfg).unwrap_err();
    assert_eq!(err, LbError::NoOnlineMachines);
}

#[test]
fn budget_outcomes_are_reported_not_hidden() {
    let inst = paper_two_cluster(3, 2, 30, 6);
    let mut asg = random_assignment(&inst, 7);
    let cfg = NetConfig {
        max_msgs: 50, // far too small to finish anything
        quiescence_window: 0,
        seed: 2,
        ..NetConfig::default()
    };
    let run = run_net(&inst, &mut asg, &Dlb2cBalance, &cfg).unwrap();
    assert_eq!(run.outcome, RunOutcome::BudgetExhausted);
}
