//! Real-socket fleet tests: N daemon nodes on `127.0.0.1`, each with
//! its own `TcpTransport` and thread, the coordinator on its own
//! socket. Everything the deterministic fleet tests assert — custody
//! conservation, clean shutdown — must survive actual TCP, actual
//! clocks, and (here) injected frame loss and an abruptly killed node.

use lb_core::EctPairBalance;
use lb_model::prelude::*;
use lb_net::daemon::{run_loopback_fleet, CoordOpts, FaultPlanOpt, LoopbackOpts};
use lb_net::NetConfig;
use lb_workloads::uniform::paper_uniform;

fn tcp_cfg(seed: u64) -> NetConfig {
    NetConfig {
        seed,
        // Transport ticks are milliseconds here; keep the protocol's
        // pacing snappy so tests finish in seconds.
        timeout: 40,
        backoff_cap: 400,
        think_time: 4,
        lease_time: 300,
        ..NetConfig::default()
    }
}

#[test]
fn loopback_fleet_conserves_custody() {
    let inst = paper_uniform(4, 48, 21);
    let out = run_loopback_fleet(
        &inst,
        &EctPairBalance,
        &tcp_cfg(3),
        LoopbackOpts {
            coord: CoordOpts {
                stable_quiet: 4,
                death_timeout: 3_000,
                heartbeat: 25,
                max_runtime: 30_000,
            },
            ..LoopbackOpts::default()
        },
    )
    .expect("bind loopback listeners");
    assert!(!out.timed_out, "fleet stalled: {:?}", out.violations);
    assert!(out.conserved, "violations: {:?}", out.violations);
    assert_eq!(out.parked, 4, "every node should park its custody");
    assert_eq!(out.deaths, 0);
    assert!(out.exchanges > 0, "no exchanges completed over TCP");
    assert!(out.msgs_per_sec > 0.0);
}

#[test]
fn loopback_fleet_survives_frame_loss() {
    let inst = paper_uniform(3, 30, 8);
    let out = run_loopback_fleet(
        &inst,
        &EctPairBalance,
        &tcp_cfg(11),
        LoopbackOpts {
            coord: CoordOpts {
                stable_quiet: 4,
                death_timeout: 5_000,
                heartbeat: 25,
                max_runtime: 45_000,
            },
            faults: Some(FaultPlanOpt {
                drop_permille: 100,
                dup_permille: 50,
            }),
            ..LoopbackOpts::default()
        },
    )
    .expect("bind loopback listeners");
    assert!(
        !out.timed_out,
        "fleet stalled under loss: {:?}",
        out.violations
    );
    assert!(out.conserved, "violations: {:?}", out.violations);
    assert_eq!(out.parked, 3);
}

#[test]
fn loopback_fleet_survives_killed_node() {
    let inst = paper_uniform(4, 40, 13);
    let victim = MachineId::from_idx(2);
    let out = run_loopback_fleet(
        &inst,
        &EctPairBalance,
        &tcp_cfg(17),
        LoopbackOpts {
            coord: CoordOpts {
                // High stability bar keeps the fleet busy past the
                // kill; short death timeout keeps the test fast.
                stable_quiet: 8,
                death_timeout: 700,
                heartbeat: 25,
                max_runtime: 45_000,
            },
            kill: Some((victim, 150)),
            ..LoopbackOpts::default()
        },
    )
    .expect("bind loopback listeners");
    assert!(
        !out.timed_out,
        "fleet never reconverged: {:?}",
        out.violations
    );
    assert_eq!(out.deaths, 1, "coordinator should declare the victim dead");
    assert!(out.conserved, "violations: {:?}", out.violations);
    assert_eq!(out.parked, 3, "three survivors part cleanly");
    // The victim held jobs when it died (round-robin deal guarantees
    // it); every one of them must have been re-homed.
    assert!(out.adopted > 0, "no orphans were adopted");
}
