//! Crash-safe job custody under the two-phase exchange commit.
//!
//! The regression gate from the issue: killing a machine mid-exchange —
//! including exactly between `Prepare` and `Commit` — must preserve the
//! exact job multiset. The pre-custody code path failed this two ways:
//! a failing machine's jobs teleported to survivors at the instant of
//! the failure (oracle scatter, `jobs_scattered > 0` on the `Fail`
//! event), and an initiator holding an in-flight `Accept` from a peer
//! that died under it would balance against the offline machine. With
//! two-phase custody the `Fail` event parks jobs (`jobs_scattered == 0`)
//! and every commit is guarded per job, so the runtime invariant
//! checker stays silent for *any* kill time.

use lb_core::Dlb2cBalance;
use lb_distsim::{InvariantProbe, Probe, ProbeHub, SimCore, SimEvent, TopologyEvent, TopologyPlan};
use lb_model::prelude::*;
use lb_net::{run_net, CrashSemantics, FaultPlan, LatencyModel, NetConfig, NetSim};
use lb_workloads::initial::random_assignment;
use lb_workloads::two_cluster::paper_two_cluster;

const JOBS: usize = 60;

fn custody_cfg(seed: u64, topology: TopologyPlan, crash: CrashSemantics) -> NetConfig {
    NetConfig {
        latency: LatencyModel::UniformJitter { min: 2, max: 10 },
        faults: FaultPlan {
            topology,
            crash,
            ..FaultPlan::none()
        },
        check_invariants: true,
        seed,
        ..NetConfig::default()
    }
}

fn assert_multiset_preserved(inst: &Instance, asg: &Assignment) {
    asg.validate(inst).unwrap();
    let total: usize = inst.machines().map(|m| asg.num_jobs_on(m)).sum();
    assert_eq!(total, JOBS, "job multiset must be preserved");
}

/// The acceptance regression: a machine dies mid-exchange and the job
/// multiset survives bit-for-bit. The kill time sweeps a window dense
/// enough to land in every phase of the handshake — probe in flight,
/// offer in flight, between `Prepare` and `Commit`, `Commit` in flight,
/// `Ack` lost — across several seeds. Any custody bug anywhere in the
/// two-phase protocol trips the invariant probe at the event that
/// breaks it.
#[test]
fn kill_at_any_point_of_the_handshake_conserves_jobs() {
    for seed in [3u64, 17, 40] {
        for fail_time in (40..640).step_by(40) {
            let inst = paper_two_cluster(4, 2, JOBS, 1);
            let mut asg = random_assignment(&inst, seed ^ 0x5A);
            let cfg = custody_cfg(
                seed,
                TopologyPlan {
                    events: vec![(fail_time, TopologyEvent::Fail(MachineId(0)))],
                },
                CrashSemantics::Stop,
            );
            let run = run_net(&inst, &mut asg, &Dlb2cBalance, &cfg).unwrap();
            assert!(
                run.invariant_violations.is_empty(),
                "seed {seed} fail_time {fail_time}: {:?}",
                run.invariant_violations
            );
            assert_multiset_preserved(&inst, &asg);
            // The dead machine never rejoined: after the lease its jobs
            // belong to survivors.
            assert_eq!(asg.num_jobs_on(MachineId(0)), 0);
            assert!(run.jobs_reclaimed + run.jobs_resynced <= run.jobs_at_risk);
        }
    }
}

/// The direct anti-oracle assertion: the `Fail` topology event itself
/// moves **zero** jobs — they stay parked on the dead machine under its
/// custody lease. (The pre-custody simulator scattered them in the same
/// event; this is the test that fails on that code path even when the
/// end state happens to conserve jobs.)
#[test]
fn failure_parks_jobs_instead_of_scattering() {
    let inst = paper_two_cluster(4, 2, JOBS, 1);
    let mut asg = random_assignment(&inst, 9);
    let cfg = custody_cfg(
        11,
        TopologyPlan {
            events: vec![(500, TopologyEvent::Fail(MachineId(0)))],
        },
        CrashSemantics::Stop,
    );
    /// Records each applied topology event with its own scatter count.
    #[derive(Default)]
    struct PerEventScatter(Vec<(TopologyEvent, u64)>);
    impl Probe for PerEventScatter {
        fn observe(&mut self, _core: &SimCore, ev: &SimEvent) {
            if let SimEvent::Topology {
                event,
                jobs_scattered,
            } = *ev
            {
                self.0.push((event, jobs_scattered));
            }
        }
    }

    let mut topo = PerEventScatter::default();
    let mut invariants = InvariantProbe::new();
    {
        let mut hub = ProbeHub::new();
        hub.push(&mut topo).push(&mut invariants);
        let mut sim = NetSim::new(&inst, &mut asg, &Dlb2cBalance, &cfg);
        sim.run(&mut hub).unwrap();
    }
    let fail_events: Vec<_> = topo
        .0
        .iter()
        .filter(|(ev, _)| matches!(ev, TopologyEvent::Fail(_)))
        .collect();
    assert_eq!(fail_events.len(), 1);
    assert_eq!(
        fail_events[0].1, 0,
        "a failure must park jobs (custody lease), not scatter them"
    );
    assert!(invariants.clean(), "{:?}", invariants.reports());
    assert_multiset_preserved(&inst, &asg);
}

/// Crash-recovery semantics: a machine that rejoins within its custody
/// lease keeps its jobs (re-sync), and nothing is reclaimed.
#[test]
fn crash_recovery_rejoin_keeps_its_jobs() {
    let inst = paper_two_cluster(4, 2, JOBS, 1);
    let mut asg = random_assignment(&inst, 5);
    let cfg = NetConfig {
        job_lease_time: 5_000,
        ..custody_cfg(
            13,
            TopologyPlan::one_blip(MachineId(0), 2_000, 2_500),
            CrashSemantics::Recovery,
        )
    };
    let run = run_net(&inst, &mut asg, &Dlb2cBalance, &cfg).unwrap();
    assert!(
        run.invariant_violations.is_empty(),
        "{:?}",
        run.invariant_violations
    );
    assert!(run.jobs_at_risk > 0, "the blip must put jobs at risk");
    assert_eq!(
        run.jobs_reclaimed, 0,
        "rejoin within the lease cancels reclamation"
    );
    assert!(
        run.jobs_resynced > 0,
        "the rejoining machine re-syncs its jobs"
    );
    assert_multiset_preserved(&inst, &asg);
}

/// Crash-stop semantics: the same blip, but the rejoin is a fresh empty
/// node — its parked jobs move to the *other* survivors at the rejoin.
#[test]
fn crash_stop_rejoin_comes_back_empty() {
    let inst = paper_two_cluster(4, 2, JOBS, 1);
    let mut asg = random_assignment(&inst, 5);
    let cfg = NetConfig {
        job_lease_time: 5_000,
        ..custody_cfg(
            13,
            TopologyPlan::one_blip(MachineId(0), 2_000, 2_500),
            CrashSemantics::Stop,
        )
    };
    let run = run_net(&inst, &mut asg, &Dlb2cBalance, &cfg).unwrap();
    assert!(
        run.invariant_violations.is_empty(),
        "{:?}",
        run.invariant_violations
    );
    assert!(run.jobs_at_risk > 0);
    assert!(
        run.jobs_reclaimed > 0,
        "a crash-stop rejoin reclaims parked jobs"
    );
    assert_eq!(run.jobs_resynced, 0);
    assert_multiset_preserved(&inst, &asg);
}

/// Lease expiry without a rejoin: the jobs sit parked for exactly the
/// lease, then survivors reclaim them mid-run and keep balancing.
#[test]
fn lease_expiry_reclaims_midrun() {
    let inst = paper_two_cluster(4, 2, JOBS, 1);
    let mut asg = random_assignment(&inst, 29);
    let cfg = NetConfig {
        job_lease_time: 400,
        ..custody_cfg(
            19,
            TopologyPlan {
                events: vec![(1_000, TopologyEvent::Fail(MachineId(0)))],
            },
            CrashSemantics::Recovery,
        )
    };
    let run = run_net(&inst, &mut asg, &Dlb2cBalance, &cfg).unwrap();
    assert!(
        run.invariant_violations.is_empty(),
        "{:?}",
        run.invariant_violations
    );
    assert!(run.settled(), "got {:?}", run.outcome);
    assert!(run.jobs_reclaimed > 0);
    assert_eq!(asg.num_jobs_on(MachineId(0)), 0);
    assert!(
        run.end_time > 1_400,
        "reclamation happened during the run, not in the final flush"
    );
    assert_multiset_preserved(&inst, &asg);
}

/// Epoch-guarded timers, perfect network: every `Accept` arms a lease
/// timer and every `Prepare` re-arms it, so stale timers fire all run
/// long — and every one of them must be swallowed by the epoch guard.
/// A single spurious abort shows up as a timeout event.
#[test]
fn epoch_guard_no_spurious_timeouts_on_perfect_network() {
    let inst = paper_two_cluster(3, 3, 48, 2);
    let mut asg = random_assignment(&inst, 7);
    let cfg = NetConfig {
        latency: LatencyModel::Constant(3),
        check_invariants: true,
        seed: 41,
        ..NetConfig::default()
    };
    let run = run_net(&inst, &mut asg, &Dlb2cBalance, &cfg).unwrap();
    assert!(run.settled(), "got {:?}", run.outcome);
    assert_eq!(
        run.msg.timeouts, 0,
        "perfect network: every stale timer must be epoch-filtered"
    );
    assert!(
        run.invariant_violations.is_empty(),
        "{:?}",
        run.invariant_violations
    );
    asg.validate(&inst).unwrap();
}

/// The lease-recovery path of the epoch guard: with `2·latency <
/// lease < 4·latency`, the lease armed at `Accept` expires *before*
/// the `Commit` can arrive — only the re-arm at `Prepare` keeps the
/// target engaged, and the stale `Accept`-lease timer that still fires
/// must be ignored (epoch was bumped by the re-arm). If either half
/// breaks, exchanges abort and timeouts appear.
#[test]
fn stale_lease_timer_after_prepare_re_arm_is_ignored() {
    let inst = paper_two_cluster(3, 2, 40, 4);
    let mut asg = random_assignment(&inst, 3);
    let cfg = NetConfig {
        latency: LatencyModel::Constant(50),
        lease_time: 128, // 2*50 < 128 < 4*50
        timeout: 256,    // patient requests: only the lease clock is tight
        backoff_cap: 512,
        check_invariants: true,
        seed: 23,
        ..NetConfig::default()
    };
    let run = run_net(&inst, &mut asg, &Dlb2cBalance, &cfg).unwrap();
    assert!(run.settled(), "got {:?}", run.outcome);
    assert!(
        run.exchanges > 0,
        "exchanges must complete despite the tight lease"
    );
    assert_eq!(
        run.msg.timeouts, 0,
        "stale lease timers after the Prepare re-arm must be epoch-filtered"
    );
    assert!(
        run.invariant_violations.is_empty(),
        "{:?}",
        run.invariant_violations
    );
    asg.validate(&inst).unwrap();
}
