//! Cross-validation against the paper's theory (Theorem 7).
//!
//! Over a perfect, (near-)zero-latency network the message-passing
//! DLB2C must inherit the round-driven engine's guarantee: a stable
//! state is a 2-approximation whenever `max_j p_j <= OPT` (Theorem 7).
//! The tests drive the net simulator to quiescence, *verify* the state
//! really is stable, and compare against the exact branch-and-bound
//! optimum. A proptest then checks the invariant that makes the theorem
//! transfer to asynchronous networks at all: a stable state stays
//! untouched under arbitrary message interleavings — jitter, loss and
//! duplication can delay convergence, but never un-converge a stable
//! schedule.

use lb_core::stability::is_stable;
use lb_core::{stabilize, Dlb2cBalance};
use lb_model::exact::{opt_makespan, ExactLimits};
use lb_model::prelude::*;
use lb_net::{run_net, FaultPlan, LatencyModel, NetConfig};
use lb_workloads::initial::random_assignment;
use lb_workloads::two_cluster::paper_two_cluster;
use proptest::prelude::*;

/// A perfect network with the minimum possible latency (1 tick).
fn zero_latency_config(seed: u64) -> NetConfig {
    NetConfig {
        latency: LatencyModel::Constant(1),
        faults: FaultPlan::none(),
        // 400 consecutive ineffective completed exchanges: with at most
        // C(6,2)=15 pairs, the chance any changeable pair went unprobed
        // that long is negligible, and the test then *proves* stability
        // with `is_stable` rather than trusting the heuristic stop.
        quiescence_window: 400,
        seed,
        ..NetConfig::default()
    }
}

#[test]
fn zero_latency_stable_dlb2c_is_2_approx() {
    let mut checked = 0;
    for inst_seed in 0..8u64 {
        // Small enough for exact OPT (<= 18 jobs).
        let inst = paper_two_cluster(3, 2, 14, inst_seed);
        let opt = opt_makespan(&inst, ExactLimits::default()).unwrap();
        if inst.max_finite_cost().unwrap() > opt {
            continue; // outside Theorem 7's hypothesis
        }
        let mut asg = random_assignment(&inst, inst_seed ^ 0xA5);
        let run = run_net(&inst, &mut asg, &Dlb2cBalance, &zero_latency_config(7)).unwrap();
        assert!(
            run.settled(),
            "perfect network must reach quiescence (instance seed {inst_seed})"
        );
        assert!(
            is_stable(&inst, &asg, &Dlb2cBalance),
            "quiescent net DLB2C state must be pairwise-stable (instance seed {inst_seed})"
        );
        assert!(
            run.final_makespan <= 2 * opt,
            "Theorem 7 violated: cmax {} > 2*OPT {} (instance seed {inst_seed})",
            run.final_makespan,
            2 * opt
        );
        checked += 1;
    }
    assert!(checked >= 3, "hypothesis filter left too few instances");
}

/// The net run must agree with the sequential engine on *what* a stable
/// point is, not just reach one: its final state satisfies exactly the
/// condition `stabilize` enforces.
#[test]
fn net_fixed_points_are_engine_fixed_points() {
    let inst = paper_two_cluster(3, 3, 24, 2);
    let mut asg = random_assignment(&inst, 9);
    let run = run_net(&inst, &mut asg, &Dlb2cBalance, &zero_latency_config(1)).unwrap();
    assert!(run.settled());
    // Running the deterministic stabilizer on the net result is a no-op.
    let before = asg.clone();
    let settled = stabilize(&inst, &mut asg, &Dlb2cBalance, 64);
    assert!(settled);
    assert_eq!(before, asg);
}

fn small_two_cluster() -> impl Strategy<Value = Instance> {
    (1usize..=3, 1usize..=3, 2usize..=12).prop_flat_map(|(m1, m2, n)| {
        proptest::collection::vec((1u64..=9, 1u64..=9), n)
            .prop_map(move |costs| Instance::two_cluster(m1, m2, costs).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Stability survives arbitrary message interleavings: start from a
    /// stabilized schedule, run the net protocol under random jitter,
    /// loss and duplication, and the schedule must come out untouched.
    /// (Every completed exchange applies the balancer to a stable pair,
    /// which is a no-op by definition — whatever order messages land in.)
    #[test]
    fn stable_states_survive_any_interleaving(
        inst in small_two_cluster(),
        asg_seed in 0u64..50,
        net_seed in 0u64..1000,
        jitter_max in 1u64..20,
        drop_permille in 0u16..400,
    ) {
        let mut asg = random_assignment(&inst, asg_seed);
        prop_assume!(stabilize(&inst, &mut asg, &Dlb2cBalance, 128));
        let before = asg.clone();
        let cfg = NetConfig {
            latency: LatencyModel::UniformJitter { min: 1, max: jitter_max },
            faults: FaultPlan { drop_permille, dup_permille: 100, ..FaultPlan::none() },
            max_exchanges: 300,
            quiescence_window: 0,
            max_time: 400_000,
            max_msgs: 400_000,
            seed: net_seed,
            ..NetConfig::default()
        };
        let run = run_net(&inst, &mut asg, &Dlb2cBalance, &cfg).unwrap();
        prop_assert_eq!(&before, &asg, "an interleaving changed a stable schedule");
        prop_assert_eq!(run.effective_exchanges, 0);
        prop_assert_eq!(run.jobs_moved, 0);
        prop_assert!(is_stable(&inst, &asg, &Dlb2cBalance));
    }
}
