//! Property tests for [`LinkPartition`] window boundaries.
//!
//! The partition window is start-inclusive / end-exclusive and the cut
//! is symmetric in direction — exactly the contract `FaultPlan::
//! partitioned` and the send path rely on. These properties pin the
//! boundary behavior at *exactly* `t == start` and `t == end`, where an
//! off-by-one would silently widen or narrow every partition window in
//! every experiment.

use lb_model::prelude::*;
use lb_net::LinkPartition;
use proptest::prelude::*;

fn arb_partition() -> impl Strategy<Value = LinkPartition> {
    // Non-empty window, small machine universe so group overlap and
    // unrelated machines both occur.
    (
        0u64..1_000,
        1u64..500,
        proptest::collection::vec(0u32..8, 1..4),
        proptest::collection::vec(0u32..8, 1..4),
    )
        .prop_map(|(start, len, a, b)| LinkPartition {
            start,
            end: start + len,
            a: a.into_iter().map(MachineId).collect(),
            b: b.into_iter().map(MachineId).collect(),
        })
}

proptest! {
    /// Severing is symmetric: a cut for `from -> to` is a cut for
    /// `to -> from`, at every time.
    #[test]
    fn severs_is_symmetric(p in arb_partition(), t in 0u64..2_000, from in 0u32..8, to in 0u32..8) {
        let (from, to) = (MachineId(from), MachineId(to));
        prop_assert_eq!(p.severs(t, from, to), p.severs(t, to, from));
    }

    /// The window is start-inclusive: a cross-partition message at
    /// exactly `t == start` is severed, and one tick earlier is not.
    #[test]
    fn start_is_inclusive(p in arb_partition()) {
        let from = p.a[0];
        let to = p.b[0];
        let crosses = !p.b.contains(&from) && !p.a.contains(&to);
        prop_assume!(crosses); // overlapping groups make direction moot
        prop_assert!(p.severs(p.start, from, to));
        if p.start > 0 {
            prop_assert!(!p.severs(p.start - 1, from, to));
        }
    }

    /// The window is end-exclusive: at exactly `t == end` the partition
    /// no longer holds, while the last tick inside (`end - 1`) does.
    #[test]
    fn end_is_exclusive(p in arb_partition()) {
        let from = p.a[0];
        let to = p.b[0];
        let crosses = !p.b.contains(&from) && !p.a.contains(&to);
        prop_assume!(crosses);
        prop_assert!(!p.severs(p.end, from, to));
        prop_assert!(p.severs(p.end - 1, from, to));
    }

    /// Outside the window nothing is ever severed, for any pair.
    #[test]
    fn outside_window_never_severs(
        p in arb_partition(),
        dt in 0u64..1_000,
        from in 0u32..8,
        to in 0u32..8,
    ) {
        let (from, to) = (MachineId(from), MachineId(to));
        prop_assert!(!p.severs(p.end + dt, from, to));
        if p.start > 0 {
            prop_assert!(!p.severs(p.start.saturating_sub(1 + dt), from, to));
        }
    }

    /// Machines in neither group always pass, even inside the window.
    #[test]
    fn unrelated_machines_pass_through(p in arb_partition(), t in 0u64..2_000) {
        let outsider = MachineId(8); // outside the 0..8 universe of groups
        for m in 0..9 {
            prop_assert!(!p.severs(t, outsider, MachineId(m)));
            prop_assert!(!p.severs(t, MachineId(m), outsider));
        }
    }
}
