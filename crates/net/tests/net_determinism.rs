//! Determinism of the network simulator.
//!
//! A run must be a pure function of `(instance, initial assignment,
//! NetConfig)` — byte-for-byte, under repetition and under any host
//! threading. The trace digest covers every processed event in order,
//! so digest equality means the runs were identical interleavings, not
//! merely same-answer.

use lb_core::Dlb2cBalance;
use lb_model::prelude::*;
use lb_net::{run_net, FaultPlan, LatencyModel, NetConfig, NetRun};
use lb_workloads::initial::random_assignment;
use lb_workloads::two_cluster::paper_two_cluster;

fn lossy_config(seed: u64) -> NetConfig {
    NetConfig {
        latency: LatencyModel::UniformJitter { min: 1, max: 9 },
        faults: FaultPlan {
            drop_permille: 150,
            dup_permille: 80,
            ..FaultPlan::none()
        },
        max_exchanges: 3_000,
        quiescence_window: 0,
        seed,
        ..NetConfig::default()
    }
}

fn one_run(seed: u64) -> (NetRun, Assignment) {
    let inst = paper_two_cluster(4, 3, 60, 11);
    let mut asg = random_assignment(&inst, 5);
    let run = run_net(&inst, &mut asg, &Dlb2cBalance, &lossy_config(seed)).unwrap();
    (run, asg)
}

#[test]
fn repeated_runs_are_identical() {
    let (a, asg_a) = one_run(42);
    let (b, asg_b) = one_run(42);
    assert_eq!(a.trace_digest, b.trace_digest);
    assert_eq!(a, b);
    assert_eq!(asg_a, asg_b);
}

#[test]
fn different_seeds_diverge() {
    let (a, _) = one_run(42);
    let (b, _) = one_run(43);
    assert_ne!(
        a.trace_digest, b.trace_digest,
        "distinct seeds should produce distinct interleavings"
    );
}

/// The acceptance gate: identical traces at two different thread counts.
///
/// The simulator is single-threaded by construction, so the danger is
/// accidental dependence on ambient state (hash randomization, pointer
/// order, thread-locals). Running the same configuration once on the
/// test thread (thread count 1) and then from four concurrent OS
/// threads (thread count 4) and comparing all five digests rules that
/// class of bug out.
#[test]
fn identical_across_thread_counts() {
    let (reference, _) = one_run(7);
    let digests: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| scope.spawn(|| one_run(7).0.trace_digest))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for d in digests {
        assert_eq!(d, reference.trace_digest);
    }
}

/// The parallel replication driver is thread-count invariant: the same
/// `(config, replications)` fan-out yields identical digests whether it
/// runs on one worker or several, because each replication's seed is a
/// pure function of the replication index.
#[test]
fn replicate_net_is_thread_count_invariant() {
    let cfg = lossy_config(21);
    let make = |r: u64| {
        let inst = paper_two_cluster(3, 3, 40, 30 + r);
        let asg = random_assignment(&inst, 60 + r);
        (inst, asg)
    };
    let digests = |threads: usize| -> Vec<u64> {
        lb_net::replicate_net(&cfg, &Dlb2cBalance, 6, threads, make)
            .into_iter()
            .map(|run| run.unwrap().trace_digest)
            .collect()
    };
    let one = digests(1);
    assert_eq!(one.len(), 6);
    assert_eq!(one, digests(4));
    assert_eq!(one, digests(0));
}

/// Changing only the latency model changes the interleaving (the model
/// is part of the deterministic input, not noise on top of it).
#[test]
fn latency_model_is_part_of_the_function() {
    let inst = paper_two_cluster(3, 2, 30, 3);
    let mut a = random_assignment(&inst, 1);
    let mut b = random_assignment(&inst, 1);
    let constant = NetConfig {
        latency: LatencyModel::Constant(5),
        max_exchanges: 500,
        quiescence_window: 0,
        seed: 9,
        ..NetConfig::default()
    };
    let two_cluster = NetConfig {
        latency: LatencyModel::TwoCluster {
            local: 2,
            cross: 40,
        },
        ..constant.clone()
    };
    let ra = run_net(&inst, &mut a, &Dlb2cBalance, &constant).unwrap();
    let rb = run_net(&inst, &mut b, &Dlb2cBalance, &two_cluster).unwrap();
    assert_ne!(ra.trace_digest, rb.trace_digest);
}
