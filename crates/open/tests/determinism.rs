//! The open-system determinism contract, pinned:
//!
//! * a run is a pure function of `(instance, process, config, seed)`;
//! * `shards` is a pure layout knob — every result field is identical
//!   for every shard count (the backlog index and the ledger both
//!   promise shard-count-invariant answers);
//! * topology churn composes deterministically through the drive loop.

use lb_distsim::topology::{TopologyEvent, TopologyPlan};
use lb_distsim::{drive_with_plan, stream_rng, ProbeHub, SimCore};
use lb_model::perturb::perturbed_instance;
use lb_model::prelude::*;
use lb_open::{run_open, ArrivalProcess, OpenConfig, OpenProtocol, Pairing};

fn instance() -> Instance {
    // Heterogeneous related machines: sizes vary, speeds vary.
    let sizes: Vec<Time> = (0..300).map(|k| 5 + (k * 7) % 40).collect();
    Instance::related(sizes, vec![1, 1, 2, 3, 1, 2, 4, 1]).unwrap()
}

fn config(shards: usize, pairing: Pairing) -> OpenConfig {
    OpenConfig {
        exchange_every: 12,
        pairs_per_epoch: 6,
        pairing,
        error_percent: 15,
        seed: 42,
        shards,
    }
}

#[test]
fn shards_never_change_a_result_byte() {
    let inst = instance();
    let process = ArrivalProcess::Poisson { mean_gap: 2.0 };
    for pairing in [Pairing::Random, Pairing::Greedy] {
        let reference = run_open(&inst, &process, &config(1, pairing));
        assert_eq!(reference.metrics.completed, 300);
        for shards in [2, 3, 8, 64] {
            let run = run_open(&inst, &process, &config(shards, pairing));
            assert_eq!(run, reference, "shards={shards} pairing={pairing:?}");
        }
    }
}

#[test]
fn identical_seeds_identical_runs_across_processes() {
    let inst = instance();
    for process in [
        ArrivalProcess::Poisson { mean_gap: 3.0 },
        ArrivalProcess::RandomOrder { horizon: 600 },
    ] {
        let a = run_open(&inst, &process, &config(1, Pairing::Random));
        let b = run_open(&inst, &process, &config(1, Pairing::Random));
        assert_eq!(a, b);
    }
}

#[test]
fn churn_composes_with_open_arrivals() {
    // A machine fails mid-run and rejoins later; the run must still
    // drain every job, deterministically, at any shard count.
    let inst = instance();
    let cfg = config(1, Pairing::Greedy);
    let process = ArrivalProcess::Poisson { mean_gap: 2.0 };
    let plan = TopologyPlan {
        events: vec![
            (40, TopologyEvent::Fail(MachineId(2))),
            (120, TopologyEvent::Rejoin(MachineId(2))),
        ],
    };

    let run_with_plan = |shards: usize| {
        let cfg = OpenConfig {
            shards,
            ..cfg.clone()
        };
        let mut rng = stream_rng(cfg.seed, 0);
        let arrivals = process.generate(&inst, &mut rng);
        let pred = perturbed_instance(&inst, cfg.error_percent, cfg.seed);
        let mut at = vec![MachineId(0); inst.num_jobs()];
        for a in &arrivals {
            at[a.job.idx()] = a.machine;
        }
        let mut ledger = Assignment::from_fn(&pred, |j| at[j.idx()]).unwrap();
        ledger.set_shards(cfg.shards);
        let mut core = SimCore::new(&pred, &mut ledger, cfg.seed);
        let mut protocol = OpenProtocol::new(&inst, &arrivals, &cfg);
        let mut hub = ProbeHub::new();
        drive_with_plan(&mut core, &mut protocol, &mut hub, u64::MAX, &plan).unwrap();
        protocol.into_run(&core)
    };

    let reference = run_with_plan(1);
    assert_eq!(reference.metrics.completed, 300, "churned run still drains");
    for shards in [2, 8] {
        assert_eq!(run_with_plan(shards), reference, "shards={shards}");
    }
}
