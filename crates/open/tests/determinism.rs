//! The open-system determinism contract, pinned:
//!
//! * a run is a pure function of `(instance, process, config, seed)`;
//! * `shards` is a pure layout knob — every result field is identical
//!   for every shard count (the backlog index and the ledger both
//!   promise shard-count-invariant answers);
//! * topology churn composes deterministically through the drive loop,
//!   for every `ChurnSemantics`;
//! * arrival generation draws from its own RNG stream, so a generated
//!   run and a replay of its own arrivals are byte-identical.

use lb_distsim::stream_rng;
use lb_distsim::topology::{TopologyEvent, TopologyPlan};
use lb_model::prelude::*;
use lb_open::{
    run_open, run_open_with_arrivals, run_open_with_plan, ArrivalProcess, ChurnSemantics,
    OpenConfig, Pairing, ARRIVAL_STREAM,
};

fn instance() -> Instance {
    // Heterogeneous related machines: sizes vary, speeds vary.
    let sizes: Vec<Time> = (0..300).map(|k| 5 + (k * 7) % 40).collect();
    Instance::related(sizes, vec![1, 1, 2, 3, 1, 2, 4, 1]).unwrap()
}

fn config(shards: usize, pairing: Pairing) -> OpenConfig {
    OpenConfig {
        exchange_every: 12,
        pairs_per_epoch: 6,
        pairing,
        error_percent: 15,
        seed: 42,
        shards,
        semantics: ChurnSemantics::CrashStop,
        check_invariants: false,
    }
}

fn blip_plan() -> TopologyPlan {
    TopologyPlan {
        events: vec![
            (40, TopologyEvent::Fail(MachineId(2))),
            (120, TopologyEvent::Rejoin(MachineId(2))),
        ],
    }
}

#[test]
fn shards_never_change_a_result_byte() {
    let inst = instance();
    let process = ArrivalProcess::Poisson { mean_gap: 2.0 };
    for pairing in [Pairing::Random, Pairing::Greedy] {
        let reference = run_open(&inst, &process, &config(1, pairing));
        assert_eq!(reference.metrics.completed, 300);
        for shards in [2, 3, 8, 64] {
            let run = run_open(&inst, &process, &config(shards, pairing));
            assert_eq!(run, reference, "shards={shards} pairing={pairing:?}");
        }
    }
}

#[test]
fn identical_seeds_identical_runs_across_processes() {
    let inst = instance();
    for process in [
        ArrivalProcess::Poisson { mean_gap: 3.0 },
        ArrivalProcess::RandomOrder { horizon: 600 },
    ] {
        let a = run_open(&inst, &process, &config(1, Pairing::Random));
        let b = run_open(&inst, &process, &config(1, Pairing::Random));
        assert_eq!(a, b);
    }
}

#[test]
fn generated_run_equals_replay_of_its_own_arrivals() {
    // Arrival generation draws from ARRIVAL_STREAM, the protocol from
    // stream 0; replaying the generated stream must reproduce the run
    // byte-for-byte (this is the RNG-aliasing regression test).
    let inst = instance();
    let process = ArrivalProcess::Poisson { mean_gap: 2.0 };
    let cfg = config(1, Pairing::Random);
    let generated = run_open(&inst, &process, &cfg);
    let mut rng = stream_rng(cfg.seed, ARRIVAL_STREAM);
    let arrivals = process.generate(&inst, &mut rng);
    let replayed = run_open_with_arrivals(&inst, &arrivals, &cfg);
    assert_eq!(generated, replayed);
}

#[test]
fn churn_composes_with_open_arrivals() {
    // A machine fails mid-run and rejoins later; under every semantics
    // the run must be deterministic at any shard count, and under the
    // crash semantics it must still drain every job with a clean
    // self-audit.
    let inst = instance();
    let process = ArrivalProcess::Poisson { mean_gap: 2.0 };
    let plan = blip_plan();
    for semantics in [
        ChurnSemantics::Graceful,
        ChurnSemantics::CrashStop,
        ChurnSemantics::CrashRecovery { lease: 64 },
    ] {
        let run_at = |shards: usize| {
            let cfg = OpenConfig {
                semantics,
                check_invariants: semantics != ChurnSemantics::Graceful,
                ..config(shards, Pairing::Greedy)
            };
            run_open_with_plan(&inst, &process, &cfg, &plan).unwrap()
        };
        let reference = run_at(1);
        assert_eq!(
            reference.metrics.completed, 300,
            "{semantics:?}: churned run still drains"
        );
        assert_eq!(reference.metrics.stranded, 0, "{semantics:?}");
        if semantics != ChurnSemantics::Graceful {
            assert!(
                reference.violations.is_empty(),
                "{semantics:?}: {:?}",
                reference.violations
            );
        }
        for shards in [2, 8] {
            assert_eq!(run_at(shards), reference, "{semantics:?} shards={shards}");
        }
    }
}
