//! Crash-semantics edge cases for the open-system event loop: the
//! preemption corners named in the PR (failure at a completion instant,
//! failure with an empty queue, rejoin before lease expiry, all machines
//! down), idempotency of duplicate topology events, and a property test
//! that random churn plans conserve jobs under both crash semantics.

use lb_distsim::topology::{TopologyEvent, TopologyPlan};
use lb_model::prelude::*;
use lb_open::{
    run_open_with_plan, trace_instance, ArrivalProcess, ChurnSemantics, OpenConfig, TraceRow,
};
use proptest::prelude::*;

fn row(time: Time, size: Time, machine: u32) -> TraceRow {
    TraceRow {
        time,
        size,
        machine: Some(machine),
    }
}

/// A no-balancing config so instants and steps are easy to enumerate.
fn cfg(semantics: ChurnSemantics) -> OpenConfig {
    OpenConfig {
        exchange_every: 0,
        semantics,
        check_invariants: true,
        ..OpenConfig::default()
    }
}

fn run(
    rows: Vec<TraceRow>,
    machines: usize,
    events: Vec<(u64, TopologyEvent)>,
    semantics: ChurnSemantics,
) -> lb_open::OpenRun {
    let inst = trace_instance(&rows, machines, None).unwrap();
    let process = ArrivalProcess::Trace { rows };
    run_open_with_plan(&inst, &process, &cfg(semantics), &TopologyPlan { events }).unwrap()
}

#[test]
fn failure_exactly_at_a_completion_instant_kills_the_job() {
    // One size-10 job starts on machine 0 at t=0 (step 0); the failure
    // applies just before the step that would complete it at t=10, so
    // the whole service is wasted, the stale heap entry is skipped, and
    // the job restarts from zero on machine 1.
    let r = run(
        vec![row(0, 10, 0)],
        2,
        vec![(1, TopologyEvent::Fail(MachineId(0)))],
        ChurnSemantics::CrashStop,
    );
    assert_eq!(r.metrics.arrived, 1);
    assert_eq!(r.metrics.completed, 1);
    assert_eq!(r.metrics.restarts, 1);
    assert_eq!(r.metrics.wasted_work, 10, "full service thrown away");
    assert_eq!(r.metrics.jobs_reclaimed, 1);
    assert_eq!(r.metrics.stranded, 0);
    // Killed at 10, restarted at 10 on machine 1, done at 20.
    assert_eq!(r.metrics.flow.max(), Some(20));
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn failure_with_empty_queue_still_preempts_the_runner() {
    // Machine 0 serves its only job (queue empty) when it dies at the
    // instant t=6 (machine 1's completion is the step in between);
    // elapsed service 6 of 10 is lost.
    for semantics in [
        ChurnSemantics::CrashStop,
        ChurnSemantics::CrashRecovery { lease: 3 },
    ] {
        let r = run(
            vec![row(0, 10, 0), row(4, 2, 1)],
            2,
            vec![(2, TopologyEvent::Fail(MachineId(0)))],
            semantics,
        );
        assert_eq!(r.metrics.completed, 2, "{semantics:?}");
        assert_eq!(r.metrics.restarts, 1, "{semantics:?}");
        assert_eq!(r.metrics.wasted_work, 6, "{semantics:?}");
        // No rejoin ever comes, so both semantics end up reclaiming
        // (crash-stop immediately, crash-recovery at lease expiry).
        assert_eq!(r.metrics.jobs_reclaimed, 1, "{semantics:?}");
        assert_eq!(r.metrics.stranded, 0, "{semantics:?}");
        assert!(r.violations.is_empty(), "{semantics:?}: {:?}", r.violations);
    }
}

#[test]
fn crash_recovery_rejoin_before_lease_expiry_resyncs_in_place() {
    // Machine 0 dies at t=1 holding a runner (1 of 10 served) and one
    // queued job; it rejoins well before its 100-tick lease expires, so
    // both jobs re-sync in place and finish locally — nothing is
    // reclaimed by machine 1.
    let r = run(
        vec![row(0, 10, 0), row(0, 5, 0), row(1, 1, 1)],
        2,
        vec![
            (1, TopologyEvent::Fail(MachineId(0))),
            (2, TopologyEvent::Rejoin(MachineId(0))),
        ],
        ChurnSemantics::CrashRecovery { lease: 100 },
    );
    assert_eq!(r.metrics.completed, 3);
    assert_eq!(r.metrics.restarts, 1);
    assert_eq!(r.metrics.wasted_work, 1);
    assert_eq!(r.metrics.jobs_resynced, 2);
    assert_eq!(r.metrics.jobs_reclaimed, 0);
    assert_eq!(r.metrics.stranded, 0);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn all_machines_down_terminates_with_stranded_work() {
    // Both machines die mid-wave and never rejoin: the loop must
    // terminate (not spin) and report the unfinished jobs as stranded.
    for semantics in [
        ChurnSemantics::CrashStop,
        ChurnSemantics::CrashRecovery { lease: 5 },
    ] {
        let r = run(
            vec![row(0, 10, 0), row(0, 10, 1), row(3, 4, 0)],
            2,
            vec![
                (1, TopologyEvent::Fail(MachineId(0))),
                (1, TopologyEvent::Fail(MachineId(1))),
            ],
            semantics,
        );
        assert_eq!(r.metrics.completed, 0, "{semantics:?}");
        assert_eq!(r.metrics.arrived, 3, "{semantics:?}");
        assert_eq!(r.metrics.stranded, 3, "{semantics:?}");
        assert_eq!(r.metrics.restarts, 2, "{semantics:?}");
        assert!(r.violations.is_empty(), "{semantics:?}: {:?}", r.violations);
    }
}

#[test]
fn graceful_semantics_is_the_anti_oracle() {
    // The pre-custody behavior: the dead machine keeps serving its
    // running job. The self-audit must flag it, and no restart happens.
    let r = run(
        vec![row(0, 10, 0), row(4, 2, 1)],
        2,
        vec![(2, TopologyEvent::Fail(MachineId(0)))],
        ChurnSemantics::Graceful,
    );
    assert_eq!(r.metrics.completed, 2, "the dead machine 'finishes'");
    assert_eq!(r.metrics.restarts, 0);
    assert_eq!(r.metrics.wasted_work, 0);
    assert!(
        r.violations
            .iter()
            .any(|v| v.contains("offline machine 0 is serving")),
        "self-audit must catch the graceful bug: {:?}",
        r.violations
    );
}

#[test]
fn duplicate_topology_events_are_idempotent() {
    // Double-Fail on an offline machine and Rejoin on an online one are
    // exactly the degenerate plans ddmin shrinking can produce; they
    // must be no-ops (satellite regression: each used to corrupt
    // `queued_on_online`).
    let rows = vec![row(0, 6, 0), row(1, 6, 0), row(2, 6, 1), row(3, 6, 1)];
    let noisy = vec![
        (1, TopologyEvent::Rejoin(MachineId(1))), // already online
        (2, TopologyEvent::Fail(MachineId(0))),
        (2, TopologyEvent::Fail(MachineId(0))), // already offline
        (3, TopologyEvent::Rejoin(MachineId(0))),
        (3, TopologyEvent::Rejoin(MachineId(0))), // already online
    ];
    let clean = vec![
        (2, TopologyEvent::Fail(MachineId(0))),
        (3, TopologyEvent::Rejoin(MachineId(0))),
    ];
    for semantics in [
        ChurnSemantics::Graceful,
        ChurnSemantics::CrashStop,
        ChurnSemantics::CrashRecovery { lease: 10 },
    ] {
        let a = run(rows.clone(), 2, noisy.clone(), semantics);
        let b = run(rows.clone(), 2, clean.clone(), semantics);
        assert_eq!(a, b, "{semantics:?}: duplicates must not change a byte");
        assert_eq!(a.metrics.completed, 4, "{semantics:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random churn plans conserve jobs under both crash semantics:
    /// every arrival either completes or is reported stranded, and the
    /// self-audit finds no custody violation at any instant.
    #[test]
    fn random_churn_conserves_jobs(
        machines in 2usize..5,
        jobs in 1usize..40,
        seed in 0u64..500,
        lease in 0u64..40,
        use_recovery in 0usize..2,
        raw_events in proptest::collection::vec((0u64..120, 0usize..5, 0usize..2), 0..12),
    ) {
        let sizes: Vec<Time> = (0..jobs as u64).map(|k| 1 + (k * 13) % 30).collect();
        let inst = Instance::uniform(machines, sizes).unwrap();
        let mut events: Vec<(u64, TopologyEvent)> = raw_events
            .into_iter()
            .map(|(round, m, is_fail)| {
                let machine = MachineId::from_idx(m % machines);
                (round, if is_fail == 1 { TopologyEvent::Fail(machine) } else { TopologyEvent::Rejoin(machine) })
            })
            .collect();
        events.sort_by_key(|&(round, _)| round);
        let semantics = if use_recovery == 1 {
            ChurnSemantics::CrashRecovery { lease }
        } else {
            ChurnSemantics::CrashStop
        };
        let config = OpenConfig {
            exchange_every: 8,
            seed,
            semantics,
            check_invariants: true,
            ..OpenConfig::default()
        };
        let process = ArrivalProcess::Poisson { mean_gap: 3.0 };
        let r = run_open_with_plan(&inst, &process, &config, &TopologyPlan { events }).unwrap();
        prop_assert_eq!(r.metrics.arrived, jobs as u64);
        prop_assert_eq!(r.metrics.completed + r.metrics.stranded, jobs as u64);
        prop_assert!(r.violations.is_empty(), "{:?}", r.violations);
    }
}
