//! Open-system simulation: the balancer as a service under sustained
//! load.
//!
//! Everything else in the workspace is a *closed* system — a fixed job
//! multiset balanced to quiescence, judged by makespan. This crate opens
//! it: jobs **arrive** over virtual time (Poisson, trace replay, or the
//! random-order adversary — [`arrivals`]), are served from per-machine
//! FIFO queues with sizes **revealed only at completion** (protocols
//! balance on `lb_model::perturb` predictions), and **depart**, leaving
//! behind response-time and flow-time distributions collected in
//! mergeable tail digests ([`metrics`], backed by
//! [`lb_stats::QuantileDigest`]).
//!
//! The event loop ([`sim`]) is a [`lb_distsim::Protocol`]: one round per
//! interesting virtual-time instant, driven by the same `drive` loop,
//! probes, and topology-churn plans as every closed-system protocol —
//! so machine failures compose with open-system arrivals for free.
//!
//! Determinism contract (docs/OPEN_SYSTEMS.md): a run is a pure function
//! of `(true instance, arrival process, config, seed)`; the `shards`
//! knob and the campaign engine's thread count never change a byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod metrics;
pub mod sim;

pub use arrivals::{parse_trace, trace_instance, ArrivalProcess, TraceRow};
pub use metrics::OpenMetrics;
pub use sim::{
    run_open, run_open_with_arrivals, run_open_with_arrivals_and_plan, run_open_with_plan,
    ChurnSemantics, OpenConfig, OpenProtocol, OpenRun, Pairing, ARRIVAL_STREAM,
};
