//! Tail metrics of an open-system run.
//!
//! A closed system is judged by one number (makespan); an open system is
//! judged by *distributions*: how long jobs wait and how long they spend
//! in the system, at the median and deep in the tail. [`OpenMetrics`]
//! collects both per-job durations into [`QuantileDigest`]s — mergeable,
//! order-independent sketches — so per-replication metrics can be folded
//! across the campaign engine's rayon pool without the merge order
//! leaking into the artifact bytes.
//!
//! Terminology (fixed here, used everywhere downstream):
//!
//! * **response time** — `service start − arrival`: how long the job sat
//!   in a queue before a machine first worked on it. The balancer's
//!   direct lever.
//! * **flow time** — `completion − arrival`: total time in system
//!   (response time + service time). What a user experiences.

use lb_model::prelude::Time;
use lb_stats::QuantileDigest;
use serde::{Deserialize, Serialize};

/// Mergeable metrics of one (or several folded) open-system runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenMetrics {
    /// Response-time digest (service start − arrival), one entry per
    /// completed job.
    pub response: QuantileDigest,
    /// Flow-time digest (completion − arrival), one entry per completed
    /// job.
    pub flow: QuantileDigest,
    /// Signed misprediction `Σ (true − predicted)` over completed jobs'
    /// sizes on their executing machine. Exact integer sum — unlike a
    /// float Welford accumulator, merging is bit-exact commutative.
    pub mispredict_sum: i128,
    /// Absolute misprediction `Σ |true − predicted|` over completed
    /// jobs.
    pub mispredict_abs: u128,
    /// Jobs that arrived.
    pub arrived: u64,
    /// Jobs that completed (equals `arrived` when the run drains).
    pub completed: u64,
    /// Queued-job migrations committed by exchange epochs.
    pub migrations: u64,
    /// Exchange epochs executed.
    pub epochs: u64,
    /// Completion instant of the last job (the run's virtual horizon).
    pub horizon: Time,
    /// Total *true* work completed, for utilization accounting.
    pub true_work: u128,
    /// Machine count (constant across merged runs of one grid point).
    pub machines: u64,
    /// Jobs preempted mid-service by a machine failure and restarted
    /// from zero (a job killed twice counts twice).
    pub restarts: u64,
    /// True service time thrown away by preemptions: the elapsed part of
    /// each killed job's service, summed over all restarts.
    pub wasted_work: u128,
    /// Jobs re-homed to survivors by custody-lease expiry or a
    /// crash-stop rejoin (open-system analogue of the closed-system
    /// custody counter).
    pub jobs_reclaimed: u64,
    /// Jobs kept by a crash-recovery machine that rejoined before its
    /// lease expired.
    pub jobs_resynced: u64,
    /// Jobs that arrived but never completed because no online machine
    /// could make progress when the run ended (all holders offline).
    pub stranded: u64,
}

impl OpenMetrics {
    /// Empty metrics for a system of `machines` machines.
    pub fn new(machines: usize) -> Self {
        Self {
            response: QuantileDigest::new(),
            flow: QuantileDigest::new(),
            mispredict_sum: 0,
            mispredict_abs: 0,
            arrived: 0,
            completed: 0,
            migrations: 0,
            epochs: 0,
            horizon: 0,
            true_work: 0,
            machines: machines as u64,
            restarts: 0,
            wasted_work: 0,
            jobs_reclaimed: 0,
            jobs_resynced: 0,
            stranded: 0,
        }
    }

    /// Records a running job killed by a machine failure after `elapsed`
    /// units of true service (all of it lost — the job restarts from
    /// zero wherever it lands next).
    pub fn record_preemption(&mut self, elapsed: Time) {
        self.restarts += 1;
        self.wasted_work += u128::from(elapsed);
    }

    /// Records one completed job.
    pub fn record_completion(
        &mut self,
        response: Time,
        flow: Time,
        true_cost: Time,
        predicted_cost: Time,
    ) {
        self.completed += 1;
        self.response.record(response);
        self.flow.record(flow);
        self.true_work += u128::from(true_cost);
        let diff = i128::from(true_cost) - i128::from(predicted_cost);
        self.mispredict_sum += diff;
        self.mispredict_abs += diff.unsigned_abs();
    }

    /// Mean signed misprediction per completed job (`None` when nothing
    /// completed). Near 0 for the symmetric perturbation model; drifts
    /// when predictions are biased.
    pub fn mean_misprediction(&self) -> Option<f64> {
        (self.completed > 0).then(|| self.mispredict_sum as f64 / self.completed as f64)
    }

    /// Mean absolute misprediction per completed job.
    pub fn mean_abs_misprediction(&self) -> Option<f64> {
        (self.completed > 0).then(|| self.mispredict_abs as f64 / self.completed as f64)
    }

    /// Realized utilization: completed true work over total machine-time
    /// `m * horizon`. Approaches the offered load ρ when the run drains
    /// a long stationary stream; `None` before any time has passed.
    pub fn utilization(&self) -> Option<f64> {
        (self.horizon > 0 && self.machines > 0)
            .then(|| self.true_work as f64 / (self.machines as f64 * self.horizon as f64))
    }

    /// Sustained completion throughput in jobs per 1000 virtual-time
    /// units; `None` before any time has passed.
    pub fn jobs_per_kilotime(&self) -> Option<f64> {
        (self.horizon > 0).then(|| self.completed as f64 * 1000.0 / self.horizon as f64)
    }

    /// Folds another run's metrics in. Digest merges are element-wise
    /// integer adds and [`OnlineStats::merge`] is the exact pairwise
    /// Welford combine, so folding is independent of merge order — the
    /// property the campaign engine's thread-count invariance rests on.
    pub fn merge(&mut self, other: &OpenMetrics) {
        debug_assert_eq!(
            self.machines, other.machines,
            "merging metrics across different machine counts"
        );
        self.response.merge(&other.response);
        self.flow.merge(&other.flow);
        self.mispredict_sum += other.mispredict_sum;
        self.mispredict_abs += other.mispredict_abs;
        self.arrived += other.arrived;
        self.completed += other.completed;
        self.migrations += other.migrations;
        self.epochs += other.epochs;
        self.horizon = self.horizon.max(other.horizon);
        self.true_work += other.true_work;
        self.restarts += other.restarts;
        self.wasted_work += other.wasted_work;
        self.jobs_reclaimed += other.jobs_reclaimed;
        self.jobs_resynced += other.jobs_resynced;
        self.stranded += other.stranded;
    }

    /// `(p50, p99, p999)` of response time (`None` when nothing
    /// completed).
    pub fn response_tail(&self) -> Option<(Time, Time, Time)> {
        self.response.tail_triple()
    }

    /// `(p50, p99, p999)` of flow time (`None` when nothing completed).
    pub fn flow_tail(&self) -> Option<(Time, Time, Time)> {
        self.flow.tail_triple()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(machines: usize, completions: &[(Time, Time)]) -> OpenMetrics {
        let mut m = OpenMetrics::new(machines);
        for &(resp, flow) in completions {
            m.arrived += 1;
            m.record_completion(resp, flow, flow - resp, flow - resp);
            m.horizon = m.horizon.max(flow);
        }
        m
    }

    #[test]
    fn records_and_reports_tails() {
        let m = sample(2, &[(0, 5), (3, 10), (1, 4)]);
        assert_eq!(m.completed, 3);
        let (p50, p99, p999) = m.flow_tail().unwrap();
        assert!(p50 <= 5 && p99 <= 10 && p999 <= 10);
        assert!(p50 <= p99 && p99 <= p999);
        assert_eq!(m.true_work, 5 + 7 + 3);
        assert_eq!(m.mean_misprediction(), Some(0.0));
    }

    #[test]
    fn utilization_and_throughput() {
        let m = sample(2, &[(0, 10), (0, 10)]);
        // 20 units of work over 2 machines * 10 time = 1.0.
        assert!((m.utilization().unwrap() - 1.0).abs() < 1e-12);
        assert!((m.jobs_per_kilotime().unwrap() - 200.0).abs() < 1e-9);
        assert_eq!(OpenMetrics::new(2).utilization(), None);
    }

    #[test]
    fn preemption_and_custody_counters_merge() {
        let mut a = sample(2, &[(0, 5)]);
        a.record_preemption(3);
        a.jobs_reclaimed += 2;
        a.stranded += 1;
        let mut b = sample(2, &[(1, 4)]);
        b.record_preemption(7);
        b.jobs_resynced += 4;
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.restarts, 2);
        assert_eq!(ab.wasted_work, 10);
        assert_eq!(ab.jobs_reclaimed, 2);
        assert_eq!(ab.jobs_resynced, 4);
        assert_eq!(ab.stranded, 1);
    }

    #[test]
    fn merge_is_order_independent() {
        let a = sample(3, &[(1, 2), (5, 9)]);
        let b = sample(3, &[(0, 7), (2, 2), (8, 30)]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.completed, 5);
        assert_eq!(ab.horizon, 30);
    }
}
