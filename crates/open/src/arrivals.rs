//! Arrival processes: how jobs enter the open system.
//!
//! Each process turns the instance's job set into a timed arrival stream
//! (reusing [`lb_distsim::Arrival`]): every job gets an arrival instant
//! and a submission machine, and the stream is sorted by `(time, job)`.
//! Three processes cover the evaluation space:
//!
//! * [`ArrivalProcess::Poisson`] — memoryless arrivals with exponential
//!   inter-arrival gaps of a given mean, each job submitted to a
//!   uniformly random machine. The workhorse for utilization sweeps:
//!   with total true work `W` over `n` jobs, mean gap `g` gives offered
//!   load `rho ~ W / (n * g * m)` on `m` unit-speed machines.
//! * [`ArrivalProcess::Trace`] — CSV replay (`time,size[,machine]`
//!   rows): real traffic, including bursts no stationary process
//!   produces. [`trace_instance`] builds the matching [`Instance`] from
//!   the same rows, so sizes and arrival instants stay paired.
//! * [`ArrivalProcess::RandomOrder`] — the random-order adversary of
//!   Im–Kell–Panigrahi (see PAPERS.md): an adversarial job *multiset*
//!   whose arrival *order* is a uniformly random permutation, spread
//!   evenly over a horizon. Separates "hard sizes" from "hard timing".
//!
//! All randomness is drawn from the caller's RNG (by convention stream 0
//! of the run seed, [`lb_distsim::stream_rng`]), so a stream is a pure
//! function of `(instance, process, seed)`.

use lb_distsim::Arrival;
use lb_model::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How jobs enter the system. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson process: exponential inter-arrival gaps with the given
    /// mean (in virtual-time units); uniformly random submission machine.
    Poisson {
        /// Mean inter-arrival gap; must be positive and finite.
        mean_gap: f64,
    },
    /// Trace replay: the `k`-th row of the trace is job `k`'s arrival.
    /// Rows without an explicit machine get a uniformly random one.
    Trace {
        /// Parsed trace rows, sorted by time ([`parse_trace`] sorts).
        rows: Vec<TraceRow>,
    },
    /// Random-order adversary: the instance's jobs in a uniformly random
    /// order, evenly spaced over `[0, horizon]`, random machines.
    RandomOrder {
        /// Time of the last arrival (0 = everything arrives at once).
        horizon: Time,
    },
}

/// One parsed trace row: at `time`, a job of true size `size` arrives,
/// optionally at a fixed machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRow {
    /// Arrival instant (virtual time).
    pub time: Time,
    /// True processing size of the job.
    pub size: Time,
    /// Submission machine; `None` = uniformly random at generation time.
    pub machine: Option<u32>,
}

impl ArrivalProcess {
    /// Generates the arrival stream for `inst`'s jobs, sorted by
    /// `(time, job)`. The number of jobs in `inst` must equal the trace
    /// length for [`ArrivalProcess::Trace`] (build the instance with
    /// [`trace_instance`] to guarantee it).
    pub fn generate(&self, inst: &Instance, rng: &mut StdRng) -> Vec<Arrival> {
        let m = inst.num_machines();
        let mut arrivals: Vec<Arrival> = match self {
            ArrivalProcess::Poisson { mean_gap } => {
                assert!(
                    mean_gap.is_finite() && *mean_gap > 0.0,
                    "Poisson mean_gap must be positive and finite, got {mean_gap}"
                );
                let mut t: Time = 0;
                inst.jobs()
                    .map(|job| {
                        t = t.saturating_add(exponential_gap(rng, *mean_gap));
                        Arrival {
                            time: t,
                            job,
                            machine: random_machine(rng, m),
                        }
                    })
                    .collect()
            }
            ArrivalProcess::Trace { rows } => {
                assert_eq!(
                    rows.len(),
                    inst.num_jobs(),
                    "trace has {} rows but the instance has {} jobs",
                    rows.len(),
                    inst.num_jobs()
                );
                rows.iter()
                    .zip(inst.jobs())
                    .map(|(row, job)| Arrival {
                        time: row.time,
                        job,
                        machine: match row.machine {
                            Some(mm) => {
                                assert!(
                                    (mm as usize) < m,
                                    "trace machine {mm} out of range (m = {m})"
                                );
                                MachineId(mm)
                            }
                            None => random_machine(rng, m),
                        },
                    })
                    .collect()
            }
            ArrivalProcess::RandomOrder { horizon } => {
                // Fisher–Yates on the job ids: a uniformly random order
                // of the adversarial multiset.
                let mut order: Vec<JobId> = inst.jobs().collect();
                for i in (1..order.len()).rev() {
                    order.swap(i, rng.gen_range(0..=i));
                }
                let n = order.len();
                order
                    .into_iter()
                    .enumerate()
                    .map(|(k, job)| Arrival {
                        // Evenly spaced: position k of n arrives at
                        // floor(k * horizon / (n - 1)).
                        time: if n <= 1 {
                            0
                        } else {
                            ((k as u128 * u128::from(*horizon)) / (n as u128 - 1)) as Time
                        },
                        job,
                        machine: random_machine(rng, m),
                    })
                    .collect()
            }
        };
        arrivals.sort_by_key(|a| (a.time, a.job));
        arrivals
    }
}

/// A uniformly random machine id out of `m`.
#[inline]
fn random_machine(rng: &mut StdRng, m: usize) -> MachineId {
    MachineId::from_idx(rng.gen_range(0..m))
}

/// One exponential inter-arrival gap with the given mean, rounded to the
/// nearest integer time unit (a gap of 0 means same-instant arrivals,
/// which the event loop handles).
#[inline]
fn exponential_gap(rng: &mut StdRng, mean: f64) -> Time {
    // 53-bit uniform in (0, 1]: never 0, so ln() is finite.
    const BITS: u64 = 1 << 53;
    let u = (rng.gen_range(1..=BITS) as f64) / (BITS as f64);
    let gap = -mean * u.ln();
    // Mean gaps are modest (≤ ~1e6) so this cannot overflow u64; round
    // to keep the mean of the integerized gap close to `mean`.
    gap.round() as Time
}

/// Parses a CSV trace: one `time,size[,machine]` row per line. Blank
/// lines and lines starting with `#` are skipped; a header line whose
/// first field is not numeric is skipped too. Rows are sorted by
/// `(time, original order)`.
pub fn parse_trace(text: &str) -> Result<Vec<TraceRow>> {
    let mut rows: Vec<TraceRow> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(',').map(str::trim);
        let time_field = fields.next().unwrap_or("");
        let Ok(time) = time_field.parse::<Time>() else {
            if lineno == 0 {
                continue; // header line
            }
            return Err(LbError::InvalidParameter(format!(
                "trace line {}: bad time {time_field:?}",
                lineno + 1
            )));
        };
        let size_field = fields.next().ok_or_else(|| {
            LbError::InvalidParameter(format!("trace line {}: missing size field", lineno + 1))
        })?;
        let size = size_field.parse::<Time>().map_err(|_| {
            LbError::InvalidParameter(format!(
                "trace line {}: bad size {size_field:?}",
                lineno + 1
            ))
        })?;
        if size == 0 {
            return Err(LbError::InvalidParameter(format!(
                "trace line {}: job sizes must be >= 1",
                lineno + 1
            )));
        }
        let machine = match fields.next() {
            None | Some("") => None,
            Some(f) => Some(f.parse::<u32>().map_err(|_| {
                LbError::InvalidParameter(format!("trace line {}: bad machine {f:?}", lineno + 1))
            })?),
        };
        rows.push(TraceRow {
            time,
            size,
            machine,
        });
    }
    rows.sort_by_key(|r| r.time);
    Ok(rows)
}

/// Builds the [`Instance`] matching a trace: job `k`'s true size is row
/// `k`'s size, on `m` machines — identical (`Costs::Uniform`) when
/// `slowdowns` is `None`, related machines otherwise.
pub fn trace_instance(
    rows: &[TraceRow],
    m: usize,
    slowdowns: Option<Vec<u64>>,
) -> Result<Instance> {
    let sizes: Vec<Time> = rows.iter().map(|r| r.size).collect();
    match slowdowns {
        Some(s) => {
            if s.len() != m {
                return Err(LbError::InvalidParameter(format!(
                    "{} slowdowns for {m} machines",
                    s.len()
                )));
            }
            Instance::related(sizes, s)
        }
        None => Instance::uniform(m, sizes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_distsim::stream_rng;

    #[test]
    fn poisson_stream_is_sorted_and_covers_all_jobs() {
        let inst = Instance::uniform(4, vec![3; 100]).unwrap();
        let mut rng = stream_rng(7, 0);
        let arr = ArrivalProcess::Poisson { mean_gap: 5.0 }.generate(&inst, &mut rng);
        assert_eq!(arr.len(), 100);
        assert!(arr.windows(2).all(|w| w[0].time <= w[1].time));
        let mut jobs: Vec<u32> = arr.iter().map(|a| a.job.0).collect();
        jobs.sort_unstable();
        assert_eq!(jobs, (0..100).collect::<Vec<_>>());
        // Mean gap should land in the right ballpark.
        let span = arr.last().unwrap().time;
        assert!(span > 150 && span < 1500, "span {span}");
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let inst = Instance::uniform(3, vec![2; 50]).unwrap();
        let a = ArrivalProcess::Poisson { mean_gap: 3.0 }.generate(&inst, &mut stream_rng(1, 0));
        let b = ArrivalProcess::Poisson { mean_gap: 3.0 }.generate(&inst, &mut stream_rng(1, 0));
        assert_eq!(a, b);
        let c = ArrivalProcess::Poisson { mean_gap: 3.0 }.generate(&inst, &mut stream_rng(2, 0));
        assert_ne!(a, c);
    }

    #[test]
    fn random_order_is_a_permutation_spread_over_the_horizon() {
        let inst = Instance::uniform(2, vec![1; 11]).unwrap();
        let mut rng = stream_rng(9, 0);
        let arr = ArrivalProcess::RandomOrder { horizon: 100 }.generate(&inst, &mut rng);
        assert_eq!(arr.len(), 11);
        assert_eq!(arr.first().unwrap().time, 0);
        assert_eq!(arr.last().unwrap().time, 100);
        let mut jobs: Vec<u32> = arr.iter().map(|a| a.job.0).collect();
        jobs.sort_unstable();
        assert_eq!(jobs, (0..11).collect::<Vec<_>>());
        // With overwhelming probability the order is not the identity.
        let identity = ArrivalProcess::RandomOrder { horizon: 100 }
            .generate(&inst, &mut stream_rng(9, 0))
            .iter()
            .enumerate()
            .all(|(k, a)| a.job.0 as usize == k);
        let _ = identity; // order is seed-dependent; permutation property is what matters
    }

    #[test]
    fn trace_parse_and_replay() {
        let text = "time,size,machine\n# comment\n10,5,1\n3,7\n\n3,2,0\n";
        let rows = parse_trace(text).unwrap();
        assert_eq!(rows.len(), 3);
        // Sorted by time, original order preserved within ties.
        assert_eq!(
            rows[0],
            TraceRow {
                time: 3,
                size: 7,
                machine: None
            }
        );
        assert_eq!(
            rows[1],
            TraceRow {
                time: 3,
                size: 2,
                machine: Some(0)
            }
        );
        assert_eq!(
            rows[2],
            TraceRow {
                time: 10,
                size: 5,
                machine: Some(1)
            }
        );

        let inst = trace_instance(&rows, 2, None).unwrap();
        assert_eq!(inst.num_jobs(), 3);
        assert_eq!(inst.cost(MachineId(0), JobId(0)), 7);

        let arr = ArrivalProcess::Trace { rows }.generate(&inst, &mut stream_rng(0, 0));
        assert_eq!(arr[0].time, 3);
        assert_eq!(arr[1].machine, MachineId(0));
        assert_eq!(arr[2].machine, MachineId(1));
    }

    #[test]
    fn trace_parse_rejects_garbage() {
        assert!(parse_trace("5,0").is_err(), "zero size");
        assert!(parse_trace("1,2,notamachine").is_err());
        assert!(parse_trace("1,2\nbogus,3").is_err(), "bad time past header");
        assert!(parse_trace("1").is_err(), "missing size");
    }

    #[test]
    fn trace_instance_with_slowdowns_is_related() {
        let rows = vec![TraceRow {
            time: 0,
            size: 10,
            machine: None,
        }];
        let inst = trace_instance(&rows, 2, Some(vec![1, 3])).unwrap();
        assert_eq!(inst.cost(MachineId(0), JobId(0)), 10);
        assert_eq!(inst.cost(MachineId(1), JobId(0)), 30);
        assert!(trace_instance(&rows, 2, Some(vec![1])).is_err());
    }
}
