//! The open-system event loop: arrivals, service, completions, and
//! periodic predicted-backlog exchange, as a [`Protocol`] round per
//! virtual-time instant.
//!
//! # Event-loop semantics
//!
//! Virtual time is discrete ([`Time`]). Each machine serves its FIFO
//! queue one job at a time, non-preemptively (the paper's model). One
//! protocol round processes one *interesting instant* `t`, in a fixed
//! order that the determinism contract (docs/OPEN_SYSTEMS.md) pins:
//!
//! 1. **completions** at `t`, in ascending machine id (frees machines,
//!    records metrics, reveals each job's true size);
//! 2. **arrivals** at `t`, in stream order (job lands at the back of its
//!    submission machine's queue);
//! 3. the **exchange epoch**, when `t` reached an epoch boundary: pairs
//!    of machines compare *predicted* backlogs and migrate queued jobs
//!    from richer to poorer (running jobs never move);
//! 4. **starts**: every woken idle online machine with a non-empty
//!    queue starts its front job — after the epoch, so a freshly
//!    migrated job can start immediately on its new machine.
//!
//! Starts are driven by a *wake list* (machines whose queue or runner
//! changed since the last instant), not an O(m) scan, so a round costs
//! O(events at `t` · log), and a drained run O((n + epochs·moves)·log)
//! — what lets one loop sustain 1e5 arrivals at m = 1e5 (the BENCH-tier
//! floor, see `crates/bench`).
//!
//! # Churn
//!
//! Topology plans compose with the loop through
//! [`run_open_with_plan`]; what a failure does to the failed machine's
//! jobs is the [`ChurnSemantics`] knob. Under the crash semantics the
//! *running* job is preempted at the failure instant — its elapsed true
//! service is lost (`OpenMetrics::wasted_work`, `restarts`) and its
//! scheduled completion becomes a stale heap entry skipped on pop — and
//! parks with the queue under a custody [`LeaseTable`] lease, reclaimed
//! by survivors or re-synced on rejoin exactly as the closed-system
//! custody layer does ([`lb_distsim::custody`]). [`ChurnSemantics::
//! Graceful`] preserves the pre-custody behavior (the running job
//! finishes on the dead machine) as the anti-oracle the chaos harness
//! uses to prove the self-audit catches the bug.
//!
//! # Stochastic sizes
//!
//! The protocol schedules everything it *decides* — queue order, backlog
//! comparisons, exchange moves — against the **predicted** instance
//! (`lb_model::perturbed_instance` of the truth). The **true** size is
//! used in exactly one place: computing a started job's completion
//! instant, which is indistinguishable from "the size is revealed when
//! the job finishes" because no decision reads the completion time
//! before it fires. Truth lands in the metrics (and the misprediction
//! accounting) at completion.
//!
//! # The ledger
//!
//! `core.asg` is the *placement ledger*: job → machine where it was (or
//! will be) executed, over the predicted instance. It starts at the
//! submission machines; every epoch's moves are committed as one
//! [`MigrationBatch`] via the adaptive `apply_migrations` path, so at
//! drain the ledger is the realized placement. `ledger.makespan()` is
//! then the *predicted* total-work bound and
//! [`lb_model::perturb::evaluate_under`]`(truth, ledger)` the *realized*
//! one — the open-system analogue of the closed-system makespan pair,
//! and the reconciliation of predictions against revealed truth.

use crate::arrivals::ArrivalProcess;
use crate::metrics::OpenMetrics;
use lb_distsim::custody::LeaseTable;
use lb_distsim::invariant::InvariantProbe;
use lb_distsim::probe::{ProbeHub, StopReason};
use lb_distsim::protocol::{drive_with_plan, Protocol, StepOutcome};
use lb_distsim::simcore::{stream_rng, SimCore};
use lb_distsim::topology::{TopologyEvent, TopologyPlan};
use lb_distsim::Arrival;
use lb_model::perturb::{evaluate_under, perturbed_instance};
use lb_model::prelude::*;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// How an exchange epoch pairs machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pairing {
    /// Uniformly random distinct pairs drawn from the online machines —
    /// the paper's decentralized, coordination-free spirit.
    Random,
    /// Deterministic max-backlog ↔ min-backlog pairs via the backlog
    /// index — an omniscient upper bound on what pairing can buy.
    Greedy,
}

/// RNG stream (of `stream_rng`) dedicated to arrival generation in
/// [`run_open`]. The protocol itself consumes stream 0 (via
/// [`SimCore::new`]), so a generated run and a replay of its own
/// arrivals through [`run_open_with_arrivals`] are byte-identical. The
/// constant is far from 0 so that derived replication seeds
/// (`seed + r`, stream 0) can never alias another replication's arrival
/// stream (`seed + r' + ARRIVAL_STREAM`).
pub const ARRIVAL_STREAM: u64 = 0x6F70_656E; // "open"

/// What a machine failure does to the jobs it was holding.
///
/// The closed-system analogue is [`lb_distsim::FaultSemantics`]; the
/// open-system deltas (a *running* job to preempt, virtual-time leases)
/// are described in `docs/OPEN_SYSTEMS.md` and `docs/FAULTS.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnSemantics {
    /// The pre-custody behavior, kept as the anti-oracle: queued jobs
    /// scatter to survivors at the failure instant, but the running job
    /// **completes gracefully on the dead machine** — physically
    /// impossible, and exactly what `--check-invariants` flags.
    Graceful,
    /// Crash-stop: the running job is killed (elapsed service lost) and
    /// parks with the queue; survivors reclaim the jobs at the next
    /// instant and restart them from zero. A rejoin is a fresh, empty
    /// node — anything still parked on it is re-homed to the *others*.
    CrashStop,
    /// Crash-recovery: the running job is killed, but the machine's jobs
    /// park under a custody lease of `lease` virtual-time units. A
    /// rejoin before expiry re-syncs them in place (queue order kept,
    /// the killed job restarts locally); at expiry survivors reclaim.
    CrashRecovery {
        /// Virtual-time units parked jobs wait before reclamation.
        lease: Time,
    },
}

/// Configuration of an open-system run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenConfig {
    /// Run an exchange epoch every this many time units (0 disables
    /// balancing: jobs execute where they arrive).
    pub exchange_every: Time,
    /// Pairs examined per exchange epoch.
    pub pairs_per_epoch: u32,
    /// How epochs pair machines.
    pub pairing: Pairing,
    /// Prediction error (±percent) of the sizes the balancer sees; 0 =
    /// perfect predictions (predicted instance == truth).
    pub error_percent: u32,
    /// Base seed; the protocol consumes stream 0 (`stream_rng(seed, 0)`)
    /// and arrival generation [`ARRIVAL_STREAM`].
    pub seed: u64,
    /// Shard count for the ledger assignment and the backlog index — a
    /// pure layout knob, never visible in any result.
    pub shards: usize,
    /// What a machine failure does to the failed machine's jobs.
    pub semantics: ChurnSemantics,
    /// Run the protocol self-audit (conservation, single custody, no
    /// service on offline machines) at every instant and topology event,
    /// reporting violations in [`OpenRun::violations`].
    pub check_invariants: bool,
}

impl Default for OpenConfig {
    fn default() -> Self {
        Self {
            exchange_every: 16,
            pairs_per_epoch: 8,
            pairing: Pairing::Random,
            error_percent: 0,
            seed: 0,
            shards: 1,
            semantics: ChurnSemantics::CrashStop,
            check_invariants: false,
        }
    }
}

/// Result of a drained open-system run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenRun {
    /// Tail metrics and counters.
    pub metrics: OpenMetrics,
    /// Ledger makespan under the *predicted* instance: the total-work
    /// bound the balancer believed it achieved.
    pub predicted_makespan: Time,
    /// Ledger makespan under the *true* instance: what actually ran.
    pub realized_makespan: Time,
    /// Invariant violations found when `check_invariants` was on (the
    /// protocol self-audit plus the ledger-level
    /// [`InvariantProbe`]); empty otherwise.
    pub violations: Vec<String>,
}

/// Arrivals + service + periodic predicted-backlog exchange as a
/// [`Protocol`]; one round is one time instant. See the
/// [module docs](self).
///
/// `core.inst` is the **predicted** instance; `core.asg` is the
/// placement ledger. The true instance stays on the protocol, touched
/// only to schedule completions and account metrics.
pub struct OpenProtocol<'a> {
    truth: &'a Instance,
    arrivals: &'a [Arrival],
    cfg: &'a OpenConfig,
    /// Per-machine FIFO queue of waiting jobs. Arrivals push to the
    /// back; service pops from the front; exchanges steal from the back
    /// (the jobs that would wait longest).
    queues: Vec<VecDeque<JobId>>,
    /// `(job, completion instant)` per busy machine. Preemption clears
    /// the slot but leaves the scheduled completion in the heap as a
    /// *stale* entry; pops only complete a job when the live runner's
    /// finish instant matches (lazy invalidation).
    running: Vec<Option<(JobId, Time)>>,
    /// Predicted queued work per machine (running jobs excluded — they
    /// can never move, so they are not negotiable backlog).
    backlog: Vec<u128>,
    /// Standalone index over `backlog`: O(S) argmax/argmin for greedy
    /// pairing, identical answers for every shard count.
    index: ShardedLoadIndex,
    /// Min-heap of `(completion instant, machine)`; pops at equal
    /// instants are machine-ordered. Preempted runners leave stale
    /// entries behind (see `running`), so a machine can transiently have
    /// more than one entry.
    completions: BinaryHeap<Reverse<(Time, u32)>>,
    /// Machines whose queue or runner changed since the last start
    /// sweep. Sorted + deduped before use, so start order is
    /// deterministic and the sweep never scans all m machines.
    wake: Vec<u32>,
    /// Queued (not running) jobs currently sitting on *online* machines
    /// — the condition under which epoch boundaries stay interesting.
    queued_on_online: usize,
    /// Arrival instant per job (set when the arrival fires).
    arrived_at: Vec<Option<Time>>,
    /// Completion flag per job (for the self-audit's conservation
    /// check).
    done: Vec<bool>,
    /// Reusable per-epoch migration buffer for the ledger commit.
    batch: MigrationBatch,
    /// Our own view of each machine's online flag. The driver flips
    /// `core.topology` *before* invoking `on_topology_event`, so this
    /// mirror is the only way to recognize (and ignore) a duplicate
    /// `Fail`/`Rejoin` instead of corrupting `queued_on_online`.
    online: Vec<bool>,
    /// Custody leases of failed machines (virtual-time deadlines).
    leases: LeaseTable,
    /// At-risk jobs parked per machine under a custody lease: the
    /// preempted runner first, then the queue in order. Excluded from
    /// `backlog` (parked work is not negotiable) and from `queues`
    /// (post-failure arrivals keep queueing there).
    parked: Vec<Vec<JobId>>,
    /// Self-audit reports (only populated under `check_invariants`).
    violations: Vec<String>,
    metrics: OpenMetrics,
    next_arrival: usize,
    now: Time,
    next_epoch: Time,
    total_jobs: usize,
}

impl<'a> OpenProtocol<'a> {
    /// A protocol over `truth`'s jobs arriving per `arrivals` (sorted by
    /// time), balancing on the predictions in `core.inst`.
    pub fn new(truth: &'a Instance, arrivals: &'a [Arrival], cfg: &'a OpenConfig) -> Self {
        debug_assert!(
            arrivals.windows(2).all(|w| w[0].time <= w[1].time),
            "arrivals sorted"
        );
        Self {
            truth,
            arrivals,
            cfg,
            queues: Vec::new(),
            running: Vec::new(),
            backlog: Vec::new(),
            index: ShardedLoadIndex::new(&[], 1),
            completions: BinaryHeap::new(),
            wake: Vec::new(),
            queued_on_online: 0,
            arrived_at: Vec::new(),
            done: Vec::new(),
            batch: MigrationBatch::new(),
            online: Vec::new(),
            leases: LeaseTable::new(),
            parked: Vec::new(),
            violations: Vec::new(),
            metrics: OpenMetrics::new(truth.num_machines()),
            next_arrival: 0,
            now: 0,
            next_epoch: if cfg.exchange_every > 0 {
                cfg.exchange_every
            } else {
                Time::MAX
            },
            total_jobs: arrivals.len(),
        }
    }

    /// The run's result; call after the drive stops. Jobs that arrived
    /// but never completed — their holders all offline when the run
    /// ended — are reported as stranded rather than spun on forever
    /// (the loop terminates the moment no online machine can progress).
    pub fn into_run(mut self, core: &SimCore) -> OpenRun {
        self.metrics.horizon = self.now;
        self.metrics.stranded = self.metrics.arrived - self.metrics.completed;
        OpenRun {
            metrics: self.metrics,
            predicted_makespan: core.asg.makespan(),
            realized_makespan: evaluate_under(self.truth, core.asg),
            violations: self.violations,
        }
    }

    /// Moves queued jobs from the back of `hi`'s queue to `lo` while the
    /// move lowers the pair's predicted max backlog. Both machines are
    /// online (the epoch only pairs online machines), so the
    /// queued-on-online count is unchanged. Returns moved count.
    fn balance_pair(&mut self, pred: &Instance, hi: usize, lo: usize) -> u64 {
        let mut moved = 0;
        let (mhi, mlo) = (MachineId::from_idx(hi), MachineId::from_idx(lo));
        while let Some(&job) = self.queues[hi].back() {
            let c_hi = u128::from(pred.cost(mhi, job));
            let c_lo = u128::from(pred.cost(mlo, job));
            // The pair max is backlog[hi] (the caller picked hi richer).
            // Moving the job helps iff the receiver stays below it.
            if self.backlog[lo] + c_lo >= self.backlog[hi] {
                break;
            }
            self.queues[hi].pop_back();
            self.queues[lo].push_back(job);
            self.shift_backlog(hi, |b| b - c_hi);
            self.shift_backlog(lo, |b| b + c_lo);
            self.batch.push(job, mlo);
            moved += 1;
            if self.backlog[hi] <= self.backlog[lo] {
                break;
            }
        }
        if moved > 0 {
            self.wake.push(lo as u32);
        }
        moved
    }

    /// Applies `f` to machine `i`'s backlog and keeps the index in sync.
    #[inline]
    fn shift_backlog(&mut self, i: usize, f: impl FnOnce(u128) -> u128) {
        let old = self.backlog[i];
        self.backlog[i] = f(old);
        self.index.update(&self.backlog, i, old);
    }

    /// One exchange epoch: draw `pairs_per_epoch` pairs, migrate queued
    /// work, commit the ledger moves machine-batched.
    fn exchange_epoch(&mut self, core: &mut SimCore) {
        let online = core.topology.online_machines();
        if online.len() < 2 {
            return;
        }
        self.metrics.epochs += 1;
        let k = online.len();
        let pred = core.inst;
        for _ in 0..self.cfg.pairs_per_epoch {
            let (a, b) = match self.cfg.pairing {
                Pairing::Random => {
                    // Same two-draw idiom as every gossip-style epoch in
                    // the workspace (distinct by construction).
                    let a = core.rng.gen_range(0..k);
                    let mut b = core.rng.gen_range(0..k - 1);
                    if b >= a {
                        b += 1;
                    }
                    (online[a].idx(), online[b].idx())
                }
                Pairing::Greedy => {
                    // Offline machines are deactivated in the backlog
                    // index, so both ends are online by construction.
                    match (self.index.argmax_active(), self.index.argmin_active()) {
                        (Some(hi), Some(lo)) if hi != lo => (hi, lo),
                        _ => break,
                    }
                }
            };
            // Richer side gives; predicted backlog decides the roles.
            let (hi, lo) = if self.backlog[a] >= self.backlog[b] {
                (a, b)
            } else {
                (b, a)
            };
            self.metrics.migrations += self.balance_pair(pred, hi, lo);
        }
        // One machine-batched ledger commit per epoch; the adaptive
        // applier picks the per-move path for small waves.
        if !self.batch.is_empty() {
            core.asg.apply_migrations(core.inst, &self.batch);
            self.batch.clear();
        }
    }

    /// Jobs not yet completed (arrived or not).
    fn remaining_completions(&self) -> usize {
        self.total_jobs - self.metrics.completed as usize
    }

    /// Queues each of `jobs` on a uniformly random member of `targets`
    /// (drawing from `core.rng`, one draw per job — the workspace-wide
    /// scatter idiom) and commits the ledger moves in one batch.
    fn scatter_jobs(&mut self, core: &mut SimCore, jobs: &[JobId], targets: &[MachineId]) -> u64 {
        debug_assert!(!targets.is_empty(), "scatter needs a target");
        for &job in jobs {
            let target = targets[core.rng.gen_range(0..targets.len())];
            let ti = target.idx();
            self.queues[ti].push_back(job);
            let c = u128::from(core.inst.cost(target, job));
            self.shift_backlog(ti, |b| b + c);
            self.queued_on_online += 1;
            self.wake.push(ti as u32);
            self.batch.push(job, target);
        }
        if !self.batch.is_empty() {
            core.asg.apply_migrations(core.inst, &self.batch);
            self.batch.clear();
        }
        jobs.len() as u64
    }

    /// Reclaims every parked machine whose custody lease has expired, in
    /// park order. Blocked reclamations (no online survivor) stay parked
    /// and retry at the next instant or topology change; if none ever
    /// comes, the run terminates with the jobs reported as stranded.
    fn reclaim_due(&mut self, core: &mut SimCore) {
        let mut i = 0;
        while i < self.leases.len() {
            let (machine, due) = self.leases.entries()[i];
            if due > self.now {
                i += 1;
                continue;
            }
            let survivors = core.topology.online_machines();
            if survivors.is_empty() {
                return; // nobody to reclaim to; retry later
            }
            self.leases.remove_at(i);
            let jobs = std::mem::take(&mut self.parked[machine.idx()]);
            self.metrics.jobs_reclaimed += jobs.len() as u64;
            self.scatter_jobs(core, &jobs, &survivors);
        }
    }

    /// Whether any machine is online, per the protocol's own mirror.
    fn any_online(&self) -> bool {
        self.online.iter().any(|&b| b)
    }

    /// A machine failed while holding jobs, under one of the crash
    /// semantics: kill the running job (elapsed service lost), park it
    /// with the queued jobs under a custody lease. `lease` is `None` for
    /// crash-stop (due immediately — survivors reclaim at the next
    /// instant) and the lease length for crash-recovery.
    fn fail_crash(&mut self, mi: usize, lease: Option<Time>) {
        let machine = MachineId::from_idx(mi);
        debug_assert!(self.parked[mi].is_empty(), "failed machine re-parked");
        let mut at_risk: Vec<JobId> = Vec::new();
        if let Some((job, finish)) = self.running[mi].take() {
            // The completion entry stays in the heap; `step` skips it as
            // stale because the runner slot no longer matches.
            let tc = self.truth.cost(machine, job).max(1);
            let elapsed = tc.saturating_sub(finish - self.now);
            self.metrics.record_preemption(elapsed);
            at_risk.push(job);
        }
        at_risk.extend(self.queues[mi].drain(..));
        self.shift_backlog(mi, |_| 0);
        if at_risk.is_empty() {
            return;
        }
        self.parked[mi] = at_risk;
        let deadline = match lease {
            Some(l) => self.now.saturating_add(l),
            None => self.now,
        };
        self.leases.park(machine, deadline);
    }

    /// The pre-custody failure handling, kept as the anti-oracle: queued
    /// jobs scatter to survivors, the running job keeps running on the
    /// dead machine. Errors when queued jobs exist but no survivor does.
    fn fail_graceful(&mut self, core: &mut SimCore, mi: usize) -> Result<u64> {
        if self.queues[mi].is_empty() {
            return Ok(0);
        }
        let survivors = core.topology.online_machines();
        if survivors.is_empty() {
            return Err(LbError::NoOnlineMachines);
        }
        let jobs: Vec<JobId> = std::mem::take(&mut self.queues[mi]).into();
        self.shift_backlog(mi, |_| 0);
        Ok(self.scatter_jobs(core, &jobs, &survivors))
    }

    /// Custody side of a rejoin: a machine coming back while its lease
    /// is still held either re-syncs its parked jobs (crash-recovery) or
    /// returns empty, its jobs re-homed to the others (crash-stop).
    fn rejoin_custody(&mut self, core: &mut SimCore, mi: usize) -> u64 {
        let machine = MachineId::from_idx(mi);
        if self.leases.unpark(machine).is_none() {
            return 0; // nothing parked (or already reclaimed)
        }
        let jobs = std::mem::take(&mut self.parked[mi]);
        match self.semantics() {
            ChurnSemantics::Graceful => unreachable!("graceful never parks"),
            ChurnSemantics::CrashRecovery { .. } => {
                // Re-sync: the machine kept its state. Its at-risk jobs
                // go back to the head of the queue in their original
                // order (the killed runner first); it restarts locally.
                self.metrics.jobs_resynced += jobs.len() as u64;
                for &job in jobs.iter().rev() {
                    let c = u128::from(core.inst.cost(machine, job));
                    self.queues[mi].push_front(job);
                    self.shift_backlog(mi, |b| b + c);
                    self.queued_on_online += 1;
                }
                if !jobs.is_empty() {
                    self.wake.push(mi as u32);
                }
                0
            }
            ChurnSemantics::CrashStop => {
                // A crash-stop rejoin is a fresh empty node: its lost
                // jobs are re-homed by the *other* online machines — or
                // by itself when it is the sole survivor (conservation
                // over purity; the alternative is losing the jobs).
                let mut targets: Vec<MachineId> = core
                    .topology
                    .online_machines()
                    .into_iter()
                    .filter(|&m| m != machine)
                    .collect();
                if targets.is_empty() {
                    targets.push(machine);
                }
                self.metrics.jobs_reclaimed += jobs.len() as u64;
                self.scatter_jobs(core, &jobs, &targets)
            }
        }
    }

    fn semantics(&self) -> ChurnSemantics {
        self.cfg.semantics
    }

    /// The opt-in self-audit: service only on online machines, every
    /// arrived-incomplete job held in exactly one place (queue, runner,
    /// or parked), and the `queued_on_online` count consistent with a
    /// recount. O(jobs + machines) per call, capped at 64 reports.
    fn audit(&mut self, core: &SimCore, ctx: &str) {
        const MAX_REPORTS: usize = 64;
        if !self.cfg.check_invariants || self.violations.len() >= MAX_REPORTS {
            return;
        }
        let m = self.queues.len();
        if m == 0 {
            return; // before on_start
        }
        let now = self.now;
        let report = |violations: &mut Vec<String>, msg: String| {
            if violations.len() < MAX_REPORTS {
                violations.push(format!("t={now} [{ctx}]: {msg}"));
            }
        };
        for mi in 0..m {
            if core.topology.is_online(MachineId::from_idx(mi)) {
                continue;
            }
            if let Some((job, _)) = self.running[mi] {
                report(
                    &mut self.violations,
                    format!("offline machine {mi} is serving job {}", job.idx()),
                );
            }
        }
        let mut held = vec![0u8; self.arrived_at.len()];
        for q in &self.queues {
            for &j in q {
                held[j.idx()] = held[j.idx()].saturating_add(1);
            }
        }
        for (j, _) in self.running.iter().flatten() {
            held[j.idx()] = held[j.idx()].saturating_add(1);
        }
        for p in &self.parked {
            for &j in p {
                held[j.idx()] = held[j.idx()].saturating_add(1);
            }
        }
        for (j, &count) in held.iter().enumerate() {
            let expected = u8::from(self.arrived_at[j].is_some() && !self.done[j]);
            if count != expected {
                report(
                    &mut self.violations,
                    format!("job {j} held in {count} places (expected {expected})"),
                );
            }
        }
        let recount: usize = (0..m)
            .filter(|&mi| core.topology.is_online(MachineId::from_idx(mi)))
            .map(|mi| self.queues[mi].len())
            .sum();
        if recount != self.queued_on_online {
            report(
                &mut self.violations,
                format!(
                    "queued_on_online is {} but a recount gives {recount}",
                    self.queued_on_online
                ),
            );
        }
    }
}

impl Protocol for OpenProtocol<'_> {
    fn on_start(&mut self, core: &mut SimCore, _probes: &mut ProbeHub) {
        let m = core.inst.num_machines();
        assert_eq!(
            core.inst.num_jobs(),
            self.truth.num_jobs(),
            "predicted and true instances must cover the same jobs"
        );
        self.queues = vec![VecDeque::new(); m];
        self.running = vec![None; m];
        self.backlog = vec![0; m];
        self.parked = vec![Vec::new(); m];
        self.online = vec![true; m];
        self.index = ShardedLoadIndex::new(&self.backlog, self.cfg.shards);
        for mi in 0..m {
            if !core.topology.is_online(MachineId::from_idx(mi)) {
                self.index.set_active(&self.backlog, mi, false);
                self.online[mi] = false;
            }
        }
        self.arrived_at = vec![None; core.inst.num_jobs()];
        self.done = vec![false; core.inst.num_jobs()];
    }

    fn step(&mut self, core: &mut SimCore, _probes: &mut ProbeHub) -> StepOutcome {
        let now = self.now;
        let pred = core.inst;

        // 0. Custody leases that expired by `now` hand their parked jobs
        //    to survivors (before completions, so a reclaimed job can
        //    start at this very instant).
        if !self.leases.is_empty() {
            self.reclaim_due(core);
        }

        // 1. Completions at `now`: the heap pops (time, machine) in
        //    ascending order, so equal-instant completions are handled
        //    in machine order. Entries whose runner was preempted are
        //    stale: only a pop matching the live runner's finish instant
        //    completes a job.
        while let Some(&Reverse((t, mi))) = self.completions.peek() {
            if t > now {
                break;
            }
            self.completions.pop();
            let mi = mi as usize;
            let Some((job, finish)) = self.running[mi] else {
                continue; // stale: runner was preempted
            };
            if finish != t {
                continue; // stale: a different job is running now
            }
            self.running[mi] = None;
            let arrived = self.arrived_at[job.idx()].expect("completed job arrived");
            let machine = MachineId::from_idx(mi);
            let true_cost = self.truth.cost(machine, job);
            // Service took max(true_cost, 1); response = start − arrival
            // (for a restarted job: its *last* start, so response and
            // flow both include the wasted earlier attempts).
            let response = (now - arrived).saturating_sub(true_cost.max(1));
            self.metrics.record_completion(
                response,
                now - arrived,
                true_cost,
                pred.cost(machine, job),
            );
            self.done[job.idx()] = true;
            self.wake.push(mi as u32);
        }

        // 2. Arrivals at `now`, in stream order.
        while self.next_arrival < self.arrivals.len()
            && self.arrivals[self.next_arrival].time == now
        {
            let a = self.arrivals[self.next_arrival];
            self.next_arrival += 1;
            self.arrived_at[a.job.idx()] = Some(now);
            self.metrics.arrived += 1;
            let mi = a.machine.idx();
            self.queues[mi].push_back(a.job);
            let c = u128::from(pred.cost(a.machine, a.job));
            self.shift_backlog(mi, |b| b + c);
            if core.topology.is_online(a.machine) {
                self.queued_on_online += 1;
                self.wake.push(mi as u32);
            }
        }

        // 3. Exchange epoch once `now` reached the boundary (time may
        //    jump past several idle boundaries; they collapse into one
        //    epoch, and the next boundary is realigned past `now`).
        if self.cfg.exchange_every > 0 && now >= self.next_epoch {
            self.exchange_epoch(core);
            self.next_epoch =
                (now / self.cfg.exchange_every + 1).saturating_mul(self.cfg.exchange_every);
        }

        // 4. Starts, on woken machines only (ascending id, deduped).
        self.wake.sort_unstable();
        self.wake.dedup();
        let wake = std::mem::take(&mut self.wake);
        for &mi32 in &wake {
            let mi = mi32 as usize;
            if self.queues[mi].is_empty()
                || self.running[mi].is_some()
                || !core.topology.is_online(MachineId::from_idx(mi))
            {
                continue;
            }
            let job = self.queues[mi].pop_front().expect("checked non-empty");
            self.queued_on_online -= 1;
            let machine = MachineId::from_idx(mi);
            let c = u128::from(pred.cost(machine, job));
            self.shift_backlog(mi, |b| b - c);
            // The one read of the true size: scheduling the completion.
            let finish = now.saturating_add(self.truth.cost(machine, job).max(1));
            self.running[mi] = Some((job, finish));
            self.completions.push(Reverse((finish, mi32)));
        }
        self.wake = wake;
        self.wake.clear();

        self.audit(core, "step");

        if self.remaining_completions() == 0 && self.next_arrival == self.arrivals.len() {
            return StepOutcome::Stop(StopReason::Quiescent);
        }

        // Advance to the next interesting instant.
        let mut next: Time = Time::MAX;
        if let Some(&Reverse((t, _))) = self.completions.peek() {
            next = next.min(t);
        }
        if self.next_arrival < self.arrivals.len() {
            next = next.min(self.arrivals[self.next_arrival].time);
        }
        if self.cfg.exchange_every > 0 {
            // Epochs only matter while work is queued on online machines
            // or still arriving — otherwise they would tick forever.
            if self.queued_on_online > 0 || self.next_arrival < self.arrivals.len() {
                next = next.min(self.next_epoch);
            }
        }
        if let Some(d) = self.leases.next_deadline() {
            // A held custody lease is an interesting instant — but only
            // while a survivor exists to reclaim to. An overdue lease
            // (blocked earlier, survivors online now) fires at the very
            // next tick rather than re-processing `now`.
            if self.any_online() {
                next = next.min(d.max(now.saturating_add(1)));
            }
        }
        if next == Time::MAX {
            // Every holder of the remaining work is offline and no lease
            // can be served: terminate and report the jobs as stranded
            // (`into_run`) instead of spinning.
            return StepOutcome::Stop(StopReason::Quiescent);
        }
        debug_assert!(next > now, "time must advance");
        self.now = next;
        StepOutcome::Continue
    }

    /// Queue-based churn under the configured [`ChurnSemantics`].
    ///
    /// A failure deactivates the machine in the backlog index (greedy
    /// pairing never selects it) and then dispatches: graceful scatters
    /// the queue and lets the runner finish (the documented anti-oracle
    /// bug); the crash semantics kill the runner and park it with the
    /// queue under a custody lease ([`OpenProtocol::fail_crash`]). A
    /// rejoin re-activates the machine, makes whatever queued on it
    /// while offline startable again, and settles any held lease
    /// ([`OpenProtocol::rejoin_custody`]).
    ///
    /// The handler is idempotent: the driver flips the topology flag
    /// *before* invoking it, so a duplicate `Fail`/`Rejoin` (possible in
    /// hand-built or ddmin-shrunk plans) is recognized via the
    /// protocol's own `online` mirror and ignored — double-applying
    /// either event would corrupt `queued_on_online`.
    fn on_topology_event(&mut self, core: &mut SimCore, ev: TopologyEvent) -> Result<u64> {
        let applied = match ev {
            TopologyEvent::Fail(machine) => {
                let mi = machine.idx();
                if !self.online[mi] {
                    return Ok(0); // duplicate Fail: already offline
                }
                self.online[mi] = false;
                self.index.set_active(&self.backlog, mi, false);
                // Its queued jobs were counted while it was online.
                self.queued_on_online -= self.queues[mi].len();
                match self.semantics() {
                    ChurnSemantics::Graceful => self.fail_graceful(core, mi)?,
                    ChurnSemantics::CrashStop => {
                        self.fail_crash(mi, None);
                        0
                    }
                    ChurnSemantics::CrashRecovery { lease } => {
                        self.fail_crash(mi, Some(lease));
                        0
                    }
                }
            }
            TopologyEvent::Rejoin(machine) => {
                let mi = machine.idx();
                if self.online[mi] {
                    return Ok(0); // duplicate Rejoin: already online
                }
                self.online[mi] = true;
                self.index.set_active(&self.backlog, mi, true);
                // Jobs that arrived while it was offline become
                // startable (and balanceable) again.
                self.queued_on_online += self.queues[mi].len();
                if !self.queues[mi].is_empty() {
                    self.wake.push(mi as u32);
                }
                self.rejoin_custody(core, mi)
            }
        };
        self.audit(core, "topology");
        Ok(applied)
    }
}

/// Runs an open-system simulation to drain: generates the arrival stream
/// from `process`, derives the predicted instance
/// (`perturbed_instance(truth, cfg.error_percent, cfg.seed)`), places
/// every job on its submission machine in the ledger, and drives
/// [`OpenProtocol`] through the standard [`drive`] loop.
///
/// The result is a deterministic function of
/// `(truth, process, cfg.seed, cfg)`; `cfg.shards` never changes a byte
/// of it (pinned by `tests/determinism.rs`).
pub fn run_open(truth: &Instance, process: &ArrivalProcess, cfg: &OpenConfig) -> OpenRun {
    run_open_with_plan(truth, process, cfg, &TopologyPlan::empty())
        .expect("a run without topology events cannot fail")
}

/// [`run_open`] under a topology (churn) plan: arrivals are generated
/// from `process` on the dedicated [`ARRIVAL_STREAM`], then the run
/// proceeds as [`run_open_with_arrivals_and_plan`]. Errors only when an
/// event cannot be absorbed (graceful semantics failing the last online
/// machine while it holds queued jobs).
pub fn run_open_with_plan(
    truth: &Instance,
    process: &ArrivalProcess,
    cfg: &OpenConfig,
    plan: &TopologyPlan,
) -> Result<OpenRun> {
    let mut rng = stream_rng(cfg.seed, ARRIVAL_STREAM);
    let arrivals = process.generate(truth, &mut rng);
    run_open_with_arrivals_and_plan(truth, &arrivals, cfg, plan)
}

/// [`run_open`] with a pre-generated arrival stream (sorted by time) —
/// the entry point trace replay and the benches use. The protocol's RNG
/// is stream 0 of `cfg.seed`; arrival generation in [`run_open`] draws
/// from the dedicated [`ARRIVAL_STREAM`], so replaying a generated run's
/// own arrivals through this entry point reproduces it byte-for-byte.
pub fn run_open_with_arrivals(truth: &Instance, arrivals: &[Arrival], cfg: &OpenConfig) -> OpenRun {
    run_open_with_arrivals_and_plan(truth, arrivals, cfg, &TopologyPlan::empty())
        .expect("a run without topology events cannot fail")
}

/// [`run_open_with_arrivals`] under a topology (churn) plan. Event
/// rounds index protocol *steps* (interesting instants), the same
/// round-keyed convention every closed-system plan uses; events at or
/// past the stopping step are applied after the loop. When
/// `cfg.check_invariants` is set, the ledger-level
/// [`InvariantProbe`] audit runs alongside the protocol self-audit and
/// both report into [`OpenRun::violations`].
pub fn run_open_with_arrivals_and_plan(
    truth: &Instance,
    arrivals: &[Arrival],
    cfg: &OpenConfig,
    plan: &TopologyPlan,
) -> Result<OpenRun> {
    let pred = perturbed_instance(truth, cfg.error_percent, cfg.seed);
    // The ledger starts with every job on its submission machine; a job
    // missing from the stream (possible only with hand-built streams)
    // stays parked on machine 0.
    let mut at = vec![MachineId(0); truth.num_jobs()];
    for a in arrivals {
        at[a.job.idx()] = a.machine;
    }
    let mut ledger =
        Assignment::from_fn(&pred, |j| at[j.idx()]).expect("submission machines are in range");
    ledger.set_shards(cfg.shards);
    let mut core = SimCore::new(&pred, &mut ledger, cfg.seed);
    let mut protocol = OpenProtocol::new(truth, arrivals, cfg);
    let mut invariants = InvariantProbe::new();
    {
        let mut hub = ProbeHub::new();
        if cfg.check_invariants {
            hub.push(&mut invariants);
        }
        drive_with_plan(&mut core, &mut protocol, &mut hub, u64::MAX, plan)?;
    }
    let mut run = protocol.into_run(&core);
    run.violations.extend(invariants.reports());
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{trace_instance, TraceRow};

    fn uniform(m: usize, sizes: Vec<Time>) -> Instance {
        Instance::uniform(m, sizes).unwrap()
    }

    fn poisson(gap: f64) -> ArrivalProcess {
        ArrivalProcess::Poisson { mean_gap: gap }
    }

    #[test]
    fn drains_and_counts_every_job() {
        let inst = uniform(4, vec![5; 200]);
        let run = run_open(&inst, &poisson(2.0), &OpenConfig::default());
        assert_eq!(run.metrics.arrived, 200);
        assert_eq!(run.metrics.completed, 200);
        assert_eq!(run.metrics.flow.count(), 200);
        assert!(run.metrics.horizon > 0);
        assert!(run.realized_makespan > 0);
    }

    #[test]
    fn zero_error_realized_equals_predicted() {
        let inst = uniform(3, vec![7; 60]);
        let run = run_open(&inst, &poisson(1.5), &OpenConfig::default());
        assert_eq!(run.predicted_makespan, run.realized_makespan);
        assert_eq!(run.metrics.mean_misprediction(), Some(0.0));
    }

    #[test]
    fn misprediction_shows_up_under_error() {
        let inst = uniform(3, vec![100; 80]);
        let cfg = OpenConfig {
            error_percent: 30,
            ..OpenConfig::default()
        };
        let run = run_open(&inst, &poisson(2.0), &cfg);
        assert!(run.metrics.mean_abs_misprediction().unwrap() > 0.0);
        // Predicted and realized makespans disagree under misprediction
        // (with overwhelming probability at ±30% on 80 jobs).
        assert_ne!(run.predicted_makespan, run.realized_makespan);
    }

    #[test]
    fn balancing_beats_no_balancing_on_skewed_submission() {
        // Every job submitted to machine 0 via a trace; balancing must
        // cut the flow-time tail by a wide margin.
        let rows: Vec<TraceRow> = (0..64)
            .map(|k| TraceRow {
                time: k,
                size: 40,
                machine: Some(0),
            })
            .collect();
        let inst = trace_instance(&rows, 8, None).unwrap();
        let process = ArrivalProcess::Trace { rows };
        let off = OpenConfig {
            exchange_every: 0,
            ..OpenConfig::default()
        };
        let on = OpenConfig {
            exchange_every: 8,
            pairs_per_epoch: 16,
            ..OpenConfig::default()
        };
        let base = run_open(&inst, &process, &off);
        let bal = run_open(&inst, &process, &on);
        assert_eq!(base.metrics.migrations, 0);
        assert!(bal.metrics.migrations > 0);
        let (_, base_p99, _) = base.metrics.flow_tail().unwrap();
        let (_, bal_p99, _) = bal.metrics.flow_tail().unwrap();
        assert!(
            bal_p99 * 2 < base_p99,
            "balancing barely helped: p99 {bal_p99} vs {base_p99}"
        );
    }

    #[test]
    fn greedy_pairing_also_drains_and_helps() {
        let rows: Vec<TraceRow> = (0..50)
            .map(|k| TraceRow {
                time: 2 * k,
                size: 30,
                machine: Some(0),
            })
            .collect();
        let inst = trace_instance(&rows, 5, None).unwrap();
        let process = ArrivalProcess::Trace { rows };
        let cfg = OpenConfig {
            exchange_every: 10,
            pairs_per_epoch: 4,
            pairing: Pairing::Greedy,
            ..OpenConfig::default()
        };
        let run = run_open(&inst, &process, &cfg);
        assert_eq!(run.metrics.completed, 50);
        assert!(run.metrics.migrations > 0);
    }

    #[test]
    fn response_flow_identity_holds_per_digest_sums() {
        // flow = response + service, so Σ flow − Σ response = Σ true
        // service = completed true work (both sums are exact).
        let inst = uniform(4, vec![9; 120]);
        let run = run_open(&inst, &poisson(3.0), &OpenConfig::default());
        let m = &run.metrics;
        assert_eq!(m.flow.sum() - m.response.sum(), m.true_work);
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = uniform(5, vec![6; 100]);
        let cfg = OpenConfig {
            error_percent: 10,
            ..OpenConfig::default()
        };
        let a = run_open(&inst, &poisson(2.0), &cfg);
        let b = run_open(&inst, &poisson(2.0), &cfg);
        assert_eq!(a, b);
        let c = run_open(
            &inst,
            &poisson(2.0),
            &OpenConfig {
                seed: 1,
                ..cfg.clone()
            },
        );
        assert_ne!(a, c);
    }

    #[test]
    fn empty_stream_is_a_clean_noop() {
        let inst = uniform(3, vec![]);
        let run = run_open(&inst, &poisson(1.0), &OpenConfig::default());
        assert_eq!(run.metrics.arrived, 0);
        assert_eq!(run.metrics.completed, 0);
        assert_eq!(run.metrics.flow_tail(), None);
        assert_eq!(run.predicted_makespan, 0);
    }

    #[test]
    fn ledger_matches_execution_sites() {
        // With balancing off, every job's ledger machine is its
        // submission machine; the realized makespan is the max
        // per-machine total work.
        let rows = vec![
            TraceRow {
                time: 0,
                size: 10,
                machine: Some(1),
            },
            TraceRow {
                time: 0,
                size: 3,
                machine: Some(0),
            },
            TraceRow {
                time: 5,
                size: 4,
                machine: Some(1),
            },
        ];
        let inst = trace_instance(&rows, 2, None).unwrap();
        let cfg = OpenConfig {
            exchange_every: 0,
            ..OpenConfig::default()
        };
        let run = run_open(&inst, &ArrivalProcess::Trace { rows }, &cfg);
        assert_eq!(run.realized_makespan, 14, "machine 1 runs 10 + 4");
        // Flow times: job 0 (size 10, t=0) = 10; job 1 (size 3, t=0) =
        // 3; job 2 arrives at 5, waits until 10, finishes 14 → flow 9.
        assert_eq!(run.metrics.flow.max(), Some(10));
        assert_eq!(run.metrics.response.max(), Some(5), "job 2 waited 5");
    }
}
