//! The open-system event loop: arrivals, service, completions, and
//! periodic predicted-backlog exchange, as a [`Protocol`] round per
//! virtual-time instant.
//!
//! # Event-loop semantics
//!
//! Virtual time is discrete ([`Time`]). Each machine serves its FIFO
//! queue one job at a time, non-preemptively (the paper's model). One
//! protocol round processes one *interesting instant* `t`, in a fixed
//! order that the determinism contract (docs/OPEN_SYSTEMS.md) pins:
//!
//! 1. **completions** at `t`, in ascending machine id (frees machines,
//!    records metrics, reveals each job's true size);
//! 2. **arrivals** at `t`, in stream order (job lands at the back of its
//!    submission machine's queue);
//! 3. the **exchange epoch**, when `t` reached an epoch boundary: pairs
//!    of machines compare *predicted* backlogs and migrate queued jobs
//!    from richer to poorer (running jobs never move);
//! 4. **starts**: every woken idle online machine with a non-empty
//!    queue starts its front job — after the epoch, so a freshly
//!    migrated job can start immediately on its new machine.
//!
//! Starts are driven by a *wake list* (machines whose queue or runner
//! changed since the last instant), not an O(m) scan, so a round costs
//! O(events at `t` · log), and a drained run O((n + epochs·moves)·log)
//! — what lets one loop sustain 1e5 arrivals at m = 1e5 (the BENCH-tier
//! floor, see `crates/bench`).
//!
//! # Stochastic sizes
//!
//! The protocol schedules everything it *decides* — queue order, backlog
//! comparisons, exchange moves — against the **predicted** instance
//! (`lb_model::perturbed_instance` of the truth). The **true** size is
//! used in exactly one place: computing a started job's completion
//! instant, which is indistinguishable from "the size is revealed when
//! the job finishes" because no decision reads the completion time
//! before it fires. Truth lands in the metrics (and the misprediction
//! accounting) at completion.
//!
//! # The ledger
//!
//! `core.asg` is the *placement ledger*: job → machine where it was (or
//! will be) executed, over the predicted instance. It starts at the
//! submission machines; every epoch's moves are committed as one
//! [`MigrationBatch`] via the adaptive `apply_migrations` path, so at
//! drain the ledger is the realized placement. `ledger.makespan()` is
//! then the *predicted* total-work bound and
//! [`lb_model::perturb::evaluate_under`]`(truth, ledger)` the *realized*
//! one — the open-system analogue of the closed-system makespan pair,
//! and the reconciliation of predictions against revealed truth.

use crate::arrivals::ArrivalProcess;
use crate::metrics::OpenMetrics;
use lb_distsim::probe::{ProbeHub, StopReason};
use lb_distsim::protocol::{drive, Protocol, StepOutcome};
use lb_distsim::simcore::{stream_rng, SimCore};
use lb_distsim::topology::TopologyEvent;
use lb_distsim::Arrival;
use lb_model::perturb::{evaluate_under, perturbed_instance};
use lb_model::prelude::*;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// How an exchange epoch pairs machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pairing {
    /// Uniformly random distinct pairs drawn from the online machines —
    /// the paper's decentralized, coordination-free spirit.
    Random,
    /// Deterministic max-backlog ↔ min-backlog pairs via the backlog
    /// index — an omniscient upper bound on what pairing can buy.
    Greedy,
}

/// Configuration of an open-system run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenConfig {
    /// Run an exchange epoch every this many time units (0 disables
    /// balancing: jobs execute where they arrive).
    pub exchange_every: Time,
    /// Pairs examined per exchange epoch.
    pub pairs_per_epoch: u32,
    /// How epochs pair machines.
    pub pairing: Pairing,
    /// Prediction error (±percent) of the sizes the balancer sees; 0 =
    /// perfect predictions (predicted instance == truth).
    pub error_percent: u32,
    /// Base seed; the run consumes stream 0 (`stream_rng(seed, 0)`).
    pub seed: u64,
    /// Shard count for the ledger assignment and the backlog index — a
    /// pure layout knob, never visible in any result.
    pub shards: usize,
}

impl Default for OpenConfig {
    fn default() -> Self {
        Self {
            exchange_every: 16,
            pairs_per_epoch: 8,
            pairing: Pairing::Random,
            error_percent: 0,
            seed: 0,
            shards: 1,
        }
    }
}

/// Result of a drained open-system run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenRun {
    /// Tail metrics and counters.
    pub metrics: OpenMetrics,
    /// Ledger makespan under the *predicted* instance: the total-work
    /// bound the balancer believed it achieved.
    pub predicted_makespan: Time,
    /// Ledger makespan under the *true* instance: what actually ran.
    pub realized_makespan: Time,
}

/// Arrivals + service + periodic predicted-backlog exchange as a
/// [`Protocol`]; one round is one time instant. See the
/// [module docs](self).
///
/// `core.inst` is the **predicted** instance; `core.asg` is the
/// placement ledger. The true instance stays on the protocol, touched
/// only to schedule completions and account metrics.
pub struct OpenProtocol<'a> {
    truth: &'a Instance,
    arrivals: &'a [Arrival],
    cfg: &'a OpenConfig,
    /// Per-machine FIFO queue of waiting jobs. Arrivals push to the
    /// back; service pops from the front; exchanges steal from the back
    /// (the jobs that would wait longest).
    queues: Vec<VecDeque<JobId>>,
    /// `(job, completion instant)` per busy machine.
    running: Vec<Option<(JobId, Time)>>,
    /// Predicted queued work per machine (running jobs excluded — they
    /// can never move, so they are not negotiable backlog).
    backlog: Vec<u128>,
    /// Standalone index over `backlog`: O(S) argmax/argmin for greedy
    /// pairing, identical answers for every shard count.
    index: ShardedLoadIndex,
    /// Min-heap of `(completion instant, machine)`; at most one entry
    /// per machine, so pops at equal instants are machine-ordered.
    completions: BinaryHeap<Reverse<(Time, u32)>>,
    /// Machines whose queue or runner changed since the last start
    /// sweep. Sorted + deduped before use, so start order is
    /// deterministic and the sweep never scans all m machines.
    wake: Vec<u32>,
    /// Queued (not running) jobs currently sitting on *online* machines
    /// — the condition under which epoch boundaries stay interesting.
    queued_on_online: usize,
    /// Arrival instant per job (set when the arrival fires).
    arrived_at: Vec<Option<Time>>,
    /// Reusable per-epoch migration buffer for the ledger commit.
    batch: MigrationBatch,
    metrics: OpenMetrics,
    next_arrival: usize,
    now: Time,
    next_epoch: Time,
    total_jobs: usize,
}

impl<'a> OpenProtocol<'a> {
    /// A protocol over `truth`'s jobs arriving per `arrivals` (sorted by
    /// time), balancing on the predictions in `core.inst`.
    pub fn new(truth: &'a Instance, arrivals: &'a [Arrival], cfg: &'a OpenConfig) -> Self {
        debug_assert!(
            arrivals.windows(2).all(|w| w[0].time <= w[1].time),
            "arrivals sorted"
        );
        Self {
            truth,
            arrivals,
            cfg,
            queues: Vec::new(),
            running: Vec::new(),
            backlog: Vec::new(),
            index: ShardedLoadIndex::new(&[], 1),
            completions: BinaryHeap::new(),
            wake: Vec::new(),
            queued_on_online: 0,
            arrived_at: Vec::new(),
            batch: MigrationBatch::new(),
            metrics: OpenMetrics::new(truth.num_machines()),
            next_arrival: 0,
            now: 0,
            next_epoch: if cfg.exchange_every > 0 {
                cfg.exchange_every
            } else {
                Time::MAX
            },
            total_jobs: arrivals.len(),
        }
    }

    /// The run's result; call after the drive stops.
    pub fn into_run(mut self, core: &SimCore) -> OpenRun {
        self.metrics.horizon = self.now;
        OpenRun {
            metrics: self.metrics,
            predicted_makespan: core.asg.makespan(),
            realized_makespan: evaluate_under(self.truth, core.asg),
        }
    }

    /// Moves queued jobs from the back of `hi`'s queue to `lo` while the
    /// move lowers the pair's predicted max backlog. Both machines are
    /// online (the epoch only pairs online machines), so the
    /// queued-on-online count is unchanged. Returns moved count.
    fn balance_pair(&mut self, pred: &Instance, hi: usize, lo: usize) -> u64 {
        let mut moved = 0;
        let (mhi, mlo) = (MachineId::from_idx(hi), MachineId::from_idx(lo));
        while let Some(&job) = self.queues[hi].back() {
            let c_hi = u128::from(pred.cost(mhi, job));
            let c_lo = u128::from(pred.cost(mlo, job));
            // The pair max is backlog[hi] (the caller picked hi richer).
            // Moving the job helps iff the receiver stays below it.
            if self.backlog[lo] + c_lo >= self.backlog[hi] {
                break;
            }
            self.queues[hi].pop_back();
            self.queues[lo].push_back(job);
            self.shift_backlog(hi, |b| b - c_hi);
            self.shift_backlog(lo, |b| b + c_lo);
            self.batch.push(job, mlo);
            moved += 1;
            if self.backlog[hi] <= self.backlog[lo] {
                break;
            }
        }
        if moved > 0 {
            self.wake.push(lo as u32);
        }
        moved
    }

    /// Applies `f` to machine `i`'s backlog and keeps the index in sync.
    #[inline]
    fn shift_backlog(&mut self, i: usize, f: impl FnOnce(u128) -> u128) {
        let old = self.backlog[i];
        self.backlog[i] = f(old);
        self.index.update(&self.backlog, i, old);
    }

    /// One exchange epoch: draw `pairs_per_epoch` pairs, migrate queued
    /// work, commit the ledger moves machine-batched.
    fn exchange_epoch(&mut self, core: &mut SimCore) {
        let online = core.topology.online_machines();
        if online.len() < 2 {
            return;
        }
        self.metrics.epochs += 1;
        let k = online.len();
        let pred = core.inst;
        for _ in 0..self.cfg.pairs_per_epoch {
            let (a, b) = match self.cfg.pairing {
                Pairing::Random => {
                    // Same two-draw idiom as every gossip-style epoch in
                    // the workspace (distinct by construction).
                    let a = core.rng.gen_range(0..k);
                    let mut b = core.rng.gen_range(0..k - 1);
                    if b >= a {
                        b += 1;
                    }
                    (online[a].idx(), online[b].idx())
                }
                Pairing::Greedy => {
                    // Offline machines are deactivated in the backlog
                    // index, so both ends are online by construction.
                    match (self.index.argmax_active(), self.index.argmin_active()) {
                        (Some(hi), Some(lo)) if hi != lo => (hi, lo),
                        _ => break,
                    }
                }
            };
            // Richer side gives; predicted backlog decides the roles.
            let (hi, lo) = if self.backlog[a] >= self.backlog[b] {
                (a, b)
            } else {
                (b, a)
            };
            self.metrics.migrations += self.balance_pair(pred, hi, lo);
        }
        // One machine-batched ledger commit per epoch; the adaptive
        // applier picks the per-move path for small waves.
        if !self.batch.is_empty() {
            core.asg.apply_migrations(core.inst, &self.batch);
            self.batch.clear();
        }
    }

    /// Jobs not yet completed (arrived or not).
    fn remaining_completions(&self) -> usize {
        self.total_jobs - self.metrics.completed as usize
    }
}

impl Protocol for OpenProtocol<'_> {
    fn on_start(&mut self, core: &mut SimCore, _probes: &mut ProbeHub) {
        let m = core.inst.num_machines();
        assert_eq!(
            core.inst.num_jobs(),
            self.truth.num_jobs(),
            "predicted and true instances must cover the same jobs"
        );
        self.queues = vec![VecDeque::new(); m];
        self.running = vec![None; m];
        self.backlog = vec![0; m];
        self.index = ShardedLoadIndex::new(&self.backlog, self.cfg.shards);
        for mi in 0..m {
            if !core.topology.is_online(MachineId::from_idx(mi)) {
                self.index.set_active(&self.backlog, mi, false);
            }
        }
        self.arrived_at = vec![None; core.inst.num_jobs()];
    }

    fn step(&mut self, core: &mut SimCore, _probes: &mut ProbeHub) -> StepOutcome {
        let now = self.now;
        let pred = core.inst;

        // 1. Completions at `now`: the heap pops (time, machine) in
        //    ascending order, so equal-instant completions are handled
        //    in machine order.
        while let Some(&Reverse((t, mi))) = self.completions.peek() {
            if t > now {
                break;
            }
            self.completions.pop();
            let mi = mi as usize;
            let (job, _) = self.running[mi].take().expect("heap entry has a runner");
            let arrived = self.arrived_at[job.idx()].expect("completed job arrived");
            let machine = MachineId::from_idx(mi);
            let true_cost = self.truth.cost(machine, job);
            // Service took max(true_cost, 1); response = start − arrival.
            let response = (now - arrived).saturating_sub(true_cost.max(1));
            self.metrics.record_completion(
                response,
                now - arrived,
                true_cost,
                pred.cost(machine, job),
            );
            self.wake.push(mi as u32);
        }

        // 2. Arrivals at `now`, in stream order.
        while self.next_arrival < self.arrivals.len()
            && self.arrivals[self.next_arrival].time == now
        {
            let a = self.arrivals[self.next_arrival];
            self.next_arrival += 1;
            self.arrived_at[a.job.idx()] = Some(now);
            self.metrics.arrived += 1;
            let mi = a.machine.idx();
            self.queues[mi].push_back(a.job);
            let c = u128::from(pred.cost(a.machine, a.job));
            self.shift_backlog(mi, |b| b + c);
            if core.topology.is_online(a.machine) {
                self.queued_on_online += 1;
                self.wake.push(mi as u32);
            }
        }

        // 3. Exchange epoch once `now` reached the boundary (time may
        //    jump past several idle boundaries; they collapse into one
        //    epoch, and the next boundary is realigned past `now`).
        if self.cfg.exchange_every > 0 && now >= self.next_epoch {
            self.exchange_epoch(core);
            self.next_epoch =
                (now / self.cfg.exchange_every + 1).saturating_mul(self.cfg.exchange_every);
        }

        // 4. Starts, on woken machines only (ascending id, deduped).
        self.wake.sort_unstable();
        self.wake.dedup();
        let wake = std::mem::take(&mut self.wake);
        for &mi32 in &wake {
            let mi = mi32 as usize;
            if self.queues[mi].is_empty()
                || self.running[mi].is_some()
                || !core.topology.is_online(MachineId::from_idx(mi))
            {
                continue;
            }
            let job = self.queues[mi].pop_front().expect("checked non-empty");
            self.queued_on_online -= 1;
            let machine = MachineId::from_idx(mi);
            let c = u128::from(pred.cost(machine, job));
            self.shift_backlog(mi, |b| b - c);
            // The one read of the true size: scheduling the completion.
            let finish = now.saturating_add(self.truth.cost(machine, job).max(1));
            self.running[mi] = Some((job, finish));
            self.completions.push(Reverse((finish, mi32)));
        }
        self.wake = wake;
        self.wake.clear();

        if self.remaining_completions() == 0 && self.next_arrival == self.arrivals.len() {
            return StepOutcome::Stop(StopReason::Quiescent);
        }

        // Advance to the next interesting instant.
        let mut next: Time = Time::MAX;
        if let Some(&Reverse((t, _))) = self.completions.peek() {
            next = next.min(t);
        }
        if self.next_arrival < self.arrivals.len() {
            next = next.min(self.arrivals[self.next_arrival].time);
        }
        if self.cfg.exchange_every > 0 {
            // Epochs only matter while work is queued on online machines
            // or still arriving — otherwise they would tick forever.
            if self.queued_on_online > 0 || self.next_arrival < self.arrivals.len() {
                next = next.min(self.next_epoch);
            }
        }
        if next == Time::MAX {
            // Queued work stranded on offline machines: cannot progress.
            return StepOutcome::Stop(StopReason::Quiescent);
        }
        debug_assert!(next > now, "time must advance");
        self.now = next;
        StepOutcome::Continue
    }

    /// Queue-based churn: a failing machine's *queued* jobs scatter to
    /// online survivors (its in-flight job completes — failure is
    /// graceful, as in the work-stealing and dynamic models); the
    /// machine is deactivated in the backlog index so greedy pairing
    /// never selects it.
    fn on_topology_event(&mut self, core: &mut SimCore, ev: TopologyEvent) -> Result<u64> {
        match ev {
            TopologyEvent::Fail(machine) => {
                let mi = machine.idx();
                self.index.set_active(&self.backlog, mi, false);
                // Its queued jobs were counted while it was online.
                self.queued_on_online -= self.queues[mi].len();
                if self.queues[mi].is_empty() {
                    return Ok(0);
                }
                let survivors = core.topology.online_machines();
                if survivors.is_empty() {
                    return Err(LbError::NoOnlineMachines);
                }
                let jobs: Vec<JobId> = std::mem::take(&mut self.queues[mi]).into();
                self.shift_backlog(mi, |_| 0);
                let scattered = jobs.len() as u64;
                for job in jobs {
                    let target = survivors[core.rng.gen_range(0..survivors.len())];
                    let ti = target.idx();
                    self.queues[ti].push_back(job);
                    let c = u128::from(core.inst.cost(target, job));
                    self.shift_backlog(ti, |b| b + c);
                    self.queued_on_online += 1;
                    self.wake.push(ti as u32);
                    self.batch.push(job, target);
                }
                core.asg.apply_migrations(core.inst, &self.batch);
                self.batch.clear();
                Ok(scattered)
            }
            TopologyEvent::Rejoin(machine) => {
                let mi = machine.idx();
                self.index.set_active(&self.backlog, mi, true);
                // Jobs that arrived while it was offline become
                // startable (and balanceable) again.
                self.queued_on_online += self.queues[mi].len();
                if !self.queues[mi].is_empty() {
                    self.wake.push(mi as u32);
                }
                Ok(0)
            }
        }
    }
}

/// Runs an open-system simulation to drain: generates the arrival stream
/// from `process`, derives the predicted instance
/// (`perturbed_instance(truth, cfg.error_percent, cfg.seed)`), places
/// every job on its submission machine in the ledger, and drives
/// [`OpenProtocol`] through the standard [`drive`] loop.
///
/// The result is a deterministic function of
/// `(truth, process, cfg.seed, cfg)`; `cfg.shards` never changes a byte
/// of it (pinned by `tests/determinism.rs`).
pub fn run_open(truth: &Instance, process: &ArrivalProcess, cfg: &OpenConfig) -> OpenRun {
    let mut rng = stream_rng(cfg.seed, 0);
    let arrivals = process.generate(truth, &mut rng);
    run_open_with_arrivals(truth, &arrivals, cfg)
}

/// [`run_open`] with a pre-generated arrival stream (sorted by time) —
/// the entry point trace replay and the benches use. The protocol's RNG
/// is stream 0 of `cfg.seed` restarted from the top (arrival generation
/// in [`run_open`] uses its own pass over the same stream), so results
/// from the two entry points are each internally deterministic.
pub fn run_open_with_arrivals(truth: &Instance, arrivals: &[Arrival], cfg: &OpenConfig) -> OpenRun {
    let pred = perturbed_instance(truth, cfg.error_percent, cfg.seed);
    // The ledger starts with every job on its submission machine; a job
    // missing from the stream (possible only with hand-built streams)
    // stays parked on machine 0.
    let mut at = vec![MachineId(0); truth.num_jobs()];
    for a in arrivals {
        at[a.job.idx()] = a.machine;
    }
    let mut ledger =
        Assignment::from_fn(&pred, |j| at[j.idx()]).expect("submission machines are in range");
    ledger.set_shards(cfg.shards);
    let mut core = SimCore::new(&pred, &mut ledger, cfg.seed);
    let mut protocol = OpenProtocol::new(truth, arrivals, cfg);
    let mut hub = ProbeHub::new();
    drive(&mut core, &mut protocol, &mut hub, u64::MAX);
    protocol.into_run(&core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{trace_instance, TraceRow};

    fn uniform(m: usize, sizes: Vec<Time>) -> Instance {
        Instance::uniform(m, sizes).unwrap()
    }

    fn poisson(gap: f64) -> ArrivalProcess {
        ArrivalProcess::Poisson { mean_gap: gap }
    }

    #[test]
    fn drains_and_counts_every_job() {
        let inst = uniform(4, vec![5; 200]);
        let run = run_open(&inst, &poisson(2.0), &OpenConfig::default());
        assert_eq!(run.metrics.arrived, 200);
        assert_eq!(run.metrics.completed, 200);
        assert_eq!(run.metrics.flow.count(), 200);
        assert!(run.metrics.horizon > 0);
        assert!(run.realized_makespan > 0);
    }

    #[test]
    fn zero_error_realized_equals_predicted() {
        let inst = uniform(3, vec![7; 60]);
        let run = run_open(&inst, &poisson(1.5), &OpenConfig::default());
        assert_eq!(run.predicted_makespan, run.realized_makespan);
        assert_eq!(run.metrics.mean_misprediction(), Some(0.0));
    }

    #[test]
    fn misprediction_shows_up_under_error() {
        let inst = uniform(3, vec![100; 80]);
        let cfg = OpenConfig {
            error_percent: 30,
            ..OpenConfig::default()
        };
        let run = run_open(&inst, &poisson(2.0), &cfg);
        assert!(run.metrics.mean_abs_misprediction().unwrap() > 0.0);
        // Predicted and realized makespans disagree under misprediction
        // (with overwhelming probability at ±30% on 80 jobs).
        assert_ne!(run.predicted_makespan, run.realized_makespan);
    }

    #[test]
    fn balancing_beats_no_balancing_on_skewed_submission() {
        // Every job submitted to machine 0 via a trace; balancing must
        // cut the flow-time tail by a wide margin.
        let rows: Vec<TraceRow> = (0..64)
            .map(|k| TraceRow {
                time: k,
                size: 40,
                machine: Some(0),
            })
            .collect();
        let inst = trace_instance(&rows, 8, None).unwrap();
        let process = ArrivalProcess::Trace { rows };
        let off = OpenConfig {
            exchange_every: 0,
            ..OpenConfig::default()
        };
        let on = OpenConfig {
            exchange_every: 8,
            pairs_per_epoch: 16,
            ..OpenConfig::default()
        };
        let base = run_open(&inst, &process, &off);
        let bal = run_open(&inst, &process, &on);
        assert_eq!(base.metrics.migrations, 0);
        assert!(bal.metrics.migrations > 0);
        let (_, base_p99, _) = base.metrics.flow_tail().unwrap();
        let (_, bal_p99, _) = bal.metrics.flow_tail().unwrap();
        assert!(
            bal_p99 * 2 < base_p99,
            "balancing barely helped: p99 {bal_p99} vs {base_p99}"
        );
    }

    #[test]
    fn greedy_pairing_also_drains_and_helps() {
        let rows: Vec<TraceRow> = (0..50)
            .map(|k| TraceRow {
                time: 2 * k,
                size: 30,
                machine: Some(0),
            })
            .collect();
        let inst = trace_instance(&rows, 5, None).unwrap();
        let process = ArrivalProcess::Trace { rows };
        let cfg = OpenConfig {
            exchange_every: 10,
            pairs_per_epoch: 4,
            pairing: Pairing::Greedy,
            ..OpenConfig::default()
        };
        let run = run_open(&inst, &process, &cfg);
        assert_eq!(run.metrics.completed, 50);
        assert!(run.metrics.migrations > 0);
    }

    #[test]
    fn response_flow_identity_holds_per_digest_sums() {
        // flow = response + service, so Σ flow − Σ response = Σ true
        // service = completed true work (both sums are exact).
        let inst = uniform(4, vec![9; 120]);
        let run = run_open(&inst, &poisson(3.0), &OpenConfig::default());
        let m = &run.metrics;
        assert_eq!(m.flow.sum() - m.response.sum(), m.true_work);
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = uniform(5, vec![6; 100]);
        let cfg = OpenConfig {
            error_percent: 10,
            ..OpenConfig::default()
        };
        let a = run_open(&inst, &poisson(2.0), &cfg);
        let b = run_open(&inst, &poisson(2.0), &cfg);
        assert_eq!(a, b);
        let c = run_open(
            &inst,
            &poisson(2.0),
            &OpenConfig {
                seed: 1,
                ..cfg.clone()
            },
        );
        assert_ne!(a, c);
    }

    #[test]
    fn empty_stream_is_a_clean_noop() {
        let inst = uniform(3, vec![]);
        let run = run_open(&inst, &poisson(1.0), &OpenConfig::default());
        assert_eq!(run.metrics.arrived, 0);
        assert_eq!(run.metrics.completed, 0);
        assert_eq!(run.metrics.flow_tail(), None);
        assert_eq!(run.predicted_makespan, 0);
    }

    #[test]
    fn ledger_matches_execution_sites() {
        // With balancing off, every job's ledger machine is its
        // submission machine; the realized makespan is the max
        // per-machine total work.
        let rows = vec![
            TraceRow {
                time: 0,
                size: 10,
                machine: Some(1),
            },
            TraceRow {
                time: 0,
                size: 3,
                machine: Some(0),
            },
            TraceRow {
                time: 5,
                size: 4,
                machine: Some(1),
            },
        ];
        let inst = trace_instance(&rows, 2, None).unwrap();
        let cfg = OpenConfig {
            exchange_every: 0,
            ..OpenConfig::default()
        };
        let run = run_open(&inst, &ArrivalProcess::Trace { rows }, &cfg);
        assert_eq!(run.realized_makespan, 14, "machine 1 runs 10 + 4");
        // Flow times: job 0 (size 10, t=0) = 10; job 1 (size 3, t=0) =
        // 3; job 2 arrives at 5, waits until 10, finishes 14 → flow 9.
        assert_eq!(run.metrics.flow.max(), Some(10));
        assert_eq!(run.metrics.response.max(), Some(5), "job 2 waited 5");
    }
}
