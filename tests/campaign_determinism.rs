//! Campaign determinism: the artifacts written by `decent-lb campaign`
//! must be byte-identical for any `--threads` value.
//!
//! The engine guarantees this by construction — per-cell seed streams,
//! collection in cell order, sequential per-point folds — and these tests
//! pin it down end to end through the CLI: same campaign at `--threads 1`
//! vs `--threads 8` (and the rayon-default `--threads 0`), compared as
//! raw bytes.

use decent_lb::cli::Cli;
use std::fs;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("decent-lb-campaign-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn run_campaign(dir: &Path, extra: &[&str]) -> String {
    let mut args: Vec<String> = vec![
        "campaign".into(),
        "--out-dir".into(),
        dir.display().to_string(),
    ];
    args.extend(extra.iter().map(|s| s.to_string()));
    let cli = Cli::parse(args).expect("args parse");
    cli.run().expect("campaign runs")
}

fn artifact(dir: &Path, file: &str) -> Vec<u8> {
    let path = dir.join(file);
    fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn gossip_campaign_is_byte_identical_across_thread_counts() {
    let common = [
        "--mode",
        "gossip",
        "--workload",
        "two-cluster",
        "--m1",
        "8",
        "--m2",
        "4",
        "--jobs-grid",
        "48,96",
        "--replications",
        "6",
        "--rounds",
        "1500",
        "--baseline",
        "lb",
        "--seed",
        "7",
    ];
    let mut outputs = Vec::new();
    for threads in ["1", "8", "0"] {
        let dir = temp_dir(&format!("gossip-t{threads}"));
        let mut args = common.to_vec();
        args.extend(["--threads", threads]);
        run_campaign(&dir, &args);
        outputs.push((
            threads,
            artifact(&dir, "campaign.csv"),
            artifact(&dir, "campaign_stats.csv"),
            artifact(&dir, "campaign.json"),
            dir,
        ));
    }
    let (_, csv1, stats1, json1, _) = &outputs[0];
    assert!(!csv1.is_empty() && !stats1.is_empty());
    for (threads, csv, stats, json, _) in &outputs[1..] {
        assert_eq!(
            csv, csv1,
            "campaign.csv differs between --threads 1 and --threads {threads}"
        );
        assert_eq!(
            stats, stats1,
            "campaign_stats.csv differs between --threads 1 and --threads {threads}"
        );
        // The sidecar must not encode scheduling knobs, so it is also
        // invariant across thread counts.
        assert_eq!(
            json, json1,
            "campaign.json differs between --threads 1 and --threads {threads}"
        );
    }
    for (_, _, _, _, dir) in outputs {
        let _ = fs::remove_dir_all(dir);
    }
}

#[test]
fn markov_campaign_is_byte_identical_across_thread_counts() {
    let common = [
        "--mode",
        "markov",
        "--machines-grid",
        "3,4",
        "--pmax-grid",
        "2,3",
    ];
    let dir1 = temp_dir("markov-t1");
    let dir8 = temp_dir("markov-t8");
    let mut a = common.to_vec();
    a.extend(["--threads", "1"]);
    run_campaign(&dir1, &a);
    let mut b = common.to_vec();
    b.extend(["--threads", "8"]);
    run_campaign(&dir8, &b);
    let c1 = artifact(&dir1, "campaign.csv");
    let c8 = artifact(&dir8, "campaign.csv");
    assert!(!c1.is_empty());
    assert_eq!(c1, c8, "markov campaign.csv differs across thread counts");
    let _ = fs::remove_dir_all(dir1);
    let _ = fs::remove_dir_all(dir8);
}

#[test]
fn shared_instance_campaign_reuses_baseline_across_replications() {
    // With --shared-instance every replication of a point scores against
    // the same instance, so the summary must report one baseline compute
    // per point, not per cell — and stay deterministic in parallel.
    let dir = temp_dir("shared");
    let out = run_campaign(
        &dir,
        &[
            "--mode",
            "gossip",
            "--workload",
            "two-cluster",
            "--m1",
            "6",
            "--m2",
            "3",
            "--jobs-grid",
            "30,60",
            "--replications",
            "5",
            "--rounds",
            "800",
            "--baseline",
            "clb2c",
            "--shared-instance",
            "true",
            "--threads",
            "4",
        ],
    );
    assert!(
        out.contains("baseline cache: 2 computes for 10 lookups"),
        "expected 2 computes / 10 lookups in summary, got:\n{out}"
    );
    let _ = fs::remove_dir_all(dir);
}
