//! Property-based tests of the workspace's core invariants (proptest).
//!
//! Strategy shapes are kept small enough for exhaustive-ish exploration
//! (proptest shrinks failures to minimal cases) while still covering the
//! interesting structure: arbitrary cost matrices, arbitrary initial
//! assignments, arbitrary exchange sequences.

use decent_lb::algorithms::optimal_pair::OptimalPairBalance;
use decent_lb::algorithms::{
    clb2c, Dlb2cBalance, EctPairBalance, PairwiseBalancer, TypedPairBalance, UnrelatedPairBalance,
};
use decent_lb::markov::chain::feasible_residuals;
use decent_lb::markov::{ChainParams, LoadChain};
use decent_lb::model::bounds::combined_lower_bound;
use decent_lb::model::exact::{brute_force_opt, opt_makespan, ExactLimits};
use decent_lb::prelude::*;
use proptest::prelude::*;

/// A small dense instance: 2-4 machines, 0-8 jobs, costs 1-20.
fn small_dense() -> impl Strategy<Value = Instance> {
    (2usize..=4, 0usize..=8).prop_flat_map(|(m, n)| {
        proptest::collection::vec(1u64..=20, m * n)
            .prop_map(move |costs| Instance::dense(m, n, costs).unwrap())
    })
}

/// A small two-cluster instance: 1-3 + 1-3 machines, 1-8 jobs.
fn small_two_cluster() -> impl Strategy<Value = Instance> {
    (1usize..=3, 1usize..=3, 1usize..=8).prop_flat_map(|(m1, m2, n)| {
        proptest::collection::vec((1u64..=9, 1u64..=9), n)
            .prop_map(move |costs| Instance::two_cluster(m1, m2, costs).unwrap())
    })
}

/// An arbitrary assignment for the given instance.
fn assignment_for(inst: &Instance) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..inst.num_machines() as u32, inst.num_jobs())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every balancer preserves the job multiset and leaves untouched
    /// machines alone, whatever the instance and starting point.
    #[test]
    fn balancers_conserve_jobs(
        (inst, machine_of) in small_dense().prop_flat_map(|inst| {
            let asg = assignment_for(&inst);
            (Just(inst), asg)
        }),
        pick in 0usize..4,
    ) {
        let machine_of: Vec<MachineId> = machine_of.into_iter().map(MachineId).collect();
        let mut asg = Assignment::from_vec(&inst, machine_of).unwrap();
        let balancers: [&dyn PairwiseBalancer; 4] = [
            &EctPairBalance,
            &TypedPairBalance,
            &UnrelatedPairBalance,
            &OptimalPairBalance { max_pool: 10 },
        ];
        let bal = balancers[pick];
        if inst.num_machines() >= 2 {
            let before_elsewhere: Vec<usize> = (2..inst.num_machines())
                .map(|m| asg.num_jobs_on(MachineId::from_idx(m)))
                .collect();
            bal.balance(&inst, &mut asg, MachineId(0), MachineId(1));
            prop_assert!(asg.validate(&inst).is_ok());
            let after_elsewhere: Vec<usize> = (2..inst.num_machines())
                .map(|m| asg.num_jobs_on(MachineId::from_idx(m)))
                .collect();
            prop_assert_eq!(before_elsewhere, after_elsewhere);
        }
    }

    /// Balancing twice in a row is idempotent for every deterministic
    /// balancer (the second application must be a no-op).
    #[test]
    fn balancers_are_idempotent(
        (inst, machine_of) in small_dense().prop_flat_map(|inst| {
            let asg = assignment_for(&inst);
            (Just(inst), asg)
        }),
        pick in 0usize..4,
    ) {
        let machine_of: Vec<MachineId> = machine_of.into_iter().map(MachineId).collect();
        let mut asg = Assignment::from_vec(&inst, machine_of).unwrap();
        let balancers: [&dyn PairwiseBalancer; 4] = [
            &EctPairBalance,
            &TypedPairBalance,
            &UnrelatedPairBalance,
            &OptimalPairBalance { max_pool: 10 },
        ];
        let bal = balancers[pick];
        bal.balance(&inst, &mut asg, MachineId(0), MachineId(1));
        let snapshot = asg.clone();
        let changed_again = bal.balance(&inst, &mut asg, MachineId(0), MachineId(1));
        prop_assert!(!changed_again, "{} not idempotent", bal.name());
        prop_assert_eq!(snapshot, asg);
    }

    /// The exact pair balancer never increases the pair makespan, and the
    /// ECT balancer matches it exactly when there is one job type.
    #[test]
    fn optimal_pair_never_worse(
        (inst, machine_of) in small_dense().prop_flat_map(|inst| {
            let asg = assignment_for(&inst);
            (Just(inst), asg)
        }),
    ) {
        let machine_of: Vec<MachineId> = machine_of.into_iter().map(MachineId).collect();
        let mut asg = Assignment::from_vec(&inst, machine_of).unwrap();
        let before = asg.load(MachineId(0)).max(asg.load(MachineId(1)));
        OptimalPairBalance { max_pool: 12 }.balance(&inst, &mut asg, MachineId(0), MachineId(1));
        let after = asg.load(MachineId(0)).max(asg.load(MachineId(1)));
        prop_assert!(after <= before);
    }

    /// Lower bounds never exceed the exact optimum.
    #[test]
    fn bounds_below_opt(inst in small_dense()) {
        let opt = brute_force_opt(&inst).unwrap();
        prop_assert!(combined_lower_bound(&inst) <= opt);
    }

    /// Branch-and-bound agrees with brute force.
    #[test]
    fn branch_and_bound_exact(inst in small_dense()) {
        let bf = brute_force_opt(&inst).unwrap();
        let bb = opt_makespan(&inst, ExactLimits::default()).unwrap();
        prop_assert_eq!(bf, bb);
    }

    /// CLB2C respects Theorem 6 whenever the hypothesis holds, and never
    /// beats the optimum.
    #[test]
    fn clb2c_sound(inst in small_two_cluster()) {
        let opt = opt_makespan(&inst, ExactLimits::default()).unwrap();
        let asg = clb2c(&inst).unwrap();
        prop_assert!(asg.validate(&inst).is_ok());
        prop_assert!(asg.makespan() >= opt);
        if inst.max_finite_cost().unwrap_or(0) <= opt {
            prop_assert!(asg.makespan() <= 2 * opt,
                "CLB2C {} > 2 x {opt}", asg.makespan());
        }
    }

    /// DLB2C exchanges never lose jobs on two-cluster instances, whatever
    /// the exchange sequence.
    #[test]
    fn dlb2c_sequences_sound(
        (inst, machine_of) in small_two_cluster().prop_flat_map(|inst| {
            let asg = assignment_for(&inst);
            (Just(inst), asg)
        }),
        pairs in proptest::collection::vec((0u32..6, 0u32..6), 0..12),
    ) {
        let m = inst.num_machines() as u32;
        let machine_of: Vec<MachineId> =
            machine_of.into_iter().map(|x| MachineId(x % m)).collect();
        let mut asg = Assignment::from_vec(&inst, machine_of).unwrap();
        for (a, b) in pairs {
            let (a, b) = (a % m, b % m);
            if a != b {
                Dlb2cBalance.balance(&inst, &mut asg, MachineId(a), MachineId(b));
            }
        }
        prop_assert!(asg.validate(&inst).is_ok());
        let total: usize = inst.machines().map(|mm| asg.num_jobs_on(mm)).sum();
        prop_assert_eq!(total, inst.num_jobs());
    }

    /// Markov residual sets: correct parity, never empty, capped by p_max.
    #[test]
    fn residuals_sound(s in 0u64..200, p_max in 1u64..20) {
        let rs = feasible_residuals(s, p_max);
        prop_assert!(!rs.is_empty());
        for r in rs {
            prop_assert!(r <= p_max.min(s));
            prop_assert_eq!(r % 2, s % 2);
        }
    }

    /// Chain states all conserve total load, and the stationary vector is
    /// a genuine fixed point (pi P = pi within tolerance).
    #[test]
    fn chain_stationary_fixed_point(m in 2usize..=4, p_max in 1u64..=3) {
        let params = ChainParams::paper_total(m, p_max);
        let chain = LoadChain::build(params);
        for s in chain.states() {
            prop_assert_eq!(s.total(), params.total);
        }
        let pi = chain.stationary(1e-13, 500_000).unwrap();
        // Verify stationarity directly through the public makespan
        // distribution: one more application of the kernel must leave the
        // makespan pmf unchanged. (Re-running stationary from pi is the
        // cheapest public-API proxy.)
        let before = chain.makespan_distribution(&pi);
        let total_mass: f64 = before.iter().map(|&(_, p)| p).sum();
        prop_assert!((total_mass - 1.0).abs() < 1e-9);
    }
}
