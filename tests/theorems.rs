//! Integration tests mapping each of the paper's formal claims to an
//! executable check (the DESIGN.md theorem-to-test map).

use decent_lb::algorithms::baselines::ect_in_order;
use decent_lb::algorithms::optimal_pair::OptimalPairBalance;
use decent_lb::algorithms::{clb2c, is_stable, run_pairwise, stabilize};
use decent_lb::algorithms::{Dlb2cBalance, EctPairBalance, TypedPairBalance};
use decent_lb::distsim::simulate_work_stealing;
use decent_lb::markov::theory::{theorem10_bound, verify_theorem10, verify_theorem9};
use decent_lb::markov::{ChainParams, LoadChain};
use decent_lb::model::exact::{opt_makespan, ExactLimits};
use decent_lb::prelude::*;
use decent_lb::workloads::adversarial::{pairwise_trap, worksteal_trap};
use decent_lb::workloads::initial::random_assignment;
use decent_lb::workloads::typed::typed_uniform;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Theorem 1: work stealing can be arbitrarily bad on unrelated machines.
#[test]
fn theorem1_work_stealing_unbounded() {
    for n in [10u64, 1000, 100_000] {
        let (inst, init) = worksteal_trap(n);
        let ws = simulate_work_stealing(&inst, &init, 0);
        let opt = opt_makespan(&inst, ExactLimits::default()).unwrap();
        assert_eq!(opt, 2);
        assert!(
            ws.makespan >= n,
            "WS finished before the long jobs: {}",
            ws.makespan
        );
        // The ratio grows without bound in n.
        assert!(ws.makespan / opt >= n / 2);
    }
}

/// Proposition 2: a pairwise-optimal schedule can be arbitrarily bad.
#[test]
fn proposition2_pairwise_optimal_trap() {
    for n in [5u64, 50, 500] {
        let (inst, asg) = pairwise_trap(n);
        assert!(is_stable(&inst, &asg, &OptimalPairBalance::default()));
        assert_eq!(asg.makespan(), n);
        assert_eq!(opt_makespan(&inst, ExactLimits::default()).unwrap(), 1);
    }
}

/// Lemma 3 + Lemma 4: OJTB converges to the optimum with one job type.
#[test]
fn lemmas3_4_ojtb_optimal_one_type() {
    let mut rng = StdRng::seed_from_u64(0x0117B);
    for trial in 0..10 {
        let m = rng.gen_range(2..=4);
        let n = rng.gen_range(1..=10);
        // One job type: cost depends only on the machine.
        let machine_costs: Vec<Time> = (0..m).map(|_| rng.gen_range(1..=9)).collect();
        let costs: Vec<Time> = machine_costs
            .iter()
            .flat_map(|&c| std::iter::repeat_n(c, n))
            .collect();
        let inst = Instance::dense(m, n, costs).unwrap();
        let opt = opt_makespan(&inst, ExactLimits::default()).unwrap();
        let mut asg = Assignment::all_on(&inst, MachineId(0));
        assert!(
            stabilize(&inst, &mut asg, &EctPairBalance, 500),
            "trial {trial} cycled"
        );
        assert_eq!(
            asg.makespan(),
            opt,
            "trial {trial}: OJTB fixpoint not optimal"
        );
    }
}

/// Theorem 5: MJTB converges to a k-approximation for k job types.
#[test]
fn theorem5_mjtb_k_approximation() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for trial in 0..10 {
        let k = rng.gen_range(1..=3usize);
        let m = rng.gen_range(2..=3usize);
        let n = rng.gen_range(k..=9);
        let inst = typed_uniform(m, n, k, 1, 9, 400 + trial);
        let opt = opt_makespan(&inst, ExactLimits::default()).unwrap();
        let mut asg = Assignment::all_on(&inst, MachineId(0));
        assert!(
            stabilize(&inst, &mut asg, &TypedPairBalance, 500),
            "trial {trial} cycled"
        );
        assert!(
            asg.makespan() <= k as u64 * opt,
            "trial {trial}: {} > {k} x OPT {opt}",
            asg.makespan()
        );
    }
}

/// Theorem 6: CLB2C is a 2-approximation when `max p <= OPT`.
#[test]
fn theorem6_clb2c_two_approximation() {
    let mut rng = StdRng::seed_from_u64(0xC1B2C);
    let mut hypothesis_held = 0;
    for trial in 0..40 {
        let n = rng.gen_range(8..=12);
        let costs: Vec<(Time, Time)> = (0..n)
            .map(|_| (rng.gen_range(1..=5), rng.gen_range(1..=5)))
            .collect();
        let inst =
            Instance::two_cluster(rng.gen_range(1..=2), rng.gen_range(1..=2), costs).unwrap();
        let opt = opt_makespan(&inst, ExactLimits::default()).unwrap();
        let asg = clb2c(&inst).unwrap();
        if inst.max_finite_cost().unwrap() <= opt {
            hypothesis_held += 1;
            assert!(
                asg.makespan() <= 2 * opt,
                "trial {trial}: CLB2C {} > 2 x OPT {opt}",
                asg.makespan()
            );
        }
    }
    assert!(
        hypothesis_held >= 20,
        "hypothesis held too rarely ({hypothesis_held}/40)"
    );
}

/// Theorem 7: a *stable* DLB2C schedule is a 2-approximation.
#[test]
fn theorem7_stable_dlb2c_two_approximation() {
    let mut rng = StdRng::seed_from_u64(0xD1B2C);
    let mut checked = 0;
    for trial in 0..50 {
        let n = rng.gen_range(6..=10);
        let costs: Vec<(Time, Time)> = (0..n)
            .map(|_| (rng.gen_range(1..=4), rng.gen_range(1..=4)))
            .collect();
        let inst =
            Instance::two_cluster(rng.gen_range(1..=3), rng.gen_range(1..=3), costs).unwrap();
        let mut asg = random_assignment(&inst, 7000 + trial);
        if !stabilize(&inst, &mut asg, &Dlb2cBalance, 300) {
            continue; // limit cycle (Proposition 8): the theorem is silent
        }
        let opt = opt_makespan(&inst, ExactLimits::default()).unwrap();
        if inst.max_finite_cost().unwrap() <= opt {
            checked += 1;
            assert!(
                asg.makespan() <= 2 * opt,
                "trial {trial}: stable DLB2C {} > 2 x OPT {opt}",
                asg.makespan()
            );
        }
    }
    assert!(checked >= 10, "too few stable+hypothesis runs ({checked})");
}

/// Proposition 8: DLB2C can fail to converge (limit cycle exists in the
/// small two-cluster family). Found by deterministic search.
#[test]
fn proposition8_limit_cycle_exists() {
    use decent_lb::distsim::{run_gossip, GossipConfig, PairSchedule, RunOutcome};
    use decent_lb::workloads::adversarial::prop8_candidate;
    let mut found = false;
    for seed in 0..6000 {
        let (inst, mut asg) = prop8_candidate(seed);
        let cfg = GossipConfig {
            max_rounds: 2000,
            schedule: PairSchedule::RoundRobin,
            detect_cycles: true,
            seed,
            ..GossipConfig::default()
        };
        let run = run_gossip(&inst, &mut asg, &Dlb2cBalance, &cfg);
        if let RunOutcome::CycleDetected { period_sweeps, .. } = run.outcome {
            if period_sweeps >= 2 {
                found = true;
                break;
            }
        }
    }
    assert!(
        found,
        "no DLB2C limit cycle found in 6000 candidate instances"
    );
}

/// Theorem 9, verified *directly* on the full state graph: among all
/// valid load vectors, exactly one strongly connected component has no
/// outgoing edges, and it contains the perfectly balanced state.
#[test]
fn theorem9_full_graph_scc() {
    use decent_lb::markov::graph::FullGraph;
    for (m, p_max) in [(3usize, 2u64), (3, 4), (4, 3)] {
        let graph = FullGraph::build(ChainParams::paper_total(m, p_max));
        let sink = graph
            .verify_theorem9()
            .unwrap_or_else(|e| panic!("m={m} p_max={p_max}: {e}"));
        // And the sink is exactly what the chain construction uses.
        let chain = LoadChain::build(ChainParams::paper_total(m, p_max));
        assert_eq!(sink.len(), chain.num_states());
    }
}

/// Theorem 9: the sink component contains the perfectly balanced state.
/// Theorem 10: every sink state's makespan is within the bound.
#[test]
fn theorems9_10_sink_component() {
    for (m, p_max) in [(2usize, 3u64), (3, 2), (4, 4), (5, 3), (6, 2)] {
        let params = ChainParams::paper_total(m, p_max);
        let chain = LoadChain::build(params);
        assert!(verify_theorem9(&chain), "m={m} p_max={p_max}");
        let worst = verify_theorem10(&chain)
            .unwrap_or_else(|s| panic!("Theorem 10 violated at {s:?} (m={m}, p={p_max})"));
        assert!(worst as f64 <= theorem10_bound(m, p_max, params.total));
    }
}

/// The paper's headline observation for Figure 2: the stationary makespan
/// stays under `S/m + 1.5 p_max` with very high probability, and the
/// distribution is unimodal with mode near deviation 0.5.
#[test]
fn figure2_stationary_shape() {
    let params = ChainParams::paper_total(5, 4);
    let chain = LoadChain::build(params);
    let pi = chain.stationary(1e-12, 1_000_000).unwrap();
    let dev = chain.deviation_distribution(&pi);
    let p_under: f64 = dev
        .iter()
        .filter(|&&(d, _)| d <= 1.5)
        .map(|&(_, p)| p)
        .sum();
    assert!(p_under > 0.999, "P[dev <= 1.5] = {p_under}");
    let mode = dev
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|&(d, _)| d)
        .unwrap();
    assert!(
        (mode - 0.5).abs() <= 0.26,
        "mode at {mode}, expected near 0.5"
    );
    // Unimodality (no second local max above 10% of the peak).
    let peak = dev.iter().map(|&(_, p)| p).fold(0.0f64, f64::max);
    let mut rises = 0;
    for w in dev.windows(2) {
        if w[1].1 > w[0].1 + 0.1 * peak {
            rises += 1;
        }
    }
    assert!(rises <= 2, "distribution does not look unimodal");
}

/// End-to-end sanity: on the paper's 64+32 workload, decentralized DLB2C
/// lands within 1.5x of the centralized CLB2C reference quickly
/// (the Figure 5 phenomenon), and both beat naive ECT from cold.
#[test]
fn figure5_threshold_reachable_quickly() {
    let inst = decent_lb::workloads::two_cluster::paper_two_cluster(16, 8, 192, 5);
    let cent = clb2c(&inst).unwrap().makespan();
    let mut asg = random_assignment(&inst, 6);
    let report = run_pairwise(&inst, &mut asg, &Dlb2cBalance, 9, 5_000);
    assert!(
        report.final_makespan <= cent + cent / 2,
        "DLB2C {} did not reach 1.5 x CLB2C {cent}",
        report.final_makespan
    );
    let _ = ect_in_order(&inst);
}
