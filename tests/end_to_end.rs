//! Cross-crate end-to-end scenarios exercising the whole stack through
//! the facade crate's public API, the way a downstream user would.

use decent_lb::algorithms::baselines::{ect_in_order, least_loaded_schedule, lpt_schedule};
use decent_lb::algorithms::{clb2c, run_pairwise, Dlb2cBalance, UnrelatedPairBalance};
use decent_lb::distsim::{replicate, run_gossip, simulate_work_stealing, GossipConfig};
use decent_lb::model::bounds::{
    average_work_lower_bound, combined_lower_bound, min_cost_lower_bound,
};
use decent_lb::prelude::*;
use decent_lb::workloads::initial::{cluster_local_assignment, random_assignment};
use decent_lb::workloads::two_cluster::{inverted, paper_two_cluster};
use decent_lb::workloads::uniform::{dense_uniform, paper_uniform};

#[test]
fn full_pipeline_two_cluster() {
    // Generate -> bound -> centralized -> decentralized -> compare.
    let inst = paper_two_cluster(8, 4, 96, 77);
    let lb = combined_lower_bound(&inst);
    assert!(lb >= min_cost_lower_bound(&inst));
    assert!(lb >= average_work_lower_bound(&inst));

    let central = clb2c(&inst).unwrap();
    central.validate(&inst).unwrap();
    assert!(central.makespan() >= lb);

    let mut asg = random_assignment(&inst, 3);
    let report = run_pairwise(&inst, &mut asg, &Dlb2cBalance, 11, 30_000);
    asg.validate(&inst).unwrap();
    assert!(report.final_makespan >= lb);
    // Decentralized lands within 2x of the centralized reference on this
    // benign workload (in practice much closer).
    assert!(report.final_makespan <= 2 * central.makespan());
}

#[test]
fn decentralized_beats_work_stealing_on_inverted_costs() {
    // Strong affinity contrast + all jobs submitted to the wrong cluster:
    // a priori balancing moves them before execution, work stealing only
    // reacts to idleness.
    let inst = inverted(6, 6, 72, 1, 1000, 13);
    let init = cluster_local_assignment(&inst, ClusterId::ONE, 17);

    let ws = simulate_work_stealing(&inst, &init, 3);

    let mut asg = init.clone();
    let report = run_pairwise(&inst, &mut asg, &Dlb2cBalance, 19, 30_000);

    assert!(
        report.final_makespan <= ws.makespan,
        "DLB2C {} should not lose to work stealing {}",
        report.final_makespan,
        ws.makespan
    );
}

#[test]
fn baselines_agree_on_identical_machines() {
    // On identical machines ECT and least-loaded coincide step by step.
    let inst = paper_uniform(6, 60, 5);
    let a = ect_in_order(&inst);
    let b = least_loaded_schedule(&inst);
    assert_eq!(a.makespan(), b.makespan());
    let lpt = lpt_schedule(&inst);
    assert!(lpt.makespan() <= a.makespan());
}

#[test]
fn unrelated_balancer_on_three_clusters() {
    // The Section VIII extension: three machine classes via a dense
    // instance; UnrelatedPairBalance still conserves jobs and improves a
    // cold start.
    let inst = dense_uniform(9, 90, 1, 100, 23);
    let mut asg = Assignment::all_on(&inst, MachineId(0));
    let before = asg.makespan();
    let report = run_pairwise(&inst, &mut asg, &UnrelatedPairBalance, 29, 20_000);
    asg.validate(&inst).unwrap();
    assert!(report.final_makespan < before);
    let total_jobs: usize = inst.machines().map(|m| asg.num_jobs_on(m)).sum();
    assert_eq!(total_jobs, 90);
}

#[test]
fn replication_aggregates_are_stable() {
    let cfg = GossipConfig {
        max_rounds: 4000,
        seed: 55,
        ..GossipConfig::default()
    };
    let runs = replicate(&cfg, &Dlb2cBalance, 8, |r| {
        let inst = paper_two_cluster(6, 3, 54, 800 + r);
        let asg = random_assignment(&inst, 900 + r);
        (inst, asg)
    });
    assert_eq!(runs.len(), 8);
    for run in &runs {
        assert!(run.final_makespan <= run.initial_makespan);
        assert!(run.best_makespan <= run.final_makespan.max(run.initial_makespan));
    }
}

#[test]
fn gossip_run_respects_budget_and_series_invariants() {
    let inst = paper_two_cluster(4, 4, 64, 5);
    let mut asg = random_assignment(&inst, 6);
    let cfg = GossipConfig {
        max_rounds: 777,
        record_every: 10,
        seed: 3,
        ..Default::default()
    };
    let run = run_gossip(&inst, &mut asg, &Dlb2cBalance, &cfg);
    assert!(run.rounds_run <= 777);
    // Series rounds strictly increase and end at rounds_run.
    let rounds: Vec<u64> = run.makespan_series.iter().map(|&(r, _)| r).collect();
    assert!(rounds.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(*rounds.last().unwrap(), run.rounds_run);
}

#[test]
fn multicluster_pipeline() {
    // The Section VIII extension end-to-end: generate a 3-tier workload,
    // balance it decentralized, compare against the centralized
    // references through the facade API.
    use decent_lb::algorithms::{sufferage_schedule, MultiClusterBalance};
    use decent_lb::workloads::multi_cluster::affine;
    let inst = affine(&[4, 2, 2], 64, 1, 100, 6, 31);
    assert_eq!(inst.num_clusters(), 3);
    let suf = sufferage_schedule(&inst);
    suf.validate(&inst).unwrap();
    let mut asg = random_assignment(&inst, 32);
    let report = run_pairwise(&inst, &mut asg, &MultiClusterBalance, 33, 30_000);
    asg.validate(&inst).unwrap();
    // Decentralized lands within 2x of the centralized reference.
    assert!(
        report.final_makespan <= 2 * suf.makespan(),
        "DLBMC {} vs sufferage {}",
        report.final_makespan,
        suf.makespan()
    );
}

#[test]
fn infeasible_jobs_end_up_feasible() {
    // Jobs that can only run on cluster 2 must all land there under
    // DLB2C (any stable or near-stable state has finite makespan).
    let costs: Vec<(Time, Time)> = (0..12)
        .map(|i| if i % 2 == 0 { (INFEASIBLE, 5) } else { (5, 5) })
        .collect();
    let inst = Instance::two_cluster(3, 3, costs).unwrap();
    let mut asg = Assignment::all_on(&inst, MachineId(0));
    assert_eq!(asg.makespan(), INFEASIBLE);
    let report = run_pairwise(&inst, &mut asg, &Dlb2cBalance, 41, 20_000);
    assert!(
        report.final_makespan < INFEASIBLE,
        "an infeasible job is stranded"
    );
    for j in inst.jobs() {
        assert!(inst.cost(asg.machine_of(j), j) < INFEASIBLE);
    }
}
