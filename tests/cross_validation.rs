//! Cross-validation between the analytic substrate (lb-markov) and the
//! simulation substrate (lb-distsim): the two must tell the same story
//! about the one-cluster equilibrium, which is the paper's core Section
//! VII claim.

use decent_lb::distsim::{run_gossip, GossipConfig};
use decent_lb::markov::theory::theorem10_bound;
use decent_lb::markov::{ChainParams, LoadChain};
use decent_lb::prelude::*;
use decent_lb::workloads::initial::random_assignment;
use decent_lb::workloads::uniform::uniform_instance;

/// The simulated equilibrium of DLB2C on a homogeneous cluster respects
/// the Markov model's Theorem 10 envelope: every sampled makespan after
/// burn-in is below `S/m + (m-1)/2 * p_max` plus slack for the
/// job-granularity the model abstracts away.
#[test]
fn simulation_respects_theorem10_envelope() {
    let (m, p_max) = (6usize, 8u64);
    let inst = uniform_instance(m, 60, 1, p_max, 3);
    let total: u64 = inst.jobs().map(|j| inst.cost(MachineId(0), j)).sum();
    let bound = theorem10_bound(m, p_max, total);

    let mut asg = random_assignment(&inst, 4);
    let cfg = GossipConfig {
        max_rounds: 30_000,
        seed: 9,
        record_every: 25,
        ..GossipConfig::default()
    };
    let run = run_gossip(&inst, &mut asg, &Dlb2cBalance, &cfg);
    let burn_in = run.makespan_series.len() / 4;
    for &(round, cmax) in run.makespan_series.iter().skip(burn_in) {
        assert!(
            (cmax as f64) <= bound + p_max as f64,
            "round {round}: Cmax {cmax} above Theorem 10 envelope {bound:.1}"
        );
    }
}

/// The simulated equilibrium *deviation* (in units of p_max) concentrates
/// where the stationary distribution puts its mass: below 1.5, like the
/// model's `P[deviation <= 1.5] ~ 1`.
#[test]
fn simulation_deviation_matches_model_band() {
    let (m, p_max) = (5usize, 4u64);
    // Model side.
    let chain = LoadChain::build(ChainParams::paper_total(m, p_max));
    let pi = chain.stationary(1e-12, 1_000_000).unwrap();
    let model_mass_below: f64 = chain
        .deviation_distribution(&pi)
        .into_iter()
        .filter(|&(d, _)| d <= 1.5)
        .map(|(_, p)| p)
        .sum();
    assert!(model_mass_below > 0.999);

    // Simulation side: sample the equilibrium deviations.
    let inst = uniform_instance(m, 50, 1, p_max, 11);
    let total: u64 = inst.jobs().map(|j| inst.cost(MachineId(0), j)).sum();
    let mut asg = random_assignment(&inst, 12);
    let cfg = GossipConfig {
        max_rounds: 40_000,
        seed: 13,
        record_every: 20,
        ..GossipConfig::default()
    };
    let run = run_gossip(&inst, &mut asg, &Dlb2cBalance, &cfg);
    let burn_in = run.makespan_series.len() / 4;
    let samples: Vec<f64> = run
        .makespan_series
        .iter()
        .skip(burn_in)
        .map(|&(_, c)| (c as f64 - total as f64 / m as f64) / p_max as f64)
        .collect();
    let sim_mass_below =
        samples.iter().filter(|&&d| d <= 1.5).count() as f64 / samples.len() as f64;
    assert!(
        sim_mass_below > 0.95,
        "simulation puts only {sim_mass_below:.3} mass below deviation 1.5"
    );
}

/// Theorem 10's bound is *attained* in the model's state space (the sink
/// really contains extreme states) while the random dynamics almost never
/// visit them — the paper's point that the worst case needs adversarial
/// pair choices.
#[test]
fn worst_sink_state_exists_but_is_rare() {
    let params = ChainParams::paper_total(4, 4);
    let chain = LoadChain::build(params);
    let bound = theorem10_bound(4, 4, params.total);
    let worst = chain.max_sink_makespan();
    // The worst state sits near the bound...
    assert!(
        worst as f64 > bound * 0.7,
        "worst {worst} far from bound {bound:.1}"
    );
    // ...but carries negligible stationary probability.
    let pi = chain.stationary(1e-12, 1_000_000).unwrap();
    let mass_at_worst: f64 = chain
        .makespan_distribution(&pi)
        .into_iter()
        .filter(|&(c, _)| c == worst)
        .map(|(_, p)| p)
        .sum();
    assert!(mass_at_worst < 0.01, "worst state mass {mass_at_worst}");
}
